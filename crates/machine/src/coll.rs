//! Collective operations over processor groups.
//!
//! All collectives are built from point-to-point messages with the textbook
//! algorithms (binomial trees, rings, pairwise exchange), so their virtual
//! cost matches the models the paper's analysis assumes — e.g.
//! all-to-all personalized among `q` processors with `m/q` words each costs
//! `O(m)` plus startup terms.
//!
//! Every member of the group must call the collective with the same `tag`
//! and in the same order. The tag is namespaced away from user messages by
//! setting the top bit.

use crate::{Group, Proc};

const COLL_BIT: u64 = 1 << 63;

#[inline]
fn coll_tag(tag: u64) -> u64 {
    COLL_BIT | tag
}

/// Synchronize virtual clocks across the group (dissemination barrier,
/// ⌈log₂ q⌉ rounds). After the barrier every member's clock is at least the
/// maximum member clock at entry.
pub fn barrier(proc: &mut Proc, group: &Group, tag: u64) {
    let q = group.size();
    if q <= 1 {
        return;
    }
    let me = group
        .group_rank(proc.rank())
        .expect("caller must be a member");
    let tag = coll_tag(tag);
    let mut k = 1;
    while k < q {
        let dst = group.world_rank((me + k) % q);
        let src = group.world_rank((me + q - k) % q);
        proc.send(dst, tag, Vec::new());
        let _ = proc.recv(src, tag);
        k *= 2;
    }
}

/// Broadcast `data` from group rank `root` to all members (binomial tree).
/// Non-root callers pass anything (ignored) and receive the root's data.
pub fn bcast(proc: &mut Proc, group: &Group, tag: u64, root: usize, data: Vec<f64>) -> Vec<f64> {
    let q = group.size();
    let me = group
        .group_rank(proc.rank())
        .expect("caller must be a member");
    if q == 1 {
        return data;
    }
    let tag = coll_tag(tag);
    let vr = (me + q - root) % q; // rank relative to root
    let mut buf = if vr == 0 { data } else { Vec::new() };
    // receive from the parent in the binomial tree
    if vr != 0 {
        let mut step = 1;
        while step * 2 <= vr {
            step *= 2;
        }
        let parent = (vr - step + root) % q;
        buf = proc.recv(group.world_rank(parent), tag);
    }
    // forward to children
    let mut step = 1;
    while step * 2 <= vr {
        step *= 2;
    }
    let mut child_step = if vr == 0 { 1 } else { step * 2 };
    while child_step < q {
        let child = vr + child_step;
        if child < q {
            let dst = group.world_rank((child + root) % q);
            proc.send(dst, tag, buf.clone());
        }
        child_step *= 2;
    }
    buf
}

/// Elementwise-sum reduction to group rank `root` (binomial tree). Returns
/// `Some(sum)` at the root, `None` elsewhere. All contributions must have
/// the same length.
pub fn reduce_sum(
    proc: &mut Proc,
    group: &Group,
    tag: u64,
    root: usize,
    data: Vec<f64>,
) -> Option<Vec<f64>> {
    let q = group.size();
    let me = group
        .group_rank(proc.rank())
        .expect("caller must be a member");
    if q == 1 {
        return Some(data);
    }
    let tag = coll_tag(tag);
    let vr = (me + q - root) % q;
    let mut acc = data;
    let mut step = 1;
    while step < q {
        if vr.is_multiple_of(2 * step) {
            let src = vr + step;
            if src < q {
                let got = proc.recv(group.world_rank((src + root) % q), tag);
                assert_eq!(got.len(), acc.len(), "reduce_sum length mismatch");
                for (a, g) in acc.iter_mut().zip(&got) {
                    *a += g;
                }
            }
        } else {
            let dst = vr - step;
            proc.send(group.world_rank((dst + root) % q), tag, acc);
            return None;
        }
        step *= 2;
    }
    Some(acc)
}

/// Scatter: group rank `root` distributes one chunk to every member
/// (binomial tree with payload splitting — each internal node forwards the
/// chunks of its subtree). Non-root callers pass an empty vec.
pub fn scatter(
    proc: &mut Proc,
    group: &Group,
    tag: u64,
    root: usize,
    chunks: Vec<Vec<f64>>,
) -> Vec<f64> {
    let q = group.size();
    let me = group
        .group_rank(proc.rank())
        .expect("caller must be a member");
    if q == 1 {
        return chunks.into_iter().next().unwrap_or_default();
    }
    assert!(
        me != root || chunks.len() == q,
        "root passes one chunk per member"
    );
    let tag = coll_tag(tag);
    let vr = (me + q - root) % q;
    // records: [relative dest, len, data…]
    let mut held: Vec<(usize, Vec<f64>)> = if vr == 0 {
        chunks
            .into_iter()
            .enumerate()
            .map(|(g, c)| ((g + q - root) % q, c))
            .collect()
    } else {
        let mut step = 1;
        while step * 2 <= vr {
            step *= 2;
        }
        let parent = (vr - step + root) % q;
        let data = proc.recv(group.world_rank(parent), tag);
        let mut held = Vec::new();
        let mut at = 0;
        while at < data.len() {
            let d = data[at] as usize;
            let len = data[at + 1] as usize;
            held.push((d, data[at + 2..at + 2 + len].to_vec()));
            at += 2 + len;
        }
        held
    };
    // forward to binomial children: the subtree rooted at a child joined
    // with stride `child_step` is the residue class child mod 2·child_step
    let mut step = 1;
    while step * 2 <= vr {
        step *= 2;
    }
    let mut child_step = if vr == 0 { 1 } else { step * 2 };
    while child_step < q {
        let child = vr + child_step;
        if child < q {
            let modulus = 2 * child_step;
            let (send_now, keep): (Vec<_>, Vec<_>) = held
                .into_iter()
                .partition(|(d, _)| *d >= child && d % modulus == child % modulus);
            held = keep;
            let mut payload = Vec::new();
            for (d, c) in &send_now {
                payload.push(*d as f64);
                payload.push(c.len() as f64);
                payload.extend_from_slice(c);
            }
            proc.send(group.world_rank((child + root) % q), tag, payload);
        }
        child_step *= 2;
    }
    debug_assert!(held.len() <= 1);
    held.into_iter()
        .find(|(d, _)| *d == vr)
        .map(|(_, c)| c)
        .unwrap_or_default()
}

/// Reduce-scatter: elementwise-sums every member's `q`-chunk contribution
/// and leaves chunk `g` (summed across the group) at group rank `g`.
/// Implemented as a pairwise-exchange ring (`q−1` steps with combining) —
/// the natural dual of [`allgather_ring`].
pub fn reduce_scatter(
    proc: &mut Proc,
    group: &Group,
    tag: u64,
    mut chunks: Vec<Vec<f64>>,
) -> Vec<f64> {
    let q = group.size();
    assert_eq!(chunks.len(), q, "one chunk per member");
    let me = group
        .group_rank(proc.rank())
        .expect("caller must be a member");
    if q == 1 {
        return std::mem::take(&mut chunks[0]);
    }
    let tag = coll_tag(tag);
    let next = group.world_rank((me + 1) % q);
    let prev = group.world_rank((me + q - 1) % q);
    // ring: the partial destined to `d` starts at proc d+1 and travels +1
    // each round, accumulating contributions, arriving home after q−1
    // rounds. In round r, proc `me` sends the partial for (me − r − 1) and
    // folds its contribution into the one for (me − r − 2).
    for r in 0..q - 1 {
        let send_idx = (me + q - r - 1) % q;
        let recv_idx = (me + 2 * q - r - 2) % q;
        proc.send(next, tag, std::mem::take(&mut chunks[send_idx]));
        let got = proc.recv(prev, tag);
        let acc = &mut chunks[recv_idx];
        assert_eq!(acc.len(), got.len(), "reduce_scatter length mismatch");
        for (a, g) in acc.iter_mut().zip(&got) {
            *a += g;
        }
    }
    std::mem::take(&mut chunks[me])
}

/// All-gather: every member contributes a chunk and receives all chunks,
/// indexed by group rank. Chooses between the ring algorithm (optimal
/// bandwidth for large chunks) and the Bruck doubling algorithm (optimal
/// latency, `⌈log₂ q⌉` rounds, for small chunks) based on the linear cost
/// model and `hint_words`, an estimate of the typical chunk size that
/// **must be computed identically by every member** (the algorithm choice
/// is part of the protocol).
pub fn allgather(
    proc: &mut Proc,
    group: &Group,
    tag: u64,
    mine: Vec<f64>,
    hint_words: usize,
) -> Vec<Vec<f64>> {
    let q = group.size();
    if q <= 2 {
        return allgather_ring(proc, group, tag, mine);
    }
    // ring: (q−1)(t_s + m̄·t_w); doubling: log q·t_s + (q−1)·m̄·t_w (plus
    // small headers). Doubling wins when startup dominates.
    let params = *proc.params();
    let m = hint_words as f64;
    let logq = (q as f64).log2().ceil();
    let ring_cost = (q as f64 - 1.0) * (params.t_s + m * params.t_w);
    let dbl_cost = logq * params.t_s + (q as f64 - 1.0) * (m + 2.0) * params.t_w;
    if ring_cost <= dbl_cost {
        allgather_ring(proc, group, tag, mine)
    } else {
        allgather_doubling(proc, group, tag, mine)
    }
}

/// Ring all-gather: `q−1` rounds, each member forwarding one chunk.
pub fn allgather_ring(proc: &mut Proc, group: &Group, tag: u64, mine: Vec<f64>) -> Vec<Vec<f64>> {
    let q = group.size();
    let me = group
        .group_rank(proc.rank())
        .expect("caller must be a member");
    let mut chunks: Vec<Vec<f64>> = vec![Vec::new(); q];
    chunks[me] = mine;
    if q == 1 {
        return chunks;
    }
    let tag = coll_tag(tag);
    let next = group.world_rank((me + 1) % q);
    let prev_rank = (me + q - 1) % q;
    let prev = group.world_rank(prev_rank);
    // round r: send the chunk of (me - r), receive the chunk of (me - r - 1)
    for r in 0..q - 1 {
        let send_idx = (me + q - r) % q;
        let recv_idx = (me + q - r - 1) % q;
        proc.send(next, tag, chunks[send_idx].clone());
        chunks[recv_idx] = proc.recv(prev, tag);
    }
    chunks
}

/// Bruck-style doubling all-gather: `⌈log₂ q⌉` rounds; works for any `q`.
/// Each message is a concatenation of `[origin, len, data…]` records.
pub fn allgather_doubling(
    proc: &mut Proc,
    group: &Group,
    tag: u64,
    mine: Vec<f64>,
) -> Vec<Vec<f64>> {
    let q = group.size();
    let me = group
        .group_rank(proc.rank())
        .expect("caller must be a member");
    let mut chunks: Vec<Option<Vec<f64>>> = vec![None; q];
    chunks[me] = Some(mine);
    if q == 1 {
        return chunks.into_iter().map(Option::unwrap).collect();
    }
    let tag = coll_tag(tag);
    let mut have = 1usize; // I hold chunks of ranks me, me+1, …, me+have−1 (mod q)
    let mut step = 1usize;
    while have < q {
        let take = step.min(q - have);
        // send my first `have` chunks... Bruck: send everything I have to
        // (me − step), receive from (me + step) the next `take` chunks
        let dst = group.world_rank((me + q - step) % q);
        let src = group.world_rank((me + step) % q);
        let mut payload = Vec::new();
        // send the chunks the receiver is missing: ranks me .. me+take−1
        for off in 0..take {
            let r = (me + off) % q;
            let c = chunks[r].as_ref().expect("held");
            payload.push(r as f64);
            payload.push(c.len() as f64);
            payload.extend_from_slice(c);
        }
        proc.send(dst, tag, payload);
        let data = proc.recv(src, tag);
        let mut at = 0;
        while at < data.len() {
            let r = data[at] as usize;
            let len = data[at + 1] as usize;
            chunks[r] = Some(data[at + 2..at + 2 + len].to_vec());
            at += 2 + len;
        }
        have += take;
        step *= 2;
    }
    chunks.into_iter().map(Option::unwrap).collect()
}

/// All-to-all personalized exchange: `out[g]` is sent to group rank `g`;
/// returns `in_` where `in_[g]` came from group rank `g`. Chooses between
/// the direct pairwise schedule (optimal bandwidth) and the Bruck
/// algorithm (`⌈log₂ q⌉` rounds, optimal latency for small chunks) based
/// on `hint_words`, an estimate of the per-member total outgoing words
/// that **must be computed identically by every member** (the algorithm
/// choice is part of the protocol).
pub fn all_to_all_personalized(
    proc: &mut Proc,
    group: &Group,
    tag: u64,
    out: Vec<Vec<f64>>,
    hint_words: usize,
) -> Vec<Vec<f64>> {
    let q = group.size();
    if q <= 2 {
        return all_to_all_direct(proc, group, tag, out);
    }
    let params = *proc.params();
    let m = hint_words as f64;
    let logq = (q as f64).log2().ceil();
    // direct: (q−1)·t_s + m·t_w; Bruck: log q·t_s + (m/2 + headers)·log q·t_w
    let direct_cost = (q as f64 - 1.0) * params.t_s + m * params.t_w;
    let bruck_cost = logq * (params.t_s + (m / 2.0 + q as f64) * params.t_w);
    if direct_cost <= bruck_cost {
        all_to_all_direct(proc, group, tag, out)
    } else {
        all_to_all_bruck(proc, group, tag, out)
    }
}

/// Direct pairwise all-to-all: `q−1` exchanges (`dst = me + r`,
/// `src = me − r`).
pub fn all_to_all_direct(
    proc: &mut Proc,
    group: &Group,
    tag: u64,
    mut out: Vec<Vec<f64>>,
) -> Vec<Vec<f64>> {
    let q = group.size();
    assert_eq!(out.len(), q, "need one chunk per group member");
    let me = group
        .group_rank(proc.rank())
        .expect("caller must be a member");
    let mut in_: Vec<Vec<f64>> = vec![Vec::new(); q];
    in_[me] = std::mem::take(&mut out[me]);
    let tag = coll_tag(tag);
    for r in 1..q {
        let dst = (me + r) % q;
        let src = (me + q - r) % q;
        proc.send(group.world_rank(dst), tag, std::mem::take(&mut out[dst]));
        in_[src] = proc.recv(group.world_rank(src), tag);
    }
    in_
}

/// Bruck all-to-all: `⌈log₂ q⌉` store-and-forward rounds. A chunk whose
/// remaining relative distance `d = (dest − holder) mod q` has bit `r` set
/// is forwarded to `holder + 2^r` in round `r`; messages are
/// concatenations of `[origin, dest, len, data…]` records. Works for any
/// `q`.
pub fn all_to_all_bruck(
    proc: &mut Proc,
    group: &Group,
    tag: u64,
    mut out: Vec<Vec<f64>>,
) -> Vec<Vec<f64>> {
    let q = group.size();
    assert_eq!(out.len(), q, "need one chunk per group member");
    let me = group
        .group_rank(proc.rank())
        .expect("caller must be a member");
    let mut in_: Vec<Vec<f64>> = vec![Vec::new(); q];
    in_[me] = std::mem::take(&mut out[me]);
    if q == 1 {
        return in_;
    }
    let tag = coll_tag(tag);
    // holdings: (origin, destination, data)
    let mut holdings: Vec<(usize, usize, Vec<f64>)> = (0..q)
        .filter(|&d| d != me)
        .map(|d| (me, d, std::mem::take(&mut out[d])))
        .collect();
    let mut r = 0usize;
    while (1usize << r) < q {
        let bit = 1usize << r;
        let dst = group.world_rank((me + bit) % q);
        let src = group.world_rank((me + q - bit) % q);
        let (send_now, keep): (Vec<_>, Vec<_>) = holdings
            .into_iter()
            .partition(|(_, dest, _)| ((dest + q - me) % q) & bit != 0);
        let mut payload = Vec::new();
        for (origin, dest, data) in &send_now {
            payload.push(*origin as f64);
            payload.push(*dest as f64);
            payload.push(data.len() as f64);
            payload.extend_from_slice(data);
        }
        proc.send(dst, tag, payload);
        let data = proc.recv(src, tag);
        holdings = keep;
        let mut at = 0;
        while at < data.len() {
            let origin = data[at] as usize;
            let dest = data[at + 1] as usize;
            let len = data[at + 2] as usize;
            let body = data[at + 3..at + 3 + len].to_vec();
            at += 3 + len;
            if dest == me {
                in_[origin] = body;
            } else {
                holdings.push((origin, dest, body));
            }
        }
        r += 1;
    }
    debug_assert!(holdings.is_empty(), "undelivered chunks after last round");
    in_
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelClass, Machine, MachineParams};

    fn machine(p: usize) -> Machine {
        Machine::new(p, MachineParams::t3d())
    }

    #[test]
    fn barrier_syncs_clocks() {
        let m = machine(4);
        let r = m.run(|p| {
            // staggered compute: proc 3 is slowest at 0.4 s
            p.compute_flops(1e6 * (p.rank() + 1) as f64, KernelClass::Vector);
            barrier(p, &Group::world(4), 1);
            p.time()
        });
        for &t in &r.finish_times {
            assert!(t >= 0.4, "clock {t} below the slowest member");
        }
    }

    #[test]
    fn bcast_delivers_from_any_root() {
        for root in 0..5 {
            let m = machine(5);
            let r = m.run(move |p| {
                let g = Group::world(5);
                let data = if p.rank() == root {
                    vec![42.0, root as f64]
                } else {
                    Vec::new()
                };
                bcast(p, &g, 2, root, data)
            });
            for (rank, got) in r.results.iter().enumerate() {
                assert_eq!(got, &vec![42.0, root as f64], "rank {rank} root {root}");
            }
        }
    }

    #[test]
    fn bcast_on_subgroup() {
        let m = machine(6);
        let r = m.run(|p| {
            let g = Group::from_ranks(vec![1, 3, 5]);
            if let Some(gr) = g.group_rank(p.rank()) {
                let data = if gr == 0 { vec![7.0] } else { Vec::new() };
                bcast(p, &g, 3, 0, data)
            } else {
                Vec::new()
            }
        });
        assert_eq!(r.results[3], vec![7.0]);
        assert_eq!(r.results[5], vec![7.0]);
        assert!(r.results[0].is_empty());
    }

    #[test]
    fn reduce_sum_totals() {
        let m = machine(7);
        let r = m.run(|p| {
            let g = Group::world(7);
            reduce_sum(p, &g, 4, 2, vec![p.rank() as f64, 1.0])
        });
        let expect: f64 = (0..7).map(|x| x as f64).sum();
        assert_eq!(r.results[2], Some(vec![expect, 7.0]));
        for (rank, res) in r.results.iter().enumerate() {
            if rank != 2 {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn allgather_collects_in_rank_order() {
        let m = machine(4);
        let r = m.run(|p| {
            let g = Group::world(4);
            allgather(p, &g, 5, vec![p.rank() as f64; p.rank() + 1], 2)
        });
        for res in &r.results {
            for (g, chunk) in res.iter().enumerate() {
                assert_eq!(chunk, &vec![g as f64; g + 1]);
            }
        }
    }

    #[test]
    fn all_to_all_transposes() {
        let m = machine(4);
        let r = m.run(|p| {
            let g = Group::world(4);
            let out: Vec<Vec<f64>> = (0..4)
                .map(|dst| vec![p.rank() as f64 * 10.0 + dst as f64])
                .collect();
            all_to_all_personalized(p, &g, 6, out, 4)
        });
        for (me, res) in r.results.iter().enumerate() {
            for (src, chunk) in res.iter().enumerate() {
                assert_eq!(chunk, &vec![src as f64 * 10.0 + me as f64]);
            }
        }
    }

    #[test]
    fn all_to_all_on_scattered_subgroup() {
        let m = machine(8);
        let r = m.run(|p| {
            let g = Group::from_ranks(vec![6, 0, 3]);
            match g.group_rank(p.rank()) {
                Some(me) => {
                    let out: Vec<Vec<f64>> = (0..3).map(|d| vec![(me * 3 + d) as f64]).collect();
                    all_to_all_personalized(p, &g, 7, out, 3)
                }
                None => Vec::new(),
            }
        });
        // member with group rank 1 is world rank 0
        let res = &r.results[0];
        assert_eq!(res[0], vec![1.0]); // from group rank 0: 0*3+1
        assert_eq!(res[1], vec![4.0]); // own: 1*3+1
        assert_eq!(res[2], vec![7.0]); // from group rank 2: 2*3+1
    }

    #[test]
    fn collectives_compose_without_tag_collision() {
        let m = machine(4);
        let r = m.run(|p| {
            let g = Group::world(4);
            let s = reduce_sum(p, &g, 10, 0, vec![1.0]);
            let total = bcast(p, &g, 11, 0, s.unwrap_or_default());
            barrier(p, &g, 12);
            total[0]
        });
        assert!(r.results.iter().all(|&v| v == 4.0));
    }

    #[test]
    fn singleton_group_collectives_are_noops() {
        let m = machine(2);
        let r = m.run(|p| {
            let g = Group::from_ranks(vec![p.rank()]);
            barrier(p, &g, 1);
            let b = bcast(p, &g, 2, 0, vec![1.0]);
            let s = reduce_sum(p, &g, 3, 0, vec![2.0]).unwrap();
            let ag = allgather(p, &g, 4, vec![3.0], 1);
            let aa = all_to_all_personalized(p, &g, 5, vec![vec![4.0]], 1);
            (b[0], s[0], ag[0][0], aa[0][0])
        });
        assert_eq!(r.results[0], (1.0, 2.0, 3.0, 4.0));
        assert_eq!(r.total_msgs(), 0);
    }

    #[test]
    fn all_to_all_direct_cost_scales_with_data_not_group_squared() {
        // Total words for a direct all-to-all with m/q per pair is m per
        // processor.
        let q = 8;
        let m_words = 64usize;
        let mach = machine(q);
        let r = mach.run(|p| {
            let g = Group::world(8);
            let chunk = m_words / 8;
            let out: Vec<Vec<f64>> = (0..8).map(|_| vec![0.0; chunk]).collect();
            all_to_all_direct(p, &g, 1, out);
        });
        assert_eq!(r.total_words(), (q * (q - 1) * (m_words / q)) as u64);
    }

    #[test]
    fn bruck_matches_direct_results() {
        for q in [3usize, 4, 5, 8, 13] {
            let mach = machine(q);
            let r = mach.run(|p| {
                let g = Group::world(q);
                let me = p.rank();
                let out: Vec<Vec<f64>> = (0..q)
                    .map(|d| vec![(me * q + d) as f64; (d % 3) + 1])
                    .collect();
                all_to_all_bruck(p, &g, 1, out)
            });
            for (me, res) in r.results.iter().enumerate() {
                for (src, chunk) in res.iter().enumerate() {
                    assert_eq!(
                        chunk,
                        &vec![(src * q + me) as f64; (me % 3) + 1],
                        "q={q} me={me} src={src}"
                    );
                }
            }
        }
    }

    #[test]
    fn bruck_uses_log_rounds() {
        let q = 16;
        let mach = machine(q);
        let r = mach.run(|p| {
            let g = Group::world(q);
            let out: Vec<Vec<f64>> = (0..q).map(|_| vec![1.0]).collect();
            all_to_all_bruck(p, &g, 1, out);
        });
        // each processor sends exactly log2(q) messages
        assert_eq!(r.total_msgs(), (q * 4) as u64);
    }

    #[test]
    fn allgather_doubling_matches_ring() {
        for q in [2usize, 5, 8, 11] {
            let mach = machine(q);
            let r = mach.run(|p| {
                let g = Group::world(q);
                let a = allgather_ring(p, &g, 1, vec![p.rank() as f64; p.rank() + 1]);
                let b = allgather_doubling(p, &g, 2, vec![p.rank() as f64; p.rank() + 1]);
                assert_eq!(a, b, "q={q} rank={}", p.rank());
                a.len()
            });
            assert!(r.results.iter().all(|&l| l == q));
        }
    }

    #[test]
    fn scatter_delivers_per_rank_chunks() {
        for (q, root) in [(4usize, 0usize), (5, 2), (8, 7), (3, 1), (1, 0)] {
            let mach = machine(q);
            let r = mach.run(move |p| {
                let g = Group::world(q);
                let me = g.group_rank(p.rank()).unwrap();
                let chunks = if me == root {
                    (0..q).map(|d| vec![d as f64; d + 1]).collect()
                } else {
                    Vec::new()
                };
                scatter(p, &g, 1, root, chunks)
            });
            for (rank, got) in r.results.iter().enumerate() {
                assert_eq!(
                    got,
                    &vec![rank as f64; rank + 1],
                    "q={q} root={root} rank={rank}"
                );
            }
        }
    }

    #[test]
    fn scatter_moves_less_than_broadcast_of_everything() {
        // binomial scatter with payload splitting: total words ≈
        // Σ over levels of (remaining payload) — far below q·total
        let q = 8;
        let chunk = 100usize;
        let mach = machine(q);
        let r = mach.run(|p| {
            let g = Group::world(q);
            let chunks = if p.rank() == 0 {
                (0..q).map(|_| vec![1.0; chunk]).collect()
            } else {
                Vec::new()
            };
            scatter(p, &g, 1, 0, chunks);
        });
        // a broadcast of all q·chunk words to everyone would be
        // ~q·q·chunk; the scatter must stay well below q·total
        assert!(
            r.total_words() < (2 * q * chunk + 8 * q * 3) as u64,
            "scatter moved {} words",
            r.total_words()
        );
    }

    #[test]
    fn reduce_scatter_sums_per_destination() {
        for q in [2usize, 4, 7] {
            let mach = machine(q);
            let r = mach.run(move |p| {
                let g = Group::world(q);
                let me = g.group_rank(p.rank()).unwrap();
                // contribution of rank me for dest d: [me*10 + d]
                let chunks: Vec<Vec<f64>> = (0..q).map(|d| vec![(me * 10 + d) as f64]).collect();
                reduce_scatter(p, &g, 1, chunks)
            });
            for (rank, got) in r.results.iter().enumerate() {
                let expect: f64 = (0..q).map(|src| (src * 10 + rank) as f64).sum();
                assert_eq!(got, &vec![expect], "q={q} rank={rank}");
            }
        }
    }

    #[test]
    fn reduce_scatter_then_allgather_equals_allreduce() {
        // the classic identity behind Rabenseifner's allreduce
        let q = 4;
        let mach = machine(q);
        let r = mach.run(|p| {
            let g = Group::world(q);
            let me = p.rank() as f64;
            let chunks: Vec<Vec<f64>> = (0..q).map(|d| vec![me + d as f64]).collect();
            let mine = reduce_scatter(p, &g, 1, chunks);
            let all = allgather(p, &g, 2, mine, 1);
            all.into_iter().flatten().collect::<Vec<f64>>()
        });
        let expect: Vec<f64> = (0..q)
            .map(|d| (0..q).map(|src| (src + d) as f64).sum())
            .collect();
        for got in &r.results {
            assert_eq!(got, &expect);
        }
    }

    #[test]
    fn adaptive_a2a_picks_bruck_for_small_payloads() {
        // tiny chunks on a big group: adaptive must take far fewer
        // messages than the direct schedule would
        let q = 32;
        let mach = machine(q);
        let r = mach.run(|p| {
            let g = Group::world(q);
            let out: Vec<Vec<f64>> = (0..q).map(|_| vec![1.0]).collect();
            all_to_all_personalized(p, &g, 1, out, q);
        });
        assert!(
            r.total_msgs() < (q * (q - 1)) as u64 / 2,
            "adaptive sent {} msgs",
            r.total_msgs()
        );
    }
}
