//! A virtual-time distributed-memory machine simulator.
//!
//! The Gupta & Kumar paper evaluates its algorithms on a 256-processor
//! Cray T3D. This crate substitutes a **virtual-time simulator**: each
//! virtual processor runs as an OS thread with private memory and a private
//! virtual clock; processors exchange messages over typed channels; and the
//! clock advances according to the same linear cost model
//! (`t_s + m·t_w` per message, calibrated per-flop compute rates) that the
//! paper's analysis uses.
//!
//! Because time flows only through computation and messages, the simulated
//! parallel runtime is **deterministic**: it depends on the algorithm's
//! communication structure, not on host scheduling. Real numerics are
//! computed — the solvers produce actual solutions, and the reported times
//! are what the cost model implies for a T3D-class machine.
//!
//! Key pieces:
//!
//! * [`MachineParams`] — the cost model (latency, bandwidth, BLAS-level
//!   compute rates) with a [`MachineParams::t3d`] calibration;
//! * [`Machine::run`] — SPMD execution: one closure, `p` virtual
//!   processors, per-processor results and virtual finish times;
//! * [`Proc`] — the per-processor handle: `send` / `recv` / `compute`;
//! * [`Group`] — processor subsets (the "subcubes" of subtree-to-subcube
//!   mapping) with group-relative ranks;
//! * [`coll`] — collectives built on point-to-point messages: barrier,
//!   broadcast, reduce, all-gather, all-to-all personalized;
//! * [`layout`] — 1-D and 2-D block-cyclic distribution maps.

pub mod coll;
pub mod group;
pub mod layout;
pub mod params;
pub mod sim;
pub mod trace;

pub use group::Group;
pub use layout::{BlockCyclic1d, BlockCyclic2d};
pub use params::{KernelClass, MachineParams, Topology};
pub use sim::{Activity, Machine, Proc, ProcStats, RunResult, Segment};
