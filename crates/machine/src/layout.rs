//! Block-cyclic data distributions.
//!
//! The paper's triangular solvers partition each supernode trapezoid
//! **one-dimensionally block-cyclically** (row-wise for `L`, column-wise
//! for `U`), while factorization uses a **two-dimensional block-cyclic**
//! layout over a processor grid. These descriptors are pure index maps:
//! `owner`, global↔local translation, and per-processor counts.

/// 1-D block-cyclic distribution of `nitems` items over `nprocs` processors
/// with blocks of `block` consecutive items: item `i` lives in block
/// `i / block`, owned by processor `(i / block) % nprocs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCyclic1d {
    /// Total items distributed.
    pub nitems: usize,
    /// Block size `b`.
    pub block: usize,
    /// Number of processors.
    pub nprocs: usize,
}

impl BlockCyclic1d {
    /// Create a descriptor (block and procs must be ≥ 1).
    pub fn new(nitems: usize, block: usize, nprocs: usize) -> Self {
        assert!(block >= 1 && nprocs >= 1);
        BlockCyclic1d {
            nitems,
            block,
            nprocs,
        }
    }

    /// Number of blocks (the last may be partial).
    pub fn nblocks(&self) -> usize {
        self.nitems.div_ceil(self.block)
    }

    /// Block index of item `i`.
    #[inline]
    pub fn block_of(&self, i: usize) -> usize {
        i / self.block
    }

    /// Owner (processor) of item `i`.
    #[inline]
    pub fn owner(&self, i: usize) -> usize {
        debug_assert!(i < self.nitems);
        (i / self.block) % self.nprocs
    }

    /// Owner of block `b`.
    #[inline]
    pub fn owner_of_block(&self, b: usize) -> usize {
        b % self.nprocs
    }

    /// Size of block `b` (the final block may be short).
    pub fn block_len(&self, b: usize) -> usize {
        let start = b * self.block;
        debug_assert!(start < self.nitems);
        self.block.min(self.nitems - start)
    }

    /// Global range of block `b`.
    pub fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        let start = b * self.block;
        start..(start + self.block).min(self.nitems)
    }

    /// Number of items owned by processor `q`.
    pub fn local_count(&self, q: usize) -> usize {
        (0..self.nblocks())
            .filter(|&b| self.owner_of_block(b) == q)
            .map(|b| self.block_len(b))
            .sum()
    }

    /// Blocks owned by processor `q`, in ascending order.
    pub fn local_blocks(&self, q: usize) -> Vec<usize> {
        (0..self.nblocks())
            .filter(|&b| self.owner_of_block(b) == q)
            .collect()
    }

    /// Local offset of item `i` within its owner's packed storage (items
    /// of each owner are packed block by block in ascending block order).
    pub fn local_index(&self, i: usize) -> usize {
        let b = self.block_of(i);
        let q = self.owner_of_block(b);
        let mut off = 0;
        let mut blk = b % self.nprocs; // first block owned by q is blk = q
        debug_assert_eq!(blk, q);
        while blk < b {
            off += self.block_len(blk);
            blk += self.nprocs;
        }
        off + (i - b * self.block)
    }
}

/// 2-D block-cyclic distribution of an `nrows × ncols` matrix over a
/// `prow × pcol` processor grid with `block × block` tiles. Processor
/// `(r, c)` has linear rank `r * pcol + c` (row-major grid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCyclic2d {
    /// Row distribution over `prow` grid rows.
    pub rows: BlockCyclic1d,
    /// Column distribution over `pcol` grid columns.
    pub cols: BlockCyclic1d,
}

impl BlockCyclic2d {
    /// Create a descriptor for an `nrows × ncols` matrix on a
    /// `prow × pcol` grid with square tiles of `block`.
    pub fn new(nrows: usize, ncols: usize, block: usize, prow: usize, pcol: usize) -> Self {
        BlockCyclic2d {
            rows: BlockCyclic1d::new(nrows, block, prow),
            cols: BlockCyclic1d::new(ncols, block, pcol),
        }
    }

    /// Grid shape `(prow, pcol)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.rows.nprocs, self.cols.nprocs)
    }

    /// Total processors in the grid.
    pub fn nprocs(&self) -> usize {
        self.rows.nprocs * self.cols.nprocs
    }

    /// Linear rank of the owner of entry `(i, j)`.
    #[inline]
    pub fn owner(&self, i: usize, j: usize) -> usize {
        self.rows.owner(i) * self.cols.nprocs + self.cols.owner(j)
    }

    /// Number of entries owned by linear rank `q`.
    pub fn local_count(&self, q: usize) -> usize {
        let (r, c) = (q / self.cols.nprocs, q % self.cols.nprocs);
        self.rows.local_count(r) * self.cols.local_count(c)
    }

    /// A near-square grid factorization `prow × pcol = p` with
    /// `prow ≤ pcol` and both powers of two when `p` is (the subcube
    /// shapes used by the factorization phase).
    pub fn square_grid(p: usize) -> (usize, usize) {
        let mut prow = 1;
        while (prow * 2) * (prow * 2) <= p {
            prow *= 2;
        }
        // adjust so prow * pcol == p exactly when p is a power of two;
        // otherwise fall back to the largest divisor pair.
        if p.is_multiple_of(prow) {
            let pcol = p / prow;
            if prow <= pcol {
                return (prow, pcol);
            }
            return (pcol, prow);
        }
        let mut best = (1, p);
        let mut d = 1;
        while d * d <= p {
            if p.is_multiple_of(d) {
                best = (d, p / d);
            }
            d += 1;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_cycles_over_blocks() {
        let l = BlockCyclic1d::new(20, 2, 3);
        // blocks: 0..10, owners 0,1,2,0,1,2,...
        assert_eq!(l.owner(0), 0);
        assert_eq!(l.owner(1), 0);
        assert_eq!(l.owner(2), 1);
        assert_eq!(l.owner(5), 2);
        assert_eq!(l.owner(6), 0);
        assert_eq!(l.nblocks(), 10);
    }

    #[test]
    fn last_block_may_be_short() {
        let l = BlockCyclic1d::new(7, 3, 2);
        assert_eq!(l.nblocks(), 3);
        assert_eq!(l.block_len(0), 3);
        assert_eq!(l.block_len(2), 1);
        assert_eq!(l.block_range(2), 6..7);
    }

    #[test]
    fn local_counts_partition_items() {
        for (n, b, p) in [(20, 2, 3), (17, 4, 4), (5, 8, 2), (100, 1, 7)] {
            let l = BlockCyclic1d::new(n, b, p);
            let total: usize = (0..p).map(|q| l.local_count(q)).sum();
            assert_eq!(total, n, "n={n} b={b} p={p}");
        }
    }

    #[test]
    fn local_index_is_packed_and_bijective() {
        let l = BlockCyclic1d::new(23, 3, 4);
        for q in 0..4 {
            let mut seen = vec![false; l.local_count(q)];
            for i in 0..23 {
                if l.owner(i) == q {
                    let li = l.local_index(i);
                    assert!(!seen[li], "local index {li} repeated on proc {q}");
                    seen[li] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn local_index_orders_by_global() {
        let l = BlockCyclic1d::new(30, 4, 3);
        for q in 0..3 {
            let mut last = None;
            for i in 0..30 {
                if l.owner(i) == q {
                    let li = l.local_index(i);
                    if let Some(prev) = last {
                        assert!(li > prev);
                    }
                    last = Some(li);
                }
            }
        }
    }

    #[test]
    fn grid_owner_combines_row_and_col() {
        let d = BlockCyclic2d::new(8, 8, 2, 2, 2);
        assert_eq!(d.owner(0, 0), 0);
        assert_eq!(d.owner(0, 2), 1);
        assert_eq!(d.owner(2, 0), 2);
        assert_eq!(d.owner(2, 2), 3);
        assert_eq!(d.owner(4, 4), 0); // wraps
    }

    #[test]
    fn grid_local_counts_partition_matrix() {
        let d = BlockCyclic2d::new(10, 13, 3, 2, 3);
        let total: usize = (0..6).map(|q| d.local_count(q)).sum();
        assert_eq!(total, 130);
    }

    #[test]
    fn square_grid_factors() {
        assert_eq!(BlockCyclic2d::square_grid(16), (4, 4));
        assert_eq!(BlockCyclic2d::square_grid(8), (2, 4));
        assert_eq!(BlockCyclic2d::square_grid(2), (1, 2));
        assert_eq!(BlockCyclic2d::square_grid(1), (1, 1));
        let (a, b) = BlockCyclic2d::square_grid(12);
        assert_eq!(a * b, 12);
        assert!(a <= b);
    }
}
