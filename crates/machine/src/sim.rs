//! The SPMD execution engine.

use crate::params::{KernelClass, MachineParams};
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};

/// A message in flight: payload plus the virtual time at which it becomes
/// available at the receiver.
#[derive(Debug, Clone)]
struct Msg {
    tag: u64,
    data: Vec<f64>,
    arrival: f64,
}

/// Per-processor accounting, in virtual seconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProcStats {
    /// Floating-point operations charged via `compute_flops`.
    pub flops: f64,
    /// Virtual seconds spent computing.
    pub compute_seconds: f64,
    /// Virtual seconds spent blocked waiting for messages (idle).
    pub wait_seconds: f64,
    /// Virtual seconds charged as message-startup overhead on sends.
    pub send_seconds: f64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// 8-byte words sent.
    pub words_sent: u64,
}

/// What a processor was doing during a traced interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Arithmetic (charged via `compute_flops*`).
    Compute,
    /// Blocked waiting for a message.
    Wait,
    /// Message-send startup overhead.
    Send,
}

/// One traced interval of a processor's virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Interval start (virtual seconds).
    pub start: f64,
    /// Interval end (virtual seconds).
    pub end: f64,
    /// What the processor was doing.
    pub activity: Activity,
}

/// Handle through which an SPMD closure interacts with its virtual
/// processor: clock, messaging, and compute accounting.
pub struct Proc {
    rank: usize,
    nprocs: usize,
    clock: f64,
    params: MachineParams,
    /// `senders[dst]` carries messages to processor `dst`.
    senders: Vec<Sender<Msg>>,
    /// `receivers[src]` yields messages sent by processor `src`.
    receivers: Vec<Receiver<Msg>>,
    /// Out-of-order messages already drained from a channel, per source.
    pending: Vec<VecDeque<Msg>>,
    stats: ProcStats,
    /// Timeline segments, recorded only when tracing is enabled.
    trace: Option<Vec<Segment>>,
}

impl Proc {
    /// This processor's rank in `0..nprocs`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of virtual processors.
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn time(&self) -> f64 {
        self.clock
    }

    /// The machine's cost model.
    #[inline]
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> &ProcStats {
        &self.stats
    }

    /// Record a traced interval ending at the current clock (merging with
    /// an adjacent same-activity segment).
    fn record(&mut self, start: f64, activity: Activity) {
        if let Some(trace) = &mut self.trace {
            if self.clock <= start {
                return;
            }
            if let Some(last) = trace.last_mut() {
                if last.activity == activity && (start - last.end).abs() < 1e-15 {
                    last.end = self.clock;
                    return;
                }
            }
            trace.push(Segment {
                start,
                end: self.clock,
                activity,
            });
        }
    }

    /// Charge `flops` floating-point operations at the class rate.
    pub fn compute_flops(&mut self, flops: f64, class: KernelClass) {
        let dt = self.params.compute_time(flops, class);
        let start = self.clock;
        self.clock += dt;
        self.stats.flops += flops;
        self.stats.compute_seconds += dt;
        self.record(start, Activity::Compute);
    }

    /// Charge `flops` at an explicit rate (flops/second) — used by solve
    /// kernels whose effective rate depends on the RHS block width.
    pub fn compute_flops_at(&mut self, flops: f64, rate: f64) {
        let dt = flops / rate;
        let start = self.clock;
        self.clock += dt;
        self.stats.flops += flops;
        self.stats.compute_seconds += dt;
        self.record(start, Activity::Compute);
    }

    /// Advance the clock without doing arithmetic (e.g. modelled index
    /// bookkeeping).
    pub fn advance(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.clock += seconds;
    }

    /// Send `data` to `dst` with a `tag`. The sender is charged the
    /// startup time `t_s`; the message becomes available at
    /// `send_time + t_s + len·t_w`.
    pub fn send(&mut self, dst: usize, tag: u64, data: Vec<f64>) {
        assert!(dst < self.nprocs, "send to rank {dst} of {}", self.nprocs);
        assert_ne!(dst, self.rank, "self-send would deadlock recv");
        let arrival = self.clock + self.params.msg_time_between(self.rank, dst, data.len());
        self.stats.msgs_sent += 1;
        self.stats.words_sent += data.len() as u64;
        self.stats.send_seconds += self.params.t_s;
        let start = self.clock;
        self.clock += self.params.t_s;
        self.record(start, Activity::Send);
        let msg = Msg { tag, data, arrival };
        self.senders[dst]
            .send(msg)
            .expect("receiver thread ended with messages in flight");
    }

    /// Receive the next message with `tag` from `src`, blocking until it
    /// arrives. The virtual clock advances to the message arrival time.
    /// Messages from `src` with other tags are buffered.
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<f64> {
        assert!(src < self.nprocs);
        assert_ne!(src, self.rank);
        // check the pending buffer first
        if let Some(pos) = self.pending[src].iter().position(|m| m.tag == tag) {
            let msg = self.pending[src].remove(pos).unwrap();
            return self.accept(msg);
        }
        loop {
            let msg = self.receivers[src]
                .recv()
                .expect("sender thread ended before sending expected message");
            if msg.tag == tag {
                return self.accept(msg);
            }
            self.pending[src].push_back(msg);
        }
    }

    fn accept(&mut self, msg: Msg) -> Vec<f64> {
        if msg.arrival > self.clock {
            self.stats.wait_seconds += msg.arrival - self.clock;
            let start = self.clock;
            self.clock = msg.arrival;
            self.record(start, Activity::Wait);
        }
        msg.data
    }

    /// Convenience: send-then-receive exchange with a partner (both sides
    /// call this symmetrically; the send happens before the receive so the
    /// pair cannot deadlock).
    pub fn exchange(&mut self, partner: usize, tag: u64, data: Vec<f64>) -> Vec<f64> {
        self.send(partner, tag, data);
        self.recv(partner, tag)
    }
}

/// Result of an SPMD run.
#[derive(Debug)]
pub struct RunResult<R> {
    /// Per-processor return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-processor virtual finish times (seconds).
    pub finish_times: Vec<f64>,
    /// Per-processor accounting.
    pub stats: Vec<ProcStats>,
    /// Per-processor timelines (empty unless run with tracing).
    pub traces: Vec<Vec<Segment>>,
}

impl<R> RunResult<R> {
    /// The parallel runtime: the latest virtual finish time.
    pub fn parallel_time(&self) -> f64 {
        self.finish_times.iter().copied().fold(0.0, f64::max)
    }

    /// Total flops performed across processors.
    pub fn total_flops(&self) -> f64 {
        self.stats.iter().map(|s| s.flops).sum()
    }

    /// Total words sent across processors.
    pub fn total_words(&self) -> u64 {
        self.stats.iter().map(|s| s.words_sent).sum()
    }

    /// Total messages sent across processors.
    pub fn total_msgs(&self) -> u64 {
        self.stats.iter().map(|s| s.msgs_sent).sum()
    }

    /// Aggregate MFLOPS achieved: total flops / parallel time.
    pub fn mflops(&self) -> f64 {
        self.total_flops() / self.parallel_time() / 1e6
    }

    /// Overhead function `T_o = p·T_P − Σ busy` — the virtual processor
    /// seconds not spent computing.
    pub fn overhead(&self) -> f64 {
        let p = self.finish_times.len() as f64;
        let busy: f64 = self.stats.iter().map(|s| s.compute_seconds).sum();
        p * self.parallel_time() - busy
    }
}

/// A virtual machine of `p` processors sharing one cost model.
///
/// ```
/// use trisolv_machine::{KernelClass, Machine, MachineParams};
///
/// let machine = Machine::new(2, MachineParams::t3d());
/// let run = machine.run(|proc| {
///     if proc.rank() == 0 {
///         proc.compute_flops(1e6, KernelClass::Vector); // 0.1 s at 10 MFLOPS
///         proc.send(1, 0, vec![1.0, 2.0]);
///     } else {
///         let data = proc.recv(0, 0);
///         assert_eq!(data, vec![1.0, 2.0]);
///     }
///     proc.time()
/// });
/// // the receiver's clock includes the sender's compute + message latency
/// assert!(run.results[1] > 0.1);
/// assert_eq!(run.total_msgs(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    nprocs: usize,
    params: MachineParams,
    trace: bool,
}

impl Machine {
    /// Create a machine with `nprocs` virtual processors.
    pub fn new(nprocs: usize, params: MachineParams) -> Self {
        assert!(nprocs >= 1);
        Machine {
            nprocs,
            params,
            trace: false,
        }
    }

    /// Enable per-processor timeline tracing (see [`RunResult::traces`] and
    /// [`crate::trace::render_gantt`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Number of virtual processors.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// The cost model.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Run an SPMD program: `f` is invoked once per virtual processor (on
    /// its own OS thread) with a [`Proc`] handle. Returns per-processor
    /// results, finish times, and stats.
    ///
    /// Programs must have matching sends/receives; an unmatched `recv`
    /// panics when its peer thread finishes (rather than deadlocking
    /// silently).
    pub fn run<R, F>(&self, f: F) -> RunResult<R>
    where
        R: Send,
        F: Fn(&mut Proc) -> R + Sync,
    {
        let p = self.nprocs;
        // channels[src][dst]
        let mut senders: Vec<Vec<Option<Sender<Msg>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        let mut receivers: Vec<Vec<Option<Receiver<Msg>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        for src in 0..p {
            for dst in 0..p {
                if src == dst {
                    continue;
                }
                let (tx, rx) = channel();
                senders[src][dst] = Some(tx);
                receivers[dst][src] = Some(rx);
            }
        }
        // Dummy channels for the diagonal (never used: self-send asserts).
        let mut procs: Vec<Proc> = Vec::with_capacity(p);
        for (rank, (send_row, recv_row)) in senders.into_iter().zip(receivers).enumerate() {
            let senders: Vec<Sender<Msg>> = send_row
                .into_iter()
                .map(|s| s.unwrap_or_else(|| channel().0))
                .collect();
            let receivers: Vec<Receiver<Msg>> = recv_row
                .into_iter()
                .map(|r| r.unwrap_or_else(|| channel().1))
                .collect();
            procs.push(Proc {
                rank,
                nprocs: p,
                clock: 0.0,
                params: self.params,
                senders,
                receivers,
                pending: (0..p).map(|_| VecDeque::new()).collect(),
                stats: ProcStats::default(),
                trace: self.trace.then(Vec::new),
            });
        }

        let f = &f;
        type Slot<R> = (R, f64, ProcStats, Vec<Segment>);
        let mut slots: Vec<Option<Slot<R>>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = procs
                .into_iter()
                .map(|mut proc| {
                    scope.spawn(move || {
                        let r = f(&mut proc);
                        let trace = proc.trace.take().unwrap_or_default();
                        (proc.rank, r, proc.clock, proc.stats, trace)
                    })
                })
                .collect();
            for h in handles {
                let (rank, r, clock, stats, trace) = h.join().expect("virtual processor panicked");
                slots[rank] = Some((r, clock, stats, trace));
            }
        });

        let mut results = Vec::with_capacity(p);
        let mut finish_times = Vec::with_capacity(p);
        let mut stats = Vec::with_capacity(p);
        let mut traces = Vec::with_capacity(p);
        for slot in slots {
            let (r, t, s, tr) = slot.expect("every rank reports");
            results.push(r);
            finish_times.push(t);
            stats.push(s);
            traces.push(tr);
        }
        RunResult {
            results,
            finish_times,
            stats,
            traces,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(p: usize) -> Machine {
        Machine::new(p, MachineParams::t3d())
    }

    #[test]
    fn single_proc_computes() {
        let m = machine(1);
        let r = m.run(|p| {
            p.compute_flops(1e6, KernelClass::Vector);
            p.time()
        });
        // 1e6 flops at 10 MFLOPS = 0.1 s
        assert!((r.results[0] - 0.1).abs() < 1e-12);
        assert!((r.parallel_time() - 0.1).abs() < 1e-12);
        assert_eq!(r.total_flops(), 1e6);
    }

    #[test]
    fn message_advances_receiver_clock() {
        let m = machine(2);
        let r = m.run(|p| {
            if p.rank() == 0 {
                p.compute_flops(1e6, KernelClass::Vector); // 0.1 s
                p.send(1, 7, vec![1.0, 2.0, 3.0]);
                p.time()
            } else {
                let data = p.recv(0, 7);
                assert_eq!(data, vec![1.0, 2.0, 3.0]);
                p.time()
            }
        });
        let params = MachineParams::t3d();
        let expect_arrival = 0.1 + params.msg_time(3);
        assert!((r.results[1] - expect_arrival).abs() < 1e-12);
        // sender paid only startup
        assert!((r.results[0] - (0.1 + params.t_s)).abs() < 1e-12);
        assert_eq!(r.total_msgs(), 1);
        assert_eq!(r.total_words(), 3);
    }

    #[test]
    fn late_receiver_does_not_wait() {
        let m = machine(2);
        let r = m.run(|p| {
            if p.rank() == 0 {
                p.send(1, 0, vec![1.0]);
            } else {
                p.compute_flops(10e6, KernelClass::Vector); // 1 s >> arrival
                let _ = p.recv(0, 0);
            }
            (p.time(), p.stats().wait_seconds)
        });
        // receiver was already past the arrival time: no wait, clock = 1 s
        assert!((r.results[1].0 - 1.0).abs() < 1e-9);
        assert_eq!(r.results[1].1, 0.0);
        assert!(r.results[1].0 > r.results[0].0);
    }

    #[test]
    fn tag_mismatch_buffers_out_of_order() {
        let m = machine(2);
        let r = m.run(|p| {
            if p.rank() == 0 {
                p.send(1, 1, vec![1.0]);
                p.send(1, 2, vec![2.0]);
                Vec::new()
            } else {
                // receive in reverse tag order
                let b = p.recv(0, 2);
                let a = p.recv(0, 1);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(r.results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn exchange_is_symmetric_and_deadlock_free() {
        let m = machine(2);
        let r = m.run(|p| {
            let partner = 1 - p.rank();
            let got = p.exchange(partner, 9, vec![p.rank() as f64]);
            got[0]
        });
        assert_eq!(r.results[0], 1.0);
        assert_eq!(r.results[1], 0.0);
    }

    #[test]
    fn deterministic_timing_across_runs() {
        let m = machine(4);
        let run = || {
            m.run(|p| {
                // ring communication with staggered compute
                p.compute_flops(1e5 * (p.rank() + 1) as f64, KernelClass::Vector);
                let next = (p.rank() + 1) % p.nprocs();
                let prev = (p.rank() + p.nprocs() - 1) % p.nprocs();
                p.send(next, 0, vec![p.rank() as f64; 10]);
                let _ = p.recv(prev, 0);
                p.time()
            })
            .finish_times
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn overhead_zero_for_embarrassingly_parallel() {
        let m = Machine::new(4, MachineParams::t3d());
        let r = m.run(|p| p.compute_flops(1e6, KernelClass::Matrix));
        assert!(r.overhead().abs() < 1e-12);
        assert!((r.mflops() - 4.0 * 45.0).abs() < 1e-6);
    }

    #[test]
    fn wait_time_recorded_for_blocked_receiver() {
        let m = machine(2);
        let r = m.run(|p| {
            if p.rank() == 0 {
                p.compute_flops(1e6, KernelClass::Vector); // 0.1 s
                p.send(1, 0, vec![0.0; 100]);
                0.0
            } else {
                let _ = p.recv(0, 0);
                p.stats().wait_seconds
            }
        });
        let params = MachineParams::t3d();
        let expect = 0.1 + params.msg_time(100);
        assert!((r.results[1] - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "virtual processor panicked")]
    fn self_send_panics() {
        let m = machine(1);
        m.run(|p| p.send(0, 0, vec![]));
    }

    #[test]
    fn advance_moves_clock_only() {
        let m = machine(1);
        let r = m.run(|p| {
            p.advance(2.5);
            (p.time(), p.stats().flops)
        });
        assert_eq!(r.results[0], (2.5, 0.0));
    }

    #[test]
    fn compute_flops_at_uses_given_rate() {
        let m = machine(1);
        let r = m.run(|p| {
            p.compute_flops_at(1e6, 2e6); // 0.5 s
            p.time()
        });
        assert!((r.results[0] - 0.5).abs() < 1e-12);
    }
}
