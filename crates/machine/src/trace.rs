//! ASCII Gantt rendering of traced machine runs.
//!
//! Enable tracing with [`crate::Machine::with_trace`]; the resulting
//! [`crate::RunResult::traces`] can be rendered into a per-processor
//! timeline showing compute (`#`), message waits (`.`), send overhead
//! (`s`), and idle gaps (` `) — the quickest way to *see* pipeline
//! wavefronts, load imbalance, and synchronization stalls.

use crate::sim::{Activity, Segment};

/// Render per-processor timelines as an ASCII Gantt chart of `width`
/// character columns.
///
/// ```
/// use trisolv_machine::{trace, KernelClass, Machine, MachineParams};
///
/// let machine = Machine::new(2, MachineParams::t3d()).with_trace();
/// let run = machine.run(|p| {
///     p.compute_flops(1e5 * (p.rank() + 1) as f64, KernelClass::Vector);
///     if p.rank() == 0 { let _ = p.recv(1, 0); } else { p.send(0, 0, vec![]); }
/// });
/// let chart = trace::render_gantt(&run.traces, 40);
/// assert!(chart.contains("p0") && chart.contains('#'));
/// ```
///
/// Each row is one processor; each column is a `makespan / width` time
/// bucket labeled with the activity occupying the largest share of that
/// bucket.
pub fn render_gantt(traces: &[Vec<Segment>], width: usize) -> String {
    assert!(width >= 1);
    let makespan = traces
        .iter()
        .flat_map(|t| t.iter().map(|s| s.end))
        .fold(0.0f64, f64::max);
    if makespan <= 0.0 {
        return String::from("(empty trace)\n");
    }
    let dt = makespan / width as f64;
    let mut out = String::new();
    out.push_str(&format!(
        "time: 0 .. {:.3} ms  ({} buckets of {:.3} us)  legend: #=compute .=wait s=send\n",
        makespan * 1e3,
        width,
        dt * 1e6
    ));
    for (rank, trace) in traces.iter().enumerate() {
        let mut busy = vec![[0.0f64; 3]; width]; // per bucket: compute/wait/send
        for seg in trace {
            let kind = match seg.activity {
                Activity::Compute => 0,
                Activity::Wait => 1,
                Activity::Send => 2,
            };
            let b0 = ((seg.start / dt) as usize).min(width - 1);
            let b1 = ((seg.end / dt).ceil() as usize).clamp(b0 + 1, width);
            for (b, bucket) in busy.iter_mut().enumerate().take(b1).skip(b0) {
                let lo = (b as f64) * dt;
                let hi = lo + dt;
                let overlap = (seg.end.min(hi) - seg.start.max(lo)).max(0.0);
                bucket[kind] += overlap;
            }
        }
        out.push_str(&format!("p{rank:<3} |"));
        for bucket in &busy {
            let total: f64 = bucket.iter().sum();
            let ch = if total < dt * 0.05 {
                ' '
            } else if bucket[0] >= bucket[1] && bucket[0] >= bucket[2] {
                '#'
            } else if bucket[1] >= bucket[2] {
                '.'
            } else {
                's'
            };
            out.push(ch);
        }
        out.push_str("|\n");
    }
    out
}

/// Fraction of the makespan each processor spent computing — a compact
/// utilization summary of a traced run.
pub fn utilization(traces: &[Vec<Segment>]) -> Vec<f64> {
    let makespan = traces
        .iter()
        .flat_map(|t| t.iter().map(|s| s.end))
        .fold(0.0f64, f64::max);
    traces
        .iter()
        .map(|t| {
            if makespan <= 0.0 {
                return 0.0;
            }
            t.iter()
                .filter(|s| s.activity == Activity::Compute)
                .map(|s| s.end - s.start)
                .sum::<f64>()
                / makespan
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Group, KernelClass, Machine, MachineParams};

    fn traced_run() -> Vec<Vec<Segment>> {
        let m = Machine::new(3, MachineParams::t3d()).with_trace();
        let r = m.run(|p| {
            p.compute_flops(1e5 * (p.rank() + 1) as f64, KernelClass::Vector);
            crate::coll::barrier(p, &Group::world(3), 1);
            p.compute_flops(1e5, KernelClass::Matrix);
        });
        r.traces
    }

    #[test]
    fn traces_recorded_only_when_enabled() {
        let m = Machine::new(2, MachineParams::t3d());
        let r = m.run(|p| p.compute_flops(1e5, KernelClass::Vector));
        assert!(r.traces.iter().all(Vec::is_empty));
        let traces = traced_run();
        assert!(traces.iter().all(|t| !t.is_empty()));
    }

    #[test]
    fn segments_are_ordered_and_disjoint() {
        for trace in traced_run() {
            for w in trace.windows(2) {
                assert!(w[0].end <= w[1].start + 1e-12);
            }
            for s in trace {
                assert!(s.end > s.start);
            }
        }
    }

    #[test]
    fn gantt_renders_every_processor() {
        let traces = traced_run();
        let g = render_gantt(&traces, 40);
        assert_eq!(g.lines().count(), 4); // header + 3 procs
        assert!(g.contains("p0"));
        assert!(g.contains('#'));
        // the slowest proc (rank 2) computes longest before the barrier;
        // rank 0 must show wait time
        assert!(g.lines().nth(1).unwrap().contains('.'), "{g}");
    }

    #[test]
    fn utilization_orders_by_work() {
        let traces = traced_run();
        let u = utilization(&traces);
        assert_eq!(u.len(), 3);
        // rank 2 did the most pre-barrier work → highest utilization
        assert!(u[2] > u[0]);
        assert!(u.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert_eq!(render_gantt(&[Vec::new()], 10), "(empty trace)\n");
    }
}
