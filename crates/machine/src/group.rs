//! Processor groups ("subcubes").
//!
//! The subtree-to-subcube mapping assigns each supernode at level `l` of
//! the elimination tree to a group of `p/2^l` processors, halving the group
//! at every branch. [`Group`] captures such a subset with group-relative
//! ranks; collectives in [`crate::coll`] operate on groups.

/// An ordered subset of world ranks. Group rank `g` corresponds to world
/// rank `ranks[g]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    ranks: Vec<usize>,
}

impl Group {
    /// The full machine `0..p`.
    pub fn world(p: usize) -> Self {
        Group {
            ranks: (0..p).collect(),
        }
    }

    /// A group from explicit world ranks (must be non-empty and distinct).
    pub fn from_ranks(ranks: Vec<usize>) -> Self {
        assert!(!ranks.is_empty(), "group must be non-empty");
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ranks.len(), "group ranks must be distinct");
        Group { ranks }
    }

    /// Number of processors in the group.
    #[inline]
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// World rank of group member `g`.
    #[inline]
    pub fn world_rank(&self, g: usize) -> usize {
        self.ranks[g]
    }

    /// Group rank of a world rank, or `None` if not a member.
    pub fn group_rank(&self, world: usize) -> Option<usize> {
        self.ranks.iter().position(|&r| r == world)
    }

    /// True if `world` belongs to this group.
    pub fn contains(&self, world: usize) -> bool {
        self.group_rank(world).is_some()
    }

    /// The member world ranks in group order.
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// Split into two halves (first ⌈q/2⌉ ranks, rest) — the subcube
    /// halving used when descending one level of the elimination tree.
    pub fn split_half(&self) -> (Group, Group) {
        assert!(self.size() >= 2, "cannot split a singleton group");
        let mid = self.size().div_ceil(2);
        (
            Group {
                ranks: self.ranks[..mid].to_vec(),
            },
            Group {
                ranks: self.ranks[mid..].to_vec(),
            },
        )
    }

    /// Split into `k` nearly-equal contiguous chunks.
    pub fn split_chunks(&self, k: usize) -> Vec<Group> {
        assert!(k >= 1 && k <= self.size());
        let base = self.size() / k;
        let extra = self.size() % k;
        let mut out = Vec::with_capacity(k);
        let mut at = 0;
        for i in 0..k {
            let len = base + usize::from(i < extra);
            out.push(Group {
                ranks: self.ranks[at..at + len].to_vec(),
            });
            at += len;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_ranks_identity() {
        let g = Group::world(4);
        assert_eq!(g.size(), 4);
        assert_eq!(g.world_rank(2), 2);
        assert_eq!(g.group_rank(3), Some(3));
        assert!(g.contains(0));
        assert!(!g.contains(4));
    }

    #[test]
    fn from_ranks_preserves_order() {
        let g = Group::from_ranks(vec![5, 2, 9]);
        assert_eq!(g.world_rank(0), 5);
        assert_eq!(g.group_rank(9), Some(2));
        assert_eq!(g.group_rank(1), None);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_ranks_rejected() {
        Group::from_ranks(vec![1, 1]);
    }

    #[test]
    fn split_half_partitions() {
        let g = Group::world(8);
        let (a, b) = g.split_half();
        assert_eq!(a.ranks(), &[0, 1, 2, 3]);
        assert_eq!(b.ranks(), &[4, 5, 6, 7]);
        let (a2, _) = a.split_half();
        assert_eq!(a2.ranks(), &[0, 1]);
    }

    #[test]
    fn split_half_odd() {
        let g = Group::world(5);
        let (a, b) = g.split_half();
        assert_eq!(a.size(), 3);
        assert_eq!(b.size(), 2);
    }

    #[test]
    fn split_chunks_covers() {
        let g = Group::world(10);
        let chunks = g.split_chunks(3);
        let sizes: Vec<usize> = chunks.iter().map(Group::size).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        let all: Vec<usize> = chunks.iter().flat_map(|c| c.ranks().to_vec()).collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }
}
