//! Minimal wall-clock measurement and JSON emission for the benchmark
//! harnesses (stands in for an external benchmarking crate; the build
//! must work offline).

use std::time::Instant;

/// Wall-clock statistics for one benchmark case, in seconds.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Minimum over the measured iterations (the usual headline number:
    /// least noise from scheduling).
    pub min: f64,
    /// Median over the measured iterations.
    pub median: f64,
    /// Arithmetic mean over the measured iterations.
    pub mean: f64,
    /// Number of measured iterations.
    pub iters: usize,
}

/// Run `f` repeatedly and report wall-clock statistics: a few warm-up
/// calls, then either `min_iters` iterations or as many as fit in
/// `budget_secs`, whichever is larger.
pub fn measure<T>(min_iters: usize, budget_secs: f64, mut f: impl FnMut() -> T) -> Stats {
    for _ in 0..2 {
        std::hint::black_box(f());
    }
    let mut samples = Vec::new();
    let start = Instant::now();
    while samples.len() < min_iters
        || (start.elapsed().as_secs_f64() < budget_secs && samples.len() < 10 * min_iters)
    {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("time is finite"));
    let n = samples.len();
    Stats {
        min: samples[0],
        median: samples[n / 2],
        mean: samples.iter().sum::<f64>() / n as f64,
        iters: n,
    }
}

/// A hand-rolled JSON value tree, sufficient for the benchmark artifacts.
#[derive(Debug, Clone)]
pub enum Json {
    /// A float (emitted with full round-trip precision).
    Num(f64),
    /// An integer.
    Int(i64),
    /// A string (escaped on write).
    Str(String),
    /// An ordered list.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serialize with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s.push('\n');
        s
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Num(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

/// Stats as a JSON object.
pub fn stats_json(s: Stats) -> Json {
    Json::obj(vec![
        ("min_s", Json::Num(s.min)),
        ("median_s", Json::Num(s.median)),
        ("mean_s", Json::Num(s.mean)),
        ("iters", Json::Int(s.iters as i64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_ordered_stats() {
        let mut x = 0u64;
        let s = measure(5, 0.01, || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert!(s.iters >= 5);
        assert!(s.min <= s.median && s.median <= s.mean * 10.0);
    }

    #[test]
    fn json_escapes_and_nests() {
        let j = Json::obj(vec![
            ("name", Json::Str("a\"b\\c\nd".into())),
            ("vals", Json::Arr(vec![Json::Int(1), Json::Num(0.5)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = j.pretty();
        assert!(s.contains("\\\"b\\\\c\\n"));
        assert!(s.contains("\"vals\": ["));
        assert!(s.contains("\"empty\": []"));
    }
}
