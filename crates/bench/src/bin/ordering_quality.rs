//! Ordering-quality survey: fill, factorization opcount, and
//! elimination-tree height for every ordering in the workspace across the
//! matrix classes the paper analyzes.
//!
//! Run: `cargo run --release -p trisolv-bench --bin ordering_quality`

use trisolv_analysis::Table;
use trisolv_factor::seqchol;
use trisolv_graph::{mindeg, multilevel, nd, rcm, Graph, Permutation};
use trisolv_matrix::{gen, CscMatrix};

struct Candidate {
    name: &'static str,
    perm: Permutation,
}

fn orderings(g: &Graph, coords: Option<&[[f64; 3]]>) -> Vec<Candidate> {
    let n = g.nvertices();
    let mut out = vec![
        Candidate {
            name: "natural",
            perm: Permutation::identity(n),
        },
        Candidate {
            name: "RCM",
            perm: rcm::reverse_cuthill_mckee(g),
        },
        Candidate {
            name: "min degree",
            perm: mindeg::minimum_degree(g),
        },
        Candidate {
            name: "BFS ND",
            perm: nd::nested_dissection(g, nd::NdOptions::default()),
        },
        Candidate {
            name: "multilevel ND",
            perm: multilevel::nested_dissection_multilevel(g, multilevel::MlOptions::default()),
        },
    ];
    if let Some(c) = coords {
        out.push(Candidate {
            name: "geometric ND",
            perm: nd::nested_dissection_coords(g, c, nd::NdOptions::default()),
        });
    }
    out
}

fn survey(title: &str, a: &CscMatrix, coords: Option<&[[f64; 3]]>) {
    let g = Graph::from_sym_lower(a);
    let mut table = Table::new(vec![
        "ordering",
        "factor nnz",
        "fill ratio",
        "factor Mflop",
        "etree height",
        "supernodes",
    ])
    .with_title(format!("{title}  (N = {}, nnz = {})", a.ncols(), a.nnz()));
    for cand in orderings(&g, coords) {
        let an = seqchol::analyze_with_perm(a, &cand.perm);
        table.push_row(vec![
            cand.name.to_string(),
            an.part.nnz().to_string(),
            format!("{:.2}", an.part.nnz() as f64 / a.nnz() as f64),
            format!("{:.1}", an.part.factor_flops() as f64 / 1e6),
            an.sym.tree().height().to_string(),
            an.part.nsup().to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    survey(
        "2-D grid (5-point)",
        &gen::grid2d_laplacian(40, 40),
        Some(&nd::grid2d_coords(40, 40, 1)),
    );
    survey(
        "3-D grid (7-point)",
        &gen::grid3d_laplacian(11, 11, 11),
        Some(&nd::grid3d_coords(11, 11, 11, 1)),
    );
    let (irr, pts) = gen::mesh2d_irregular(36, 5);
    survey("irregular 2-D mesh", &irr, Some(&pts));
    survey("random sparse SPD", &gen::random_spd(900, 4, 9), None);
    println!("Reading: on mesh classes the dissection orderings give both the least fill");
    println!("and the shallowest (most parallelizable) trees — geometric ND when");
    println!("coordinates exist, multilevel ND otherwise; minimum degree competes on fill");
    println!("but yields taller trees; banded orderings (natural, RCM) are hopeless for");
    println!("tree parallelism. This is the paper's ordering prerequisite, quantified.");
}
