//! Figure 8 reproduction: solver MFLOPS versus processor count for four
//! test matrices and NRHS ∈ {1, 2, 5, 10, 20, 30} — the performance-curve
//! figure of the paper. Prints one CSV block per matrix plus a coarse
//! ASCII plot of the NRHS = 1 and NRHS = 30 series.
//!
//! Run: `cargo run --release -p trisolv-bench --bin fig8_scaling_curves`

use trisolv_analysis::Table;
use trisolv_bench::{Prepared, Problem};

fn ascii_plot(series: &[(String, Vec<(usize, f64)>)]) {
    let maxy = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|p| p.1))
        .fold(0.0f64, f64::max);
    let height = 12;
    let cols: Vec<usize> = series[0].1.iter().map(|p| p.0).collect();
    for row in (0..height).rev() {
        let lo = maxy * row as f64 / height as f64;
        let hi = maxy * (row + 1) as f64 / height as f64;
        let mut line = format!("{:>8.0} |", hi);
        for (ci, _) in cols.iter().enumerate() {
            let mut ch = ' ';
            for (si, (_, pts)) in series.iter().enumerate() {
                let y = pts[ci].1;
                if y > lo && y <= hi {
                    ch = char::from_digit(si as u32 + 1, 10).unwrap_or('*');
                }
            }
            line.push_str(&format!("   {ch}   "));
        }
        println!("{line}");
    }
    let mut axis = String::from("         +");
    for _ in &cols {
        axis.push_str("-------");
    }
    println!("{axis}");
    let mut labels = String::from("          ");
    for p in &cols {
        labels.push_str(&format!("{:^7}", p));
    }
    println!("{labels}  (p)");
    for (si, (name, _)) in series.iter().enumerate() {
        println!("   [{}] = {}", si + 1, name);
    }
}

fn main() {
    let block = 8;
    let ps = [1usize, 4, 16, 64, 256];
    let nrhs_list = [1usize, 2, 5, 10, 20, 30];
    // the four matrices the paper plots
    let suite = Problem::paper_suite();
    let picks = [0usize, 1, 3, 4]; // BCSSTK15*, BCSSTK31*, CUBE35*, COPTER2*
    for &idx in &picks {
        let prob = &suite[idx];
        let prep = Prepared::build(prob);
        println!("\n== {} (N = {}) : MFLOPS vs p ==\n", prep.name, prep.n());
        let mut table = Table::new(
            std::iter::once("p".to_string())
                .chain(nrhs_list.iter().map(|r| format!("NRHS={r}")))
                .collect::<Vec<_>>(),
        );
        let mut s1: Vec<(usize, f64)> = Vec::new();
        let mut s30: Vec<(usize, f64)> = Vec::new();
        for &p in &ps {
            let mut row = vec![p.to_string()];
            for &nrhs in &nrhs_list {
                let r = prep.solve(p, nrhs, block);
                row.push(format!("{:.1}", r.mflops()));
                if nrhs == 1 {
                    s1.push((p, r.mflops()));
                }
                if nrhs == 30 {
                    s30.push((p, r.mflops()));
                }
            }
            table.push_row(row);
        }
        println!("{}", table.render());
        println!("CSV:\n{}", table.to_csv());
        ascii_plot(&[("NRHS=1".to_string(), s1), ("NRHS=30".to_string(), s30)]);
    }
    println!("\nShape checks vs the paper's Figure 8:");
    println!(" * every curve rises with p (larger NRHS rises faster and saturates later);");
    println!(" * NRHS=30 reaches roughly an order of magnitude above NRHS=1;");
    println!(" * single-processor performance also grows with NRHS (BLAS-3 effect).");
}
