//! Figure 4 reproduction: column-priority pipelined **back substitution**
//! on a hypothetical supernode distributed among 4 processors with
//! column-wise cyclic mapping (equivalently: row-wise cyclic mapping of
//! the `L` trapezoid, processed right-to-left).
//!
//! Run: `cargo run --release -p trisolv-bench --bin fig4_backward_schedule`

use trisolv_core::pipeline::Schedule;

fn main() {
    let (nb_rows, nb_cols, q) = (8, 4, 4);
    let s = Schedule::pipelined_backward(nb_rows, nb_cols, q);
    println!("== Figure 4: column-priority pipelined back substitution, {q} processors ==");
    println!("   (time step at which each block's contribution is processed; the");
    println!("    wave moves right-to-left toward each diagonal solve)\n");
    println!("{}", s.render());
    println!("   makespan {} steps", s.makespan);
    let total: usize = (0..nb_rows).map(|i| nb_cols.min(i + 1)).sum();
    println!(
        "blocks of work: {total}; ideal steps at q={q}: {}",
        total.div_ceil(q)
    );
}
