//! CI perf gate: the subtree-mapped executor at one thread must stay
//! within 10% of the sequential solver.
//!
//! The single-thread case is the executor's floor — one worker runs every
//! subtree task and top supernode in postorder, so any gap versus
//! `seq::forward_backward` is pure scheduling overhead (dep-counter
//! atomics on the cut, arena staging). The gate is deliberately narrow:
//! one matrix (grid2d 64×64), two RHS widths, best-of-three measurement
//! rounds so one noisy CI sample cannot fail the job. Bit-identity with
//! the sequential answer is asserted before any timing.
//!
//! Exits non-zero (after printing both timings) if any case falls below
//! the 0.9× floor.
//!
//! Run: `cargo run --release -p trisolv-bench --bin perf_smoke`

use trisolv_bench::timing::measure;
use trisolv_core::{seq, ThreadedSolver};
use trisolv_factor::seqchol::{analyze_with_perm, factor_supernodal};
use trisolv_graph::{nd, Graph};
use trisolv_matrix::gen;

/// Minimum acceptable `seq_time / threaded_t1_time`.
const FLOOR: f64 = 0.9;
/// Measurement rounds per variant; the best (smallest min) wins. The
/// two variants swap measurement order every round so slow clock drift
/// (turbo decay, thermal throttling) cannot systematically favor
/// whichever side is timed first.
const ROUNDS: usize = 4;

fn main() {
    let a = gen::grid2d_laplacian(64, 64);
    let g = Graph::from_sym_lower(&a);
    let perm = nd::nested_dissection(&g, nd::NdOptions::default());
    let an = analyze_with_perm(&a, &perm);
    let f = factor_supernodal(&an.pa, &an.part).expect("SPD");

    let mut failed = false;
    for nrhs in [1usize, 8] {
        let b = gen::random_rhs(f.n(), nrhs, 42);
        let expect = seq::forward_backward(&f, &b);
        let solver = ThreadedSolver::new(&f)
            .expect("valid partition")
            .with_threads(1);
        let mut ws = solver.workspace(nrhs);
        let got = solver.forward_backward_with(&b, &mut ws);
        assert_eq!(
            got.as_slice(),
            expect.as_slice(),
            "nrhs={nrhs}: t=1 executor is not bit-identical to seq"
        );

        let mut t_seq = f64::INFINITY;
        let mut t_thr = f64::INFINITY;
        for round in 0..ROUNDS {
            if round % 2 == 0 {
                t_seq = t_seq.min(measure(10, 0.25, || seq::forward_backward(&f, &b)).min);
                t_thr =
                    t_thr.min(measure(10, 0.25, || solver.forward_backward_with(&b, &mut ws)).min);
            } else {
                t_thr =
                    t_thr.min(measure(10, 0.25, || solver.forward_backward_with(&b, &mut ws)).min);
                t_seq = t_seq.min(measure(10, 0.25, || seq::forward_backward(&f, &b)).min);
            }
        }
        let ratio = t_seq / t_thr;
        let verdict = if ratio >= FLOOR { "ok" } else { "FAIL" };
        println!(
            "grid2d_64x64 nrhs={nrhs}: seq {:.3?}  subtree-map t=1 {:.3?}  ratio {ratio:.3} \
             (floor {FLOOR}) {verdict}",
            std::time::Duration::from_secs_f64(t_seq),
            std::time::Duration::from_secs_f64(t_thr),
        );
        failed |= ratio < FLOOR;
    }
    if failed {
        eprintln!("perf_smoke: single-thread executor overhead exceeds the 10% budget");
        std::process::exit(1);
    }
    println!("perf_smoke: pass");
}
