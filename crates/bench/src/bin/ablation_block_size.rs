//! Ablation: block size `b` of the 1-D block-cyclic supernode
//! partitioning (DESIGN.md §8).
//!
//! The paper's analysis treats `b` as a constant; the trade-off it hides
//! is pipeline depth versus message count: communication per supernode is
//! `b(q−1) + t`, so small `b` shortens the pipeline ramp but multiplies
//! message startups, while large `b` amortizes startups but delays the
//! wavefront. This harness sweeps `b` at several processor counts.
//!
//! Run: `cargo run --release -p trisolv-bench --bin ablation_block_size`

use trisolv_analysis::Table;
use trisolv_bench::{Prepared, Problem};

fn main() {
    let prep = Prepared::build(&Problem::grid2d(63));
    println!(
        "block-size ablation on {} (N = {}, NRHS = 1)\n",
        prep.name,
        prep.n()
    );
    let blocks = [1usize, 2, 4, 8, 16, 32];
    let mut table = Table::new(
        std::iter::once("p".to_string())
            .chain(blocks.iter().map(|b| format!("b={b} (ms)")))
            .chain(std::iter::once("best".to_string()))
            .collect::<Vec<_>>(),
    );
    for p in [4usize, 16, 64] {
        let times: Vec<f64> = blocks
            .iter()
            .map(|&b| prep.solve(p, 1, b).total_time * 1e3)
            .collect();
        let best = blocks[times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0];
        let mut row = vec![p.to_string()];
        row.extend(times.iter().map(|t| format!("{t:.3}")));
        row.push(format!("b={best}"));
        table.push_row(row);
    }
    println!("{}", table.render());
    println!("Reading: the optimum is flat and sits at moderate b (≈4–8) across processor");
    println!("counts — small b multiplies per-block message startups, large b deepens the");
    println!("b(q−1) pipeline ramp. The paper's treatment of b as a modest constant is safe.");
}
