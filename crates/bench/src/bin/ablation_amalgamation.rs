//! Ablation: relaxed supernode amalgamation vs parallel solve performance.
//!
//! Fundamental supernodes on sparse problems are often narrow (width 1–3),
//! which starves the pipelined dense kernels and multiplies per-supernode
//! startups. Amalgamation pads a few explicit zeros to fatten supernodes —
//! this harness sweeps the relaxation and reports factor storage, supernode
//! count/width, and simulated solve time.
//!
//! Run: `cargo run --release -p trisolv-bench --bin ablation_amalgamation`

use trisolv_analysis::Table;
use trisolv_core::mapping::SubcubeMapping;
use trisolv_core::tree::{solve_fb, SolveConfig};
use trisolv_factor::seqchol;
use trisolv_graph::{nd, Graph};
use trisolv_machine::MachineParams;
use trisolv_matrix::gen;

fn main() {
    let k = 41;
    let a = gen::grid2d_laplacian(k, k);
    let g = Graph::from_sym_lower(&a);
    let perm =
        nd::nested_dissection_coords(&g, &nd::grid2d_coords(k, k, 1), nd::NdOptions::default());
    let an = seqchol::analyze_with_perm(&a, &perm);
    println!(
        "amalgamation ablation on GRID2D({k}) (N = {}), p = 16, NRHS ∈ {{1, 10}}\n",
        a.ncols()
    );
    let mut table = Table::new(vec![
        "relaxation (abs, frac)",
        "supernodes",
        "mean width",
        "factor nnz (+pad %)",
        "T_P nrhs=1 (ms)",
        "T_P nrhs=10 (ms)",
    ]);
    let base_nnz = an.part.nnz();
    for (abs, frac) in [(0usize, 0.0f64), (4, 0.05), (16, 0.15), (64, 0.3)] {
        let part = an.part.amalgamate(abs, frac);
        let factor = seqchol::factor_supernodal(&an.pa, &part).expect("SPD");
        let mapping = SubcubeMapping::new(&part, 16);
        let config = SolveConfig {
            nprocs: 16,
            block: 8,
            params: MachineParams::t3d(),
        };
        let times: Vec<f64> = [1usize, 10]
            .iter()
            .map(|&nrhs| {
                let b = gen::random_rhs(a.ncols(), nrhs, 3);
                solve_fb(&factor, &mapping, &b, &config).1.total_time
            })
            .collect();
        let mean_w = a.ncols() as f64 / part.nsup() as f64;
        table.push_row(vec![
            format!("({abs}, {frac})"),
            part.nsup().to_string(),
            format!("{mean_w:.1}"),
            format!(
                "{} (+{:.1}%)",
                part.nnz(),
                100.0 * (part.nnz() as f64 / base_nnz as f64 - 1.0)
            ),
            format!("{:.3}", times[0] * 1e3),
            format!("{:.3}", times[1] * 1e3),
        ]);
    }
    println!("{}", table.render());
    println!("Reading: mild relaxation collapses the supernode count ~2-3x for ~5% extra");
    println!("storage at essentially unchanged simulated solve time — the padded flops");
    println!("offset the saved startups under the simulator's flat flop-rate model. The");
    println!("real-hardware payoff of fat supernodes (BLAS-3 arithmetic intensity, fewer");
    println!("per-block overheads) is outside a linear cost model; the wall-clock Criterion");
    println!("benches (`cargo bench`) are where that effect shows. Aggressive relaxation is");
    println!("a clear loss in both views.");
}
