//! Figure 6 / Section 4 reproduction: converting the two-dimensional
//! partitioning of a supernode into a one-dimensional partitioning, and
//! the cost of redistributing the whole factor relative to one triangular
//! solve (the paper reports a ratio of at most 0.9, average ≈ 0.5, on the
//! T3D).
//!
//! Run: `cargo run --release -p trisolv-bench --bin fig6_redistribution`

use trisolv_analysis::Table;
use trisolv_bench::{Prepared, Problem};
use trisolv_machine::{BlockCyclic1d, BlockCyclic2d};

fn main() {
    // --- part 1: the single-supernode picture (Figure 6) ---
    println!("== Figure 6: 2-D -> 1-D conversion of one supernode (n=8, t=4, q=4, b=1) ==\n");
    let (n, t, q, b) = (8usize, 4usize, 4usize, 1usize);
    let (pr, pc) = BlockCyclic2d::square_grid(q);
    let src = BlockCyclic2d::new(n, t, b, pr, pc);
    let dst = BlockCyclic1d::new(n, b, q);
    println!("   2-D owners (grid {pr}x{pc}):          1-D owners (row block-cyclic):");
    for i in 0..n {
        let mut left = String::new();
        let mut right = String::new();
        for j in 0..t {
            if j > i {
                left.push_str("  .");
            } else {
                left.push_str(&format!(" P{}", src.owner(i, j)));
            }
        }
        for j in 0..t {
            if j > i {
                right.push_str("  .");
            } else {
                right.push_str(&format!(" P{}", dst.owner(i)));
            }
        }
        println!("   {left}        {right}");
    }
    println!("\n   Every (grid-row stripe) moves as an all-to-all personalized exchange");
    println!("   among the q processors — O(n·t/q) words per processor.\n");

    // --- part 2: whole-factor redistribution vs solve time (Section 4) ---
    println!("== Section 4 experiment: redistribution time vs. one FB solve (NRHS=1) ==\n");
    let mut table = Table::new(vec![
        "problem",
        "N",
        "p",
        "redistribute (s)",
        "FBsolve (s)",
        "ratio",
    ]);
    let block = 8;
    let mut ratios = Vec::new();
    for prob in [
        Problem::grid2d(63),
        Problem::grid3d(13),
        Problem::paper_suite().remove(0),
    ] {
        let prep = Prepared::build(&prob);
        for p in [16usize, 64] {
            let redist = prep.redistribute(p, block);
            let solve = prep.solve(p, 1, block).total_time;
            let ratio = redist / solve;
            ratios.push(ratio);
            table.push_row(vec![
                prep.name.clone(),
                prep.n().to_string(),
                p.to_string(),
                format!("{redist:.6}"),
                format!("{solve:.6}"),
                format!("{ratio:.2}"),
            ]);
        }
    }
    println!("{}", table.render());
    let avg: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let max = ratios.iter().fold(0.0f64, |a, &b| a.max(b));
    println!("average ratio {avg:.2}, max ratio {max:.2}");
    println!("(paper, Cray T3D: average ~0.5, max 0.9 — amortized further over repeated solves)");
}
