//! Shared-memory solver benchmark: subtree-mapped executor vs the
//! pre-rewrite fork-join baseline vs the sequential solver.
//!
//! Measures forward+backward wall-clock on grid Laplacians for several
//! RHS widths, sweeping the executor width over 1, 2, 4, and the machine
//! maximum, and writes `BENCH_threaded.json` (plus a table on stdout).
//! Before timing anything, each executor width is gated on bit-identity
//! with the sequential solver — the subtree-mapped executor performs the
//! relay accumulation order exactly, on any thread count.
//!
//! Run: `cargo run --release -p trisolv-bench --bin bench_threaded`

use trisolv_bench::forkjoin;
use trisolv_bench::timing::{measure, stats_json, Json, Stats};
use trisolv_core::{seq, ThreadedSolver};
use trisolv_factor::seqchol::{analyze_with_perm, factor_supernodal};
use trisolv_factor::SupernodalFactor;
use trisolv_graph::{nd, Graph};
use trisolv_matrix::gen;

struct Case {
    name: &'static str,
    matrix: trisolv_matrix::CscMatrix,
    nrhs: usize,
}

fn factor(a: &trisolv_matrix::CscMatrix) -> SupernodalFactor {
    let g = Graph::from_sym_lower(a);
    let perm = nd::nested_dissection(&g, nd::NdOptions::default());
    let an = analyze_with_perm(a, &perm);
    factor_supernodal(&an.pa, &an.part).expect("SPD")
}

fn row(name: &str, variant: &str, s: Stats, baseline: Option<f64>) {
    let speedup = baseline.map_or(String::new(), |b| format!("  {:5.2}x", b / s.min));
    println!(
        "{name:28} {variant:16} min {:>10.3?} median {:>10.3?}{speedup}",
        std::time::Duration::from_secs_f64(s.min),
        std::time::Duration::from_secs_f64(s.median),
    );
}

fn main() {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("bench_threaded: forward+backward wall-clock ({hw} hw threads)\n");

    // Executor widths to sweep: 1, 2, 4, and the machine maximum.
    let mut sweep = vec![1usize, 2, 4, hw];
    sweep.sort_unstable();
    sweep.dedup();

    let cases = vec![
        Case {
            name: "grid2d_64x64_nrhs8",
            matrix: gen::grid2d_laplacian(64, 64),
            nrhs: 8,
        },
        Case {
            name: "grid2d_96x96_nrhs8",
            matrix: gen::grid2d_laplacian(96, 96),
            nrhs: 8,
        },
        Case {
            name: "grid2d_96x96_nrhs1",
            matrix: gen::grid2d_laplacian(96, 96),
            nrhs: 1,
        },
        Case {
            name: "grid3d_20x20x20_nrhs8",
            matrix: gen::grid3d_laplacian(20, 20, 20),
            nrhs: 8,
        },
    ];

    let mut out = Vec::new();
    for case in &cases {
        let f = factor(&case.matrix);
        let b = gen::random_rhs(f.n(), case.nrhs, 42);

        // correctness gates before timing anything
        let expect = seq::forward_backward(&f, &b);
        let err_fj = forkjoin::forward_backward(&f, &b)
            .max_abs_diff(&expect)
            .expect("same shape");
        assert!(err_fj < 1e-12, "{}: baseline diverges", case.name);

        let s_seq = measure(10, 1.0, || seq::forward_backward(&f, &b));
        let s_fj = measure(10, 1.0, || forkjoin::forward_backward(&f, &b));
        row(case.name, "sequential", s_seq, None);
        row(case.name, "forkjoin(seed)", s_fj, Some(s_seq.min));

        let mut sweep_json = Vec::new();
        let mut s_max: Option<Stats> = None;
        for &t in &sweep {
            let solver = ThreadedSolver::new(&f)
                .expect("valid partition")
                .with_threads(t);
            let mut ws = solver.workspace(case.nrhs);
            let got = solver.forward_backward_with(&b, &mut ws);
            assert_eq!(
                got.as_slice(),
                expect.as_slice(),
                "{}: subtree-mapped executor at {t} threads is not bit-identical to seq",
                case.name
            );
            let s_t = measure(10, 1.0, || solver.forward_backward_with(&b, &mut ws));
            row(
                case.name,
                &format!("subtree-map t={t}"),
                s_t,
                Some(s_seq.min),
            );
            sweep_json.push(Json::obj(vec![
                ("threads", Json::Int(t as i64)),
                (
                    "n_subtree_tasks",
                    Json::Int(solver.schedule().n_tasks() as i64),
                ),
                (
                    "n_top_supernodes",
                    Json::Int(solver.schedule().top().len() as i64),
                ),
                ("stats", stats_json(s_t)),
                ("speedup_vs_seq", Json::Num(s_seq.min / s_t.min)),
            ]));
            if t == hw {
                s_max = Some(s_t);
            }
        }
        let s_best = s_max.expect("sweep ran");
        println!(
            "{:28} subtree-map(t={hw}) vs forkjoin: {:.2}x\n",
            "",
            s_fj.min / s_best.min
        );

        out.push(Json::obj(vec![
            ("case", Json::Str(case.name.to_string())),
            ("n", Json::Int(f.n() as i64)),
            ("nsup", Json::Int(f.nsup() as i64)),
            ("nrhs", Json::Int(case.nrhs as i64)),
            ("executor_threads", Json::Int(hw as i64)),
            ("sequential", stats_json(s_seq)),
            ("forkjoin_seed", stats_json(s_fj)),
            ("subtree_mapped", stats_json(s_best)),
            ("speedup_vs_seq", Json::Num(s_seq.min / s_best.min)),
            ("speedup_vs_forkjoin", Json::Num(s_fj.min / s_best.min)),
            ("thread_sweep", Json::Arr(sweep_json)),
        ]));
    }

    let doc = Json::obj(vec![
        ("bench", Json::Str("threaded_solve".into())),
        ("hw_threads", Json::Int(hw as i64)),
        ("cases", Json::Arr(out)),
    ]);
    std::fs::write("BENCH_threaded.json", doc.pretty()).expect("write BENCH_threaded.json");
    println!("wrote BENCH_threaded.json");
}
