//! Service-level reproduction of the paper's multi-RHS amortization curve.
//!
//! The paper reports 435 MFLOPS at 1 RHS vs >3 GFLOPS at 30 blocked RHS on
//! the T3D: per-solve overhead, not arithmetic, limits throughput. Here the
//! same sweep runs at the *service* level: a solve server is started with
//! micro-batch sizes {1, 4, 8, 30}, a fixed fleet of closed-loop clients
//! hammers it with single-RHS requests over loopback TCP, and the measured
//! requests/sec show how far merging concurrent requests into blocked
//! `n×k` solves amortizes the per-request cost. Writes `BENCH_server.json`.
//!
//! Run: `cargo run --release -p trisolv-bench --bin bench_server`

use std::time::Duration;

use trisolv_bench::timing::Json;
use trisolv_matrix::gen;
use trisolv_server::{
    BatchOptions, Client, EngineOptions, ExecMode, LoadGenOptions, Server, ServerOptions,
};

const MATRIX_SPEC: &str = "grid2d:112";
const CLIENTS: usize = 30;
const BATCH_SIZES: [usize; 4] = [1, 4, 8, 30];
const RUN_SECS: f64 = 2.0;
const WINDOW_MS: u64 = 10;
/// Repetitions per configuration; the best rep is reported. Throughput
/// under a noisy scheduler only ever loses to interference, so the max
/// over reps is the least-biased estimate of the machine's capability.
const REPS: usize = 3;

/// Numeric override from the environment, for ad-hoc sweeps without rebuilds.
fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct ConfigResult {
    max_batch: usize,
    requests: u64,
    errors: u64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
    batches: u64,
    mean_batch: f64,
    largest_batch: usize,
}

fn run_config(a: &trisolv_matrix::CscMatrix, max_batch: usize) -> ConfigResult {
    let clients = env_or("BENCH_CLIENTS", CLIENTS);
    let server = Server::spawn(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: clients + 2,
        engine: EngineOptions {
            exec: ExecMode::Threaded,
            batch: BatchOptions {
                max_batch,
                window: Duration::from_millis(env_or("BENCH_WINDOW_MS", WINDOW_MS)),
                wait_timeout: Duration::from_secs(30),
            },
            ..EngineOptions::default()
        },
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let loaded = Client::connect(&addr)
        .expect("connect")
        .load(a)
        .expect("factor and cache");

    let report = trisolv_server::run_load(&LoadGenOptions {
        addr,
        fingerprint: loaded.fingerprint,
        n: loaded.n,
        clients,
        duration: Duration::from_secs_f64(env_or("BENCH_RUN_SECS", RUN_SECS)),
        seed: 42,
    })
    .expect("load generation");
    let stats = server.engine().stats();
    server.join();

    ConfigResult {
        max_batch,
        requests: report.requests,
        errors: report.errors,
        rps: report.throughput_rps,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        mean_us: report.mean_us,
        batches: stats.batches,
        mean_batch: stats.batched_cols as f64 / (stats.batches.max(1)) as f64,
        largest_batch: stats.max_batch,
    }
}

fn main() {
    let spec = std::env::var("BENCH_MATRIX").unwrap_or_else(|_| MATRIX_SPEC.to_string());
    let clients = env_or("BENCH_CLIENTS", CLIENTS);
    let run_secs = env_or("BENCH_RUN_SECS", RUN_SECS);
    let a = gen::from_spec(&spec).expect("matrix spec");
    println!(
        "bench_server: {spec} (n = {}), {clients} closed-loop clients, {run_secs} s per config\n",
        a.nrows()
    );
    println!(
        "{:>9} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10}",
        "max_batch", "req/s", "p50 us", "p99 us", "mean batch", "batches", "errors"
    );

    let reps = env_or("BENCH_REPS", REPS).max(1);
    // round-robin the repetitions so a slow stretch of the machine hits
    // every configuration instead of wiping out one config's whole set
    let mut best: Vec<Option<ConfigResult>> = BATCH_SIZES.iter().map(|_| None).collect();
    for _ in 0..reps {
        for (slot, &k) in BATCH_SIZES.iter().enumerate() {
            let r = run_config(&a, k);
            if best[slot].as_ref().is_none_or(|b| r.rps > b.rps) {
                best[slot] = Some(r);
            }
        }
    }
    let mut results = Vec::new();
    for r in best.into_iter().flatten() {
        println!(
            "{:>9} {:>10.0} {:>10.0} {:>10.0} {:>10.2} {:>11} {:>10}",
            r.max_batch, r.rps, r.p50_us, r.p99_us, r.mean_batch, r.batches, r.errors
        );
        assert_eq!(
            r.errors, 0,
            "config {}: load generation saw errors",
            r.max_batch
        );
        assert!(
            r.requests > 0,
            "config {}: no requests completed",
            r.max_batch
        );
        results.push(r);
    }

    let rps_of = |k: usize| {
        results
            .iter()
            .find(|r| r.max_batch == k)
            .map(|r| r.rps)
            .expect("config ran")
    };
    let base = rps_of(1);
    let ratio8 = rps_of(8) / base;
    let ratio30 = rps_of(30) / base;
    println!(
        "\nthroughput vs unbatched: k=4 {:.2}x, k=8 {:.2}x, k=30 {:.2}x",
        rps_of(4) / base,
        ratio8,
        ratio30
    );

    let configs: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("max_batch", Json::Int(r.max_batch as i64)),
                ("requests", Json::Int(r.requests as i64)),
                ("errors", Json::Int(r.errors as i64)),
                ("throughput_rps", Json::Num(r.rps)),
                ("p50_us", Json::Num(r.p50_us)),
                ("p99_us", Json::Num(r.p99_us)),
                ("mean_us", Json::Num(r.mean_us)),
                ("batches", Json::Int(r.batches as i64)),
                ("mean_batch", Json::Num(r.mean_batch)),
                ("largest_batch", Json::Int(r.largest_batch as i64)),
                ("speedup_vs_unbatched", Json::Num(r.rps / base)),
            ])
        })
        .collect();
    let doc = Json::obj(vec![
        ("bench", Json::Str("server_batching".into())),
        ("matrix", Json::Str(spec.clone())),
        ("n", Json::Int(a.nrows() as i64)),
        ("clients", Json::Int(clients as i64)),
        ("run_secs", Json::Num(run_secs)),
        (
            "batch_window_ms",
            Json::Int(env_or("BENCH_WINDOW_MS", WINDOW_MS) as i64),
        ),
        (
            "hw_threads",
            Json::Int(std::thread::available_parallelism().map_or(1, |t| t.get()) as i64),
        ),
        ("configs", Json::Arr(configs)),
        ("speedup_k8_vs_k1", Json::Num(ratio8)),
        ("speedup_k30_vs_k1", Json::Num(ratio30)),
        (
            "batched_2x_unbatched",
            Json::Str(if ratio8.max(ratio30) >= 2.0 {
                "yes".into()
            } else {
                "no".into()
            }),
        ),
    ]);
    std::fs::write("BENCH_server.json", doc.pretty()).expect("write BENCH_server.json");
    println!("wrote BENCH_server.json");
}
