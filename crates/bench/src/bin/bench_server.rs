//! Service-level reproduction of the paper's multi-RHS amortization curve.
//!
//! The paper reports 435 MFLOPS at 1 RHS vs >3 GFLOPS at 30 blocked RHS on
//! the T3D: per-solve overhead, not arithmetic, limits throughput. Here the
//! same sweep runs at the *service* level: a solve server is started with
//! micro-batch sizes {1, 4, 8, 30}, a fixed fleet of closed-loop clients
//! hammers it with single-RHS requests over loopback TCP, and the measured
//! requests/sec show how far merging concurrent requests into blocked
//! `n×k` solves amortizes the per-request cost. A final configuration
//! re-runs the k=8 sweep under an injected fault plan (torn replies,
//! dropped connections, executor panics) with retrying clients, reporting
//! the goodput the hardening ladder preserves. A cache-density row then
//! round-robins a six-grid working set at a fixed byte budget calibrated
//! to hold the whole set in `f32` but not in `f64`, reporting each lane's
//! LOAD hit rate (DESIGN.md §17). A connection sweep then
//! holds 30 / 300 / 3000 mostly-idle connections against the event-driven
//! front end while a small active fleet keeps soliciting solves — the
//! claim under test is that idle fan-in costs (almost) nothing and active
//! latency does not collapse. Writes `BENCH_server.json`.
//!
//! Run: `cargo run --release -p trisolv-bench --bin bench_server`
//!
//! Env knobs: `BENCH_CLIENTS`, `BENCH_RUN_SECS`, `BENCH_WINDOW_MS`,
//! `BENCH_MATRIX`, `BENCH_FAULT_SPEC`, `BENCH_REPS`, `BENCH_CONN_SWEEP`
//! (comma-separated connection counts), and `BENCH_SWEEP_ONLY=1` to run
//! just the connection sweep (CI smoke; skips the JSON artifact).

use std::time::Duration;

use trisolv_bench::timing::Json;
use trisolv_matrix::gen;
use trisolv_server::{
    BatchOptions, Client, ClientOptions, EngineOptions, ExecMode, FaultPlan, LoadGenOptions,
    PrecisionMode, Server, ServerOptions,
};

const MATRIX_SPEC: &str = "grid2d:112";
const CLIENTS: usize = 30;
const BATCH_SIZES: [usize; 4] = [1, 4, 8, 30];
const RUN_SECS: f64 = 2.0;
const WINDOW_MS: u64 = 10;
/// Repetitions per configuration; the best rep is reported. Throughput
/// under a noisy scheduler only ever loses to interference, so the max
/// over reps is the least-biased estimate of the machine's capability.
const REPS: usize = 3;
/// Fault plan for the resilience configuration: torn replies, dropped
/// connections, and executor panics, all on deterministic counters.
const FAULT_SPEC: &str = "seed=9;write.torn=every:31;conn.drop=every:23;solve.panic=every:19";
/// Connection sweep: total connections held against the server, almost all
/// idle, while [`SWEEP_ACTIVE`] closed-loop clients keep soliciting solves.
const CONN_SWEEP: [usize; 3] = [30, 300, 3000];
const SWEEP_ACTIVE: usize = 8;

/// Numeric override from the environment, for ad-hoc sweeps without rebuilds.
fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct ConfigResult {
    max_batch: usize,
    requests: u64,
    errors: u64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
    batches: u64,
    mean_batch: f64,
    largest_batch: usize,
    retried: u64,
    shed: u64,
    deadline_missed: u64,
    reconnects: u64,
    exec_fallbacks: u64,
    faults_injected: u64,
}

fn run_config(a: &trisolv_matrix::CscMatrix, max_batch: usize, fault_spec: &str) -> ConfigResult {
    let clients = env_or("BENCH_CLIENTS", CLIENTS);
    let server = Server::spawn(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: clients + 2,
        engine: EngineOptions {
            exec: ExecMode::Threaded,
            batch: BatchOptions {
                max_batch,
                window: Duration::from_millis(env_or("BENCH_WINDOW_MS", WINDOW_MS)),
                wait_timeout: Duration::from_secs(30),
            },
            ..EngineOptions::default()
        },
        fault: FaultPlan::parse(fault_spec).expect("fault spec"),
        ..ServerOptions::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let loaded = Client::connect(&addr)
        .expect("connect")
        .load(a)
        .expect("factor and cache");

    let report = trisolv_server::run_load(&LoadGenOptions {
        addr,
        fingerprint: loaded.fingerprint,
        n: loaded.n,
        clients,
        duration: Duration::from_secs_f64(env_or("BENCH_RUN_SECS", RUN_SECS)),
        seed: 42,
        deadline_ms: 0,
        client: ClientOptions {
            retries: if fault_spec.is_empty() { 3 } else { 16 },
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            ..ClientOptions::default()
        },
        idle_conns: 0,
    })
    .expect("load generation");
    let stats = server.engine().stats();
    server.join();

    ConfigResult {
        max_batch,
        requests: report.requests,
        errors: report.errors,
        rps: report.throughput_rps,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        mean_us: report.mean_us,
        batches: stats.batches,
        mean_batch: stats.batched_cols as f64 / (stats.batches.max(1)) as f64,
        largest_batch: stats.max_batch,
        retried: report.retry.retried,
        shed: report.retry.shed,
        deadline_missed: report.retry.deadline_missed,
        reconnects: report.retry.reconnects,
        exec_fallbacks: stats.exec_fallbacks,
        faults_injected: stats.faults_injected,
    }
}

struct SweepResult {
    conns: usize,
    idle_opened: u64,
    active_clients: usize,
    requests: u64,
    errors: u64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    connections_total: u64,
    frames_pipelined: u64,
}

/// One connection-sweep level: `conns` total connections, of which
/// [`SWEEP_ACTIVE`] run a closed solve loop and the rest sit idle. The
/// worker pool stays small on purpose — idle fan-in must be absorbed by
/// the event loop, not by a thread per connection.
fn run_conn_sweep(a: &trisolv_matrix::CscMatrix, conns: usize) -> SweepResult {
    let active = SWEEP_ACTIVE.min(conns.max(1));
    let server = Server::spawn(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: active + 2,
        engine: EngineOptions {
            exec: ExecMode::Threaded,
            batch: BatchOptions {
                max_batch: 8,
                window: Duration::from_millis(env_or("BENCH_WINDOW_MS", WINDOW_MS)),
                wait_timeout: Duration::from_secs(30),
            },
            ..EngineOptions::default()
        },
        ..ServerOptions::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let loaded = Client::connect(&addr)
        .expect("connect")
        .load(a)
        .expect("factor and cache");

    let report = trisolv_server::run_load(&LoadGenOptions {
        addr,
        fingerprint: loaded.fingerprint,
        n: loaded.n,
        clients: active,
        duration: Duration::from_secs_f64(env_or("BENCH_RUN_SECS", RUN_SECS)),
        seed: 42,
        deadline_ms: 0,
        client: ClientOptions {
            retries: 3,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            ..ClientOptions::default()
        },
        idle_conns: conns.saturating_sub(active),
    })
    .expect("load generation");
    let stats = server.engine().stats();
    server.join();

    SweepResult {
        conns,
        idle_opened: report.idle_conns,
        active_clients: active,
        requests: report.requests,
        errors: report.errors,
        rps: report.throughput_rps,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        connections_total: stats.connections_total,
        frames_pipelined: stats.frames_pipelined,
    }
}

/// Working set for the cache-hit-rate row: six distinct well-conditioned
/// grids of near-equal factor size, round-robined against a byte budget
/// sized (by calibration) to hold all six in `f32` but not in `f64`.
const DENSITY_SPECS: [&str; 6] = [
    "grid2d:84x78",
    "grid2d:84x80",
    "grid2d:84x82",
    "grid2d:84x84",
    "grid2d:84x86",
    "grid2d:84x88",
];
const DENSITY_ROUNDS: usize = 3;

struct DensityResult {
    precision: &'static str,
    hits: u64,
    misses: u64,
    entries: usize,
    resident_bytes: usize,
    demoted: u64,
    us_per_request: f64,
}

/// One lane of the cache-hit-rate row: LOAD + single-RHS SOLVE for each
/// matrix in round-robin order against the real server at `budget` bytes.
/// A LOAD that finds the factor resident is the hit path; a miss
/// refactors (and, in the `f32` lane, demotes) before answering. Hit and
/// miss counts cover only the timed passes, after one warmup pass.
fn run_cache_density(
    mats: &[trisolv_matrix::CscMatrix],
    budget: usize,
    precision: PrecisionMode,
) -> DensityResult {
    let server = Server::spawn(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        engine: EngineOptions {
            budget_bytes: budget,
            precision,
            ..EngineOptions::default()
        },
        ..ServerOptions::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    let rhs: Vec<_> = mats
        .iter()
        .map(|a| gen::random_rhs(a.ncols(), 1, 5))
        .collect();
    for a in mats {
        client.load(a).expect("warmup load");
    }
    // `already_cached` on each timed LOAD is the per-request hit signal
    // (the engine's cache.misses counter only covers SOLVE lookups)
    let mut hits = 0u64;
    let mut misses = 0u64;
    let t0 = std::time::Instant::now();
    for _ in 0..DENSITY_ROUNDS {
        for (k, a) in mats.iter().enumerate() {
            let loaded = client.load(a).expect("load");
            if loaded.already_cached {
                hits += 1;
            } else {
                misses += 1;
            }
            client
                .solve(loaded.fingerprint, rhs[k].col(0))
                .expect("solve");
        }
    }
    let us_per_request = t0.elapsed().as_secs_f64() * 1e6 / (DENSITY_ROUNDS * mats.len()) as f64;
    let stats = server.engine().stats();
    client.shutdown_server().expect("shutdown");
    server.join();
    DensityResult {
        precision: match precision {
            PrecisionMode::F64 => "f64",
            PrecisionMode::F32 => "f32",
            PrecisionMode::Auto => "auto",
        },
        hits,
        misses,
        entries: stats.cache.entries,
        resident_bytes: stats.cache.resident_bytes,
        demoted: stats.demoted_factors,
        us_per_request,
    }
}

/// Calibrate the density budget: resident bytes of the full working set
/// in the `f32` lane, measured on an uncapped server, plus 2 % headroom.
fn density_budget(mats: &[trisolv_matrix::CscMatrix]) -> usize {
    let server = Server::spawn(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        engine: EngineOptions {
            budget_bytes: usize::MAX,
            precision: PrecisionMode::F32,
            ..EngineOptions::default()
        },
        ..ServerOptions::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    for a in mats {
        client.load(a).expect("load");
    }
    let total = server.engine().stats().cache.resident_bytes;
    client.shutdown_server().expect("shutdown");
    server.join();
    total + total / 50
}

/// Run both lanes of the cache-hit-rate row, print the table, and return
/// (budget, results) for the JSON doc.
fn run_density_section() -> (usize, Vec<DensityResult>) {
    let mats: Vec<_> = DENSITY_SPECS
        .iter()
        .map(|s| gen::from_spec(s).expect("matrix spec"))
        .collect();
    let budget = density_budget(&mats);
    println!(
        "\ncache hit rate at a {:.1} MiB budget ({} grids round-robin, {} timed requests):",
        budget as f64 / (1024.0 * 1024.0),
        mats.len(),
        DENSITY_ROUNDS * mats.len()
    );
    println!(
        "{:>6} {:>6} {:>8} {:>9} {:>10} {:>13} {:>12}",
        "lane", "hits", "misses", "hit rate", "resident", "bytes", "us/request"
    );
    let mut out = Vec::new();
    for precision in [PrecisionMode::F64, PrecisionMode::F32] {
        let r = run_cache_density(&mats, budget, precision);
        println!(
            "{:>6} {:>6} {:>8} {:>8.0}% {:>10} {:>13} {:>12.0}",
            r.precision,
            r.hits,
            r.misses,
            100.0 * r.hits as f64 / (r.hits + r.misses).max(1) as f64,
            r.entries,
            r.resident_bytes,
            r.us_per_request
        );
        out.push(r);
    }
    (budget, out)
}

/// Connection levels to sweep, from `BENCH_CONN_SWEEP` (comma-separated)
/// or the [`CONN_SWEEP`] default.
fn sweep_levels() -> Vec<usize> {
    match std::env::var("BENCH_CONN_SWEEP") {
        Ok(v) => v
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&c: &usize| c > 0)
            .collect(),
        Err(_) => CONN_SWEEP.to_vec(),
    }
}

/// Run the sweep, print the table, and return results for the JSON doc.
fn run_sweep_section(a: &trisolv_matrix::CscMatrix) -> Vec<SweepResult> {
    println!("\nconnection sweep ({SWEEP_ACTIVE} active closed-loop clients, rest idle):");
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "conns", "idle", "req/s", "p50 us", "p99 us", "pipelined", "errors"
    );
    let mut sweep = Vec::new();
    for conns in sweep_levels() {
        let r = run_conn_sweep(a, conns);
        println!(
            "{:>8} {:>8} {:>10.0} {:>10.0} {:>10.0} {:>10} {:>10}",
            r.conns, r.idle_opened, r.rps, r.p50_us, r.p99_us, r.frames_pipelined, r.errors
        );
        assert_eq!(r.errors, 0, "sweep {}: load generation saw errors", conns);
        assert!(r.requests > 0, "sweep {}: no requests completed", conns);
        sweep.push(r);
    }
    if let (Some(first), Some(last)) = (sweep.first(), sweep.last()) {
        if first.conns < last.conns && first.p99_us.is_finite() {
            println!(
                "p99 at {} conns is {:.2}x of p99 at {} conns",
                last.conns,
                last.p99_us / first.p99_us.max(1.0),
                first.conns
            );
        }
    }
    sweep
}

fn main() {
    // The faulted configuration injects panics on purpose (the server
    // catches them); keep the default hook for everything else so a real
    // failure still prints.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("injected fault:"));
        if !injected {
            default_hook(info);
        }
    }));

    let spec = std::env::var("BENCH_MATRIX").unwrap_or_else(|_| MATRIX_SPEC.to_string());
    let clients = env_or("BENCH_CLIENTS", CLIENTS);
    let run_secs = env_or("BENCH_RUN_SECS", RUN_SECS);
    let a = gen::from_spec(&spec).expect("matrix spec");
    if env_or("BENCH_SWEEP_ONLY", 0u32) != 0 {
        // CI smoke mode: just the connection sweep, no JSON artifact.
        println!(
            "bench_server: {spec} (n = {}), connection sweep only",
            a.nrows()
        );
        run_sweep_section(&a);
        return;
    }
    println!(
        "bench_server: {spec} (n = {}), {clients} closed-loop clients, {run_secs} s per config\n",
        a.nrows()
    );
    println!(
        "{:>9} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10}",
        "max_batch", "req/s", "p50 us", "p99 us", "mean batch", "batches", "errors"
    );

    let reps = env_or("BENCH_REPS", REPS).max(1);
    // round-robin the repetitions so a slow stretch of the machine hits
    // every configuration instead of wiping out one config's whole set
    let mut best: Vec<Option<ConfigResult>> = BATCH_SIZES.iter().map(|_| None).collect();
    for _ in 0..reps {
        for (slot, &k) in BATCH_SIZES.iter().enumerate() {
            let r = run_config(&a, k, "");
            if best[slot].as_ref().is_none_or(|b| r.rps > b.rps) {
                best[slot] = Some(r);
            }
        }
    }
    let mut results = Vec::new();
    for r in best.into_iter().flatten() {
        println!(
            "{:>9} {:>10.0} {:>10.0} {:>10.0} {:>10.2} {:>11} {:>10}",
            r.max_batch, r.rps, r.p50_us, r.p99_us, r.mean_batch, r.batches, r.errors
        );
        assert_eq!(
            r.errors, 0,
            "config {}: load generation saw errors",
            r.max_batch
        );
        assert!(
            r.requests > 0,
            "config {}: no requests completed",
            r.max_batch
        );
        results.push(r);
    }

    let rps_of = |k: usize| {
        results
            .iter()
            .find(|r| r.max_batch == k)
            .map(|r| r.rps)
            .expect("config ran")
    };
    let base = rps_of(1);
    let ratio8 = rps_of(8) / base;
    let ratio30 = rps_of(30) / base;
    println!(
        "\nthroughput vs unbatched: k=4 {:.2}x, k=8 {:.2}x, k=30 {:.2}x",
        rps_of(4) / base,
        ratio8,
        ratio30
    );

    // Resilience configuration: k=8 again, but under the fault plan, with
    // retrying clients. The interesting number is goodput — completed
    // requests per second after retries — relative to the clean k=8 run.
    let fault_spec = std::env::var("BENCH_FAULT_SPEC").unwrap_or_else(|_| FAULT_SPEC.to_string());
    let faulted = run_config(&a, 8, &fault_spec);
    let goodput_ratio = faulted.rps / rps_of(8);
    println!(
        "\nfaulted k=8 ({fault_spec}):\n  goodput {:.0} req/s ({:.2}x of clean), {} retried, {} reconnects, {} exec fallbacks, {} faults injected, {} unrecovered errors",
        faulted.rps,
        goodput_ratio,
        faulted.retried,
        faulted.reconnects,
        faulted.exec_fallbacks,
        faulted.faults_injected,
        faulted.errors
    );
    assert_eq!(
        faulted.errors, 0,
        "retrying clients should absorb every injected fault"
    );

    let (density_budget, density) = run_density_section();

    let sweep = run_sweep_section(&a);
    let sweep_json: Vec<Json> = sweep
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("connections", Json::Int(r.conns as i64)),
                ("idle_opened", Json::Int(r.idle_opened as i64)),
                ("active_clients", Json::Int(r.active_clients as i64)),
                ("requests", Json::Int(r.requests as i64)),
                ("errors", Json::Int(r.errors as i64)),
                ("throughput_rps", Json::Num(r.rps)),
                ("p50_us", Json::Num(r.p50_us)),
                ("p99_us", Json::Num(r.p99_us)),
                ("connections_total", Json::Int(r.connections_total as i64)),
                ("frames_pipelined", Json::Int(r.frames_pipelined as i64)),
            ])
        })
        .collect();

    let configs: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("max_batch", Json::Int(r.max_batch as i64)),
                ("requests", Json::Int(r.requests as i64)),
                ("errors", Json::Int(r.errors as i64)),
                ("throughput_rps", Json::Num(r.rps)),
                ("p50_us", Json::Num(r.p50_us)),
                ("p99_us", Json::Num(r.p99_us)),
                ("mean_us", Json::Num(r.mean_us)),
                ("batches", Json::Int(r.batches as i64)),
                ("mean_batch", Json::Num(r.mean_batch)),
                ("largest_batch", Json::Int(r.largest_batch as i64)),
                ("speedup_vs_unbatched", Json::Num(r.rps / base)),
            ])
        })
        .collect();
    let doc = Json::obj(vec![
        ("bench", Json::Str("server_batching".into())),
        ("matrix", Json::Str(spec.clone())),
        ("n", Json::Int(a.nrows() as i64)),
        ("clients", Json::Int(clients as i64)),
        ("run_secs", Json::Num(run_secs)),
        (
            "batch_window_ms",
            Json::Int(env_or("BENCH_WINDOW_MS", WINDOW_MS) as i64),
        ),
        (
            "hw_threads",
            Json::Int(std::thread::available_parallelism().map_or(1, |t| t.get()) as i64),
        ),
        ("configs", Json::Arr(configs)),
        (
            "faulted_run",
            Json::obj(vec![
                ("fault_spec", Json::Str(fault_spec.clone())),
                ("max_batch", Json::Int(faulted.max_batch as i64)),
                ("requests", Json::Int(faulted.requests as i64)),
                ("errors", Json::Int(faulted.errors as i64)),
                ("goodput_rps", Json::Num(faulted.rps)),
                ("goodput_vs_clean_k8", Json::Num(goodput_ratio)),
                ("p50_us", Json::Num(faulted.p50_us)),
                ("p99_us", Json::Num(faulted.p99_us)),
                ("retried", Json::Int(faulted.retried as i64)),
                ("shed", Json::Int(faulted.shed as i64)),
                ("deadline_missed", Json::Int(faulted.deadline_missed as i64)),
                ("reconnects", Json::Int(faulted.reconnects as i64)),
                ("exec_fallbacks", Json::Int(faulted.exec_fallbacks as i64)),
                ("faults_injected", Json::Int(faulted.faults_injected as i64)),
            ]),
        ),
        (
            "cache_density",
            Json::obj(vec![
                (
                    "working_set",
                    Json::Arr(
                        DENSITY_SPECS
                            .iter()
                            .map(|s| Json::Str((*s).to_string()))
                            .collect(),
                    ),
                ),
                ("budget_bytes", Json::Int(density_budget as i64)),
                (
                    "timed_requests",
                    Json::Int((DENSITY_ROUNDS * DENSITY_SPECS.len()) as i64),
                ),
                (
                    "lanes",
                    Json::Arr(
                        density
                            .iter()
                            .map(|r| {
                                Json::obj(vec![
                                    ("precision", Json::Str(r.precision.to_string())),
                                    ("load_hits", Json::Int(r.hits as i64)),
                                    ("load_misses", Json::Int(r.misses as i64)),
                                    (
                                        "hit_rate",
                                        Json::Num(
                                            r.hits as f64 / (r.hits + r.misses).max(1) as f64,
                                        ),
                                    ),
                                    ("entries", Json::Int(r.entries as i64)),
                                    ("resident_bytes", Json::Int(r.resident_bytes as i64)),
                                    ("demoted_factors", Json::Int(r.demoted as i64)),
                                    ("us_per_request", Json::Num(r.us_per_request)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("connection_sweep", Json::Arr(sweep_json)),
        ("speedup_k8_vs_k1", Json::Num(ratio8)),
        ("speedup_k30_vs_k1", Json::Num(ratio30)),
        (
            "batched_2x_unbatched",
            Json::Str(if ratio8.max(ratio30) >= 2.0 {
                "yes".into()
            } else {
                "no".into()
            }),
        ),
    ]);
    std::fs::write("BENCH_server.json", doc.pretty()).expect("write BENCH_server.json");
    println!("wrote BENCH_server.json");
}
