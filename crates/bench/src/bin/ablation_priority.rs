//! Ablation: row-priority vs column-priority pipelined forward
//! elimination (the paper's Figure 3(b) vs 3(c) variants).
//!
//! Both perform identical arithmetic and identical messages; they differ
//! only in the order each processor interleaves its local updates with the
//! pipeline, which changes how early each `x_k` is injected. The paper
//! chose column-priority for its implementation; this harness measures
//! both on the same trapezoids.
//!
//! Run: `cargo run --release -p trisolv-bench --bin ablation_priority`

use trisolv_analysis::Table;
use trisolv_core::pipeline::{forward_column_priority, forward_row_priority, LocalTrapezoid};
use trisolv_machine::{BlockCyclic1d, Group, Machine, MachineParams};
use trisolv_matrix::{gen, DenseMatrix};

fn trapezoid(n: usize, t: usize, seed: u64) -> DenseMatrix {
    let vals = gen::random_rhs(n * t, 1, seed);
    let mut trap = DenseMatrix::zeros(n, t);
    for j in 0..t {
        for i in j..n {
            trap[(i, j)] = if i == j {
                4.0
            } else {
                vals.as_slice()[i + j * n] * 0.01
            };
        }
    }
    trap
}

fn run(trap: &DenseMatrix, q: usize, b: usize, row_priority: bool) -> f64 {
    let (n, t) = trap.shape();
    let layout = BlockCyclic1d::new(n, b, q);
    let machine = Machine::new(q, MachineParams::t3d());
    let res = machine.run(|p| {
        let group = Group::world(q);
        let local = LocalTrapezoid::from_global(trap, &layout, p.rank());
        let mut rhs = DenseMatrix::zeros(local.positions.len(), 1);
        for v in rhs.as_mut_slice() {
            *v = 1.0;
        }
        if row_priority {
            forward_row_priority(p, &group, 1, &layout, t, 1, &local, &mut rhs);
        } else {
            forward_column_priority(p, &group, 1, &layout, t, 1, &local, &mut rhs);
        }
    });
    res.parallel_time()
}

fn main() {
    println!("row- vs column-priority pipelined forward elimination\n");
    let mut table = Table::new(vec![
        "n",
        "t",
        "q",
        "b",
        "column (ms)",
        "row (ms)",
        "row/column",
    ]);
    for (n, t) in [(256usize, 128usize), (512, 256), (512, 128)] {
        for q in [4usize, 8, 16] {
            let trap = trapezoid(n, t, 1);
            let b = 8;
            let col = run(&trap, q, b, false) * 1e3;
            let row = run(&trap, q, b, true) * 1e3;
            table.push_row(vec![
                n.to_string(),
                t.to_string(),
                q.to_string(),
                b.to_string(),
                format!("{col:.3}"),
                format!("{row:.3}"),
                format!("{:.2}", row / col),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Both variants move identical data; the ratio reflects only pipeline-injection");
    println!("timing. Values near 1.0 confirm the paper's observation that the two");
    println!("formulations are interchangeable in cost (Figure 3(b) vs 3(c)).");
}
