//! Figure 5 reproduction: communication overheads and isoefficiency
//! functions for factorization and triangular solution under 1-D and 2-D
//! partitionings.
//!
//! The paper's Figure 5 is an *analytical* table. We regenerate its
//! content empirically, per scheme:
//!
//! * measured **efficiency** at p ∈ {4, 16, 64, 128} and fixed problem
//!   size — the 2-D-partitioned triangular solve collapses like `1/√p`
//!   (only one block row/column of the grid is active per wavefront step:
//!   the paper's "Unscalable" entries), while the 1-D pipelined solvers
//!   degrade gracefully and factorization degrades slowest;
//! * the fitted growth exponent β of the overhead function
//!   `T_o = p·T_P − T_S ∝ p^β` at fixed W. (With W fixed, β blends the
//!   `O(p²)` startup term with the `O(N·p)`-class terms; the *ordering* of
//!   the schemes is the reproducible signal. The isoefficiency growth
//!   `W ∝ p²` itself is measured in `examples/scalability_study.rs`.)
//!
//! Run: `cargo run --release -p trisolv-bench --bin fig5_overhead_table`

use trisolv_analysis::{fit_power_law, Table};
use trisolv_bench::{Prepared, Problem};
use trisolv_core::dense as cdense;
use trisolv_machine::MachineParams;
use trisolv_matrix::{gen, DenseMatrix};

const PS: [usize; 4] = [4, 16, 64, 128];

fn random_lower(n: usize, seed: u64) -> DenseMatrix {
    let vals = gen::random_rhs(n * n, 1, seed);
    let mut l = DenseMatrix::zeros(n, n);
    for j in 0..n {
        for i in j..n {
            l[(i, j)] = if i == j {
                3.0 + vals.as_slice()[i + j * n].abs()
            } else {
                vals.as_slice()[i + j * n] * 0.1
            };
        }
    }
    l
}

/// One measured scheme: serial time plus T_P at each p in `PS`.
struct Scheme {
    matrix: &'static str,
    partitioning: &'static str,
    phase: &'static str,
    paper_overhead: &'static str,
    paper_isoeff: &'static str,
    t_serial: f64,
    t_parallel: Vec<f64>,
}

impl Scheme {
    fn efficiencies(&self) -> Vec<f64> {
        self.t_parallel
            .iter()
            .zip(PS)
            .map(|(&tp, p)| self.t_serial / (p as f64 * tp))
            .collect()
    }

    fn beta(&self) -> f64 {
        let pts: Vec<(f64, f64)> = self
            .t_parallel
            .iter()
            .zip(PS)
            .map(|(&tp, p)| (p as f64, (p as f64 * tp - self.t_serial).max(1e-12)))
            .collect();
        fit_power_law(&pts).b
    }
}

fn main() {
    let block = 4;
    let params = MachineParams::t3d();
    let mut schemes = Vec::new();

    // dense triangular solves, 1-D pipelined and 2-D fan-out
    {
        let n = 512;
        let l = random_lower(n, 1);
        let b = gen::random_rhs(n, 1, 2);
        let t_serial = cdense::forward_1d(&l, &b, 1, block, params).time;
        schemes.push(Scheme {
            matrix: "dense",
            partitioning: "1-D pipelined",
            phase: "fw solve",
            paper_overhead: "O(p^2)+O(Np)",
            paper_isoeff: "O(p^2)",
            t_serial,
            t_parallel: PS
                .iter()
                .map(|&p| cdense::forward_1d(&l, &b, p, block, params).time)
                .collect(),
        });
        schemes.push(Scheme {
            matrix: "dense",
            partitioning: "2-D fan-out",
            phase: "fw solve",
            paper_overhead: "step-serialized",
            paper_isoeff: "Unscalable",
            t_serial,
            t_parallel: PS
                .iter()
                .map(|&p| cdense::forward_2d(&l, &b, p, block, params).time)
                .collect(),
        });
    }

    // dense factorizations, 1-D and 2-D
    {
        let n = 192;
        let a = {
            let mut l = random_lower(n, 5);
            // make an SPD matrix A = L·Lᵀ from the random lower factor
            let lt = l.transpose();
            for j in 0..n {
                for i in 0..j {
                    l[(i, j)] = 0.0;
                }
            }
            l.matmul(&lt).expect("square")
        };
        let t_serial = trisolv_factor::dense_par::cholesky_1d(&a, 1, block, params)
            .expect("SPD")
            .time;
        schemes.push(Scheme {
            matrix: "dense",
            partitioning: "1-D fan-out",
            phase: "factorization",
            paper_overhead: "O(N^2 …)",
            paper_isoeff: "O(p^3)",
            t_serial,
            t_parallel: PS
                .iter()
                .map(|&p| {
                    trisolv_factor::dense_par::cholesky_1d(&a, p, block, params)
                        .expect("SPD")
                        .time
                })
                .collect(),
        });
        schemes.push(Scheme {
            matrix: "dense",
            partitioning: "2-D fan-out",
            phase: "factorization",
            paper_overhead: "O(N p^1/2)",
            paper_isoeff: "O(p^3/2)",
            t_serial,
            t_parallel: PS
                .iter()
                .map(|&p| {
                    trisolv_factor::dense_par::cholesky_2d(&a, p, block, params)
                        .expect("SPD")
                        .time
                })
                .collect(),
        });
    }

    // sparse solves on 2-D and 3-D neighborhood graphs, 1-D subtree-subcube
    {
        let prep = Prepared::build(&Problem::grid2d(63));
        let t_serial = prep.solve(1, 1, block).total_time;
        schemes.push(Scheme {
            matrix: "sparse 2-D graph",
            partitioning: "1-D subtree-subcube",
            phase: "fw+bw solve",
            paper_overhead: "O(p^2)+O(N^1/2 p)",
            paper_isoeff: "O(p^2)",
            t_serial,
            t_parallel: PS
                .iter()
                .map(|&p| prep.solve(p, 1, block).total_time)
                .collect(),
        });
    }
    {
        let prep = Prepared::build(&Problem::grid3d(15));
        let t_serial = prep.solve(1, 1, block).total_time;
        schemes.push(Scheme {
            matrix: "sparse 3-D graph",
            partitioning: "1-D subtree-subcube",
            phase: "fw+bw solve",
            paper_overhead: "O(p^2)+O(N^2/3 p)",
            paper_isoeff: "O(p^2)",
            t_serial,
            t_parallel: PS
                .iter()
                .map(|&p| prep.solve(p, 1, block).total_time)
                .collect(),
        });
    }

    // sparse factorization, 2-D subtree-subcube (the scalable pairing)
    {
        let prep = Prepared::build(&Problem::grid2d(63));
        let t_serial = prep.factor_parallel(1, block).time;
        schemes.push(Scheme {
            matrix: "sparse 2-D graph",
            partitioning: "2-D subtree-subcube",
            phase: "factorization",
            paper_overhead: "O(N p^1/2)",
            paper_isoeff: "O(p^3/2)",
            t_serial,
            t_parallel: PS
                .iter()
                .map(|&p| prep.factor_parallel(p, block).time)
                .collect(),
        });
    }

    let mut header = vec![
        "matrix".to_string(),
        "partitioning".to_string(),
        "phase".to_string(),
        "paper T_o".to_string(),
        "paper isoeff.".to_string(),
    ];
    header.extend(PS.iter().map(|p| format!("E(p={p})")));
    header.push("beta".to_string());
    let mut table = Table::new(header)
        .with_title("Figure 5: measured efficiency & overhead growth vs paper asymptotics");
    for s in &schemes {
        let mut row = vec![
            s.matrix.to_string(),
            s.partitioning.to_string(),
            s.phase.to_string(),
            s.paper_overhead.to_string(),
            s.paper_isoeff.to_string(),
        ];
        row.extend(s.efficiencies().iter().map(|e| format!("{e:.2}")));
        row.push(format!("{:.2}", s.beta()));
        table.push_row(row);
    }
    println!("{}", table.render());
    println!(
        "Machine model: t_s = {:.1} us, t_w = {:.3} us/word, vector {} MFLOPS, matrix {} MFLOPS\n",
        params.t_s * 1e6,
        params.t_w * 1e6,
        params.vector_mflops,
        params.matrix_mflops
    );
    println!("Shape checks vs the paper's Figure 5:");
    println!(" * the 2-D-partitioned triangular solve is the clear loser — its efficiency");
    println!("   collapses with p (structurally ~1/sqrt(p) active processors): 'Unscalable';");
    println!(" * the 1-D pipelined solvers (dense and sparse) retain useful efficiency to");
    println!("   large p at fixed W — their isoefficiency is O(p^2), measured directly in");
    println!("   examples/scalability_study.rs;");
    println!(" * factorization keeps the highest efficiency at every p, consistent with its");
    println!("   smaller O(p^3/2) isoefficiency — the basis of the paper's conclusion that a");
    println!("   1-D solve after a 2-D factorization leaves factorization dominant.");
}
