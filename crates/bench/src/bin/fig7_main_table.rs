//! Figure 7 reproduction: the paper's main experimental table — for each
//! of the five test matrices, forward+backward solve time and MFLOPS at
//! NRHS ∈ {1, 5, 10, 30}, together with factorization time/MFLOPS and the
//! time to redistribute `L` from the 2-D factorization layout to the 1-D
//! solver layout.
//!
//! Synthetic analogues replace the Harwell-Boeing matrices (DESIGN.md §2);
//! sizes are laptop-scaled, so compare *shapes* (solver ≪ factorization,
//! redistribution ≲ one solve, MFLOPS growth with NRHS and p), not
//! absolute numbers.
//!
//! Run: `cargo run --release -p trisolv-bench --bin fig7_main_table`

use trisolv_analysis::Table;
use trisolv_bench::{Prepared, Problem};

fn main() {
    let block = 8;
    let nrhs_list = [1usize, 5, 10, 30];
    for prob in Problem::paper_suite() {
        let prep = Prepared::build(&prob);
        assert!(
            prep.verify(16, block),
            "self-check failed for {}",
            prep.name
        );
        println!(
            "\n{}: N = {}; Factorization Opcount = {:.1} Million; Nonzeros in factor = {:.2} Million",
            prep.name,
            prep.n(),
            prep.factor_opcount() as f64 / 1e6,
            prep.factor_nnz() as f64 / 1e6,
        );
        // single-processor baselines
        let fac1 = prep.factor_parallel(1, block);
        let solve1 = prep.solve(1, 1, block);
        println!(
            "p = 1    Factorization time = {:.3} s  ({:.0} MFLOPS); FBsolve(NRHS=1) time = {:.4} s ({:.1} MFLOPS)",
            fac1.time,
            fac1.mflops(),
            solve1.total_time,
            solve1.mflops(),
        );
        for p in [16usize, 64, 256] {
            let fac = prep.factor_parallel(p, block);
            let redist = prep.redistribute(p, block);
            println!(
                "p = {p}   Factorization time = {:.3} s  ({:.0} MFLOPS);  Time to redistribute L = {:.4} s",
                fac.time,
                fac.mflops(),
                redist,
            );
            let mut t = Table::new(vec![
                "NRHS",
                "FBsolve time (s)",
                "FBsolve MFLOPS",
                "speedup",
            ]);
            for &nrhs in &nrhs_list {
                let r = prep.solve(p, nrhs, block);
                let ser = if nrhs == 1 {
                    solve1.total_time
                } else {
                    prep.solve(1, nrhs, block).total_time
                };
                t.push_row(vec![
                    nrhs.to_string(),
                    format!("{:.4}", r.total_time),
                    format!("{:.1}", r.mflops()),
                    format!("{:.1}", ser / r.total_time),
                ]);
            }
            println!("{}", t.render());
        }
    }
    println!("\nShape checks vs the paper:");
    println!(" * FBsolve time remains a small fraction of factorization time at equal p;");
    println!(" * redistribution costs at most about one NRHS=1 solve;");
    println!(" * MFLOPS and speedup rise sharply with NRHS (BLAS-3 effect + amortized startups).");
}
