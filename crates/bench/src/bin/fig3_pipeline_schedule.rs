//! Figure 3 reproduction: progression of computation in pipelined forward
//! elimination over a hypothetical trapezoidal supernode.
//!
//! (a) EREW-PRAM with unlimited processors — the diagonal wave showing at
//!     most `max(t, n/2)` busy processors;
//! (b) row-priority pipelined computation, cyclic mapping on 4 processors;
//! (c) column-priority pipelined computation, cyclic mapping on 4
//!     processors.
//!
//! Each number is the time step at which the corresponding `b×b` block of
//! `L` is used; `.` marks blocks above the diagonal.
//!
//! Run: `cargo run --release -p trisolv-bench --bin fig3_pipeline_schedule`

use trisolv_core::pipeline::{Priority, Schedule};

fn main() {
    // paper's hypothetical supernode: 8 row blocks, 4 column blocks
    let (nb_rows, nb_cols, q) = (8, 4, 4);

    let erew = Schedule::erew_pram(nb_rows, nb_cols);
    println!("== Figure 3(a): EREW-PRAM, unlimited processors ==");
    println!("{}", erew.render());
    println!(
        "   makespan {} steps, max concurrency {} (bound max(t, n/2) = {})\n",
        erew.makespan,
        erew.max_concurrency(),
        nb_cols.max(nb_rows / 2)
    );

    let rowp = Schedule::pipelined_forward(nb_rows, nb_cols, q, Priority::Row);
    println!("== Figure 3(b): row-priority pipelined, {q} processors (cyclic rows) ==");
    println!("{}", rowp.render());
    println!("   makespan {} steps\n", rowp.makespan);

    let colp = Schedule::pipelined_forward(nb_rows, nb_cols, q, Priority::Column);
    println!("== Figure 3(c): column-priority pipelined, {q} processors (cyclic rows) ==");
    println!("{}", colp.render());
    println!("   makespan {} steps", colp.makespan);

    let total: usize = (0..nb_rows).map(|i| nb_cols.min(i + 1)).sum();
    println!(
        "\nblocks of work: {total}; ideal steps at q={q}: {}",
        total.div_ceil(q)
    );
}
