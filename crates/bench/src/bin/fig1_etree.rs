//! Figure 1 / Figure 2 reproduction: a small symmetric sparse matrix, its
//! fill-in, the (supernodal) elimination tree, and the subtree-to-subcube
//! mapping onto 8 processors, followed by a trace of the forward
//! elimination dataflow across the tree levels.
//!
//! Run: `cargo run --release -p trisolv-bench --bin fig1_etree`

use trisolv_core::mapping::SubcubeMapping;
use trisolv_factor::seqchol;
use trisolv_graph::{nd, Graph};
use trisolv_matrix::gen;

fn main() {
    // A 2-D grid problem small enough to print (paper Figure 1 uses an
    // 18-node example; we use a 4x4 grid = 16 nodes).
    let (kx, ky) = (4, 4);
    let a = gen::grid2d_laplacian(kx, ky);
    let g = Graph::from_sym_lower(&a);
    let perm = nd::nested_dissection_coords(
        &g,
        &nd::grid2d_coords(kx, ky, 1),
        nd::NdOptions { leaf_size: 2 },
    );
    let an = seqchol::analyze_with_perm(&a, &perm);
    let n = an.pa.nrows();

    println!("== Figure 1(a): matrix pattern after nested dissection ==");
    println!("   ('x' = original nonzero, 'o' = fill-in, '.' = zero)\n");
    let full = an.pa.sym_expand().expect("square");
    for i in 0..n {
        let mut line = String::new();
        for j in 0..n {
            let orig = full.get(i, j) != 0.0;
            let (lo, hi) = if i >= j { (i, j) } else { (j, i) };
            let filled = an.sym.col_rows(hi).contains(&lo);
            line.push(if orig {
                'x'
            } else if filled {
                'o'
            } else {
                '.'
            });
            line.push(' ');
        }
        println!("  {line}");
    }

    println!("\n== Figure 1(b): supernodal elimination tree with subtree-to-subcube mapping (p = 8) ==\n");
    let part = &an.part;
    let mapping = SubcubeMapping::new(part, 8);
    let children = part.children();
    // print the tree sideways, root first
    fn print_tree(
        s: usize,
        depth: usize,
        part: &trisolv_symbolic::SupernodePartition,
        children: &[Vec<usize>],
        mapping: &SubcubeMapping,
    ) {
        let cols: Vec<usize> = part.cols(s).collect();
        let procs = mapping.group(s).ranks().to_vec();
        println!(
            "  {:indent$}snode {s}: cols {:?} (t={}, n={})  procs {:?}",
            "",
            cols,
            part.width(s),
            part.height(s),
            procs,
            indent = depth * 2
        );
        for &c in children[s].iter().rev() {
            print_tree(c, depth + 1, part, children, mapping);
        }
    }
    for &r in part.roots().iter().rev() {
        print_tree(r, 0, part, &children, &mapping);
    }

    println!("\n== Figure 2: forward-elimination dataflow (per-supernode trace) ==\n");
    let f = seqchol::factor_supernodal(&an.pa, &an.part).expect("SPD");
    for s in 0..part.nsup() {
        let t = part.width(s);
        let ns = part.height(s);
        let below = part.below_rows(s);
        println!(
            "  supernode {s}: gather rhs for cols {:?}; solve {t}x{t} triangle; \
             update {} below rows {:?}",
            part.cols(s).collect::<Vec<_>>(),
            ns - t,
            below
        );
    }
    let _ = f;
    println!("\nLevels in tree: {}", part.to_etree().height());
    println!("Supernodes: {}", part.nsup());
    println!(
        "Factor nonzeros: {} (matrix nnz: {})",
        an.sym.nnz(),
        a.nnz()
    );
}
