//! Distributed-tier bench: goodput and tail latency through the router as
//! the backend fleet scales, clean and with a mid-run node kill.
//!
//! Four scenarios, all driving the same closed-loop single-RHS workload
//! through one router over loopback TCP:
//!
//! * 1, 2, 3 backends, clean — how much fleet the router turns into
//!   throughput (on a small host this measures proxy overhead and
//!   oversubscription, not linear scaling);
//! * 3 backends with the hot factor's *primary replica* shut down halfway
//!   through the run — the goodput the replication + failover machinery
//!   preserves, with zero unrecovered client errors required.
//!
//! Plus a hedged-tail pair (DESIGN.md §18): two backends, R = 2, the
//! primary replica stalling every fourth solve — hedging off vs on, with
//! the hedge rate accounted. The stalls are the p99 until hedging
//! duplicates them to the clean replica. This pair runs at low
//! concurrency on purpose: hedging dodges stragglers, it does not shed
//! overload, so the measurement keeps the CPU unsaturated where the
//! injected stall — not queueing — is the tail.
//!
//! Plus a rejoin-latency pair: restart the only backend cold (empty cache)
//! and warm (`--persist-dir` recovery), measuring time from replacement
//! spawn to the first successful solve through the router. Warm restart
//! answers the rejoin replay's LOAD from the recovered snapshot instead of
//! refactoring (DESIGN.md §16).
//!
//! Writes `BENCH_router.json`.
//!
//! Run: `cargo run --release -p trisolv-bench --bin bench_router`
//!
//! Env knobs: `BENCH_CLIENTS`, `BENCH_RUN_SECS`, `BENCH_MATRIX`,
//! `BENCH_SMOKE=1` (short CI run, no JSON artifact).

use std::time::Duration;

use trisolv_bench::timing::Json;
use trisolv_matrix::gen;
use trisolv_router::{Ring, Router, RouterOptions};
use trisolv_server::{
    BatchOptions, Client, ClientOptions, EngineOptions, ExecMode, LoadGenOptions, RunningServer,
    Server, ServerOptions, StoreOptions,
};

const MATRIX_SPEC: &str = "grid2d:96";
const CLIENTS: usize = 16;
const RUN_SECS: f64 = 2.0;

/// Numeric override from the environment, for ad-hoc sweeps without rebuilds.
fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct ScenarioResult {
    backends: usize,
    replication: usize,
    killed: bool,
    requests: u64,
    errors: u64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    retried: u64,
    failovers: u64,
}

fn spawn_backend(workers: usize) -> RunningServer {
    spawn_backend_at("127.0.0.1:0", workers, None)
}

fn spawn_backend_at(addr: &str, workers: usize, persist: Option<StoreOptions>) -> RunningServer {
    Server::spawn(ServerOptions {
        addr: addr.to_string(),
        workers,
        engine: EngineOptions {
            exec: ExecMode::Threaded,
            batch: BatchOptions {
                max_batch: 8,
                window: Duration::from_millis(2),
                wait_timeout: Duration::from_secs(30),
            },
            ..EngineOptions::default()
        },
        persist,
        ..ServerOptions::default()
    })
    .expect("bind backend")
}

/// One scenario: `nbackends` in-process backends behind a router; when
/// `kill` is set, the primary replica of the benched factor is shut down
/// halfway through the load run.
fn run_scenario(a: &trisolv_matrix::CscMatrix, nbackends: usize, kill: bool) -> ScenarioResult {
    let clients = env_or("BENCH_CLIENTS", CLIENTS);
    let run_secs = env_or("BENCH_RUN_SECS", RUN_SECS);
    let replication = 2.min(nbackends);
    let servers: Vec<RunningServer> = (0..nbackends)
        .map(|_| spawn_backend(clients / nbackends + 2))
        .collect();
    let opts = RouterOptions {
        backends: servers.iter().map(|s| s.local_addr().to_string()).collect(),
        replication,
        probe_interval: Duration::from_millis(20),
        ..RouterOptions::default()
    };
    let ring = Ring::new(nbackends, opts.vnodes);
    let router = Router::spawn(opts).expect("bind router");
    assert!(
        router.wait_healthy(nbackends, Duration::from_secs(10)),
        "fleet never became healthy"
    );
    let raddr = router.local_addr().to_string();

    let loaded = Client::connect(&raddr)
        .expect("connect")
        .load(a)
        .expect("factor and cache");
    let victim = ring.primary(loaded.fingerprint).unwrap();

    let report = std::thread::scope(|scope| {
        if kill {
            let server = &servers[victim];
            scope.spawn(move || {
                std::thread::sleep(Duration::from_secs_f64(run_secs / 2.0));
                server.shutdown();
            });
        }
        trisolv_server::run_load(&LoadGenOptions {
            addr: raddr.clone(),
            fingerprint: loaded.fingerprint,
            n: loaded.n,
            clients,
            duration: Duration::from_secs_f64(run_secs),
            seed: 42,
            deadline_ms: 0,
            client: ClientOptions {
                retries: 16,
                backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(50),
                ..ClientOptions::default()
            },
            idle_conns: 0,
        })
        .expect("load generation")
    });
    let failovers = router.failovers();
    router.join();
    for s in servers {
        s.join();
    }

    ScenarioResult {
        backends: nbackends,
        replication,
        killed: kill,
        requests: report.requests,
        errors: report.errors,
        rps: report.throughput_rps,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        retried: report.retry.retried,
        failovers,
    }
}

struct HedgeResult {
    hedging: bool,
    requests: u64,
    errors: u64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    hedges_sent: u64,
    hedge_wins: u64,
    hedge_rate: f64,
}

/// Hedged-tail scenario: two backends with R = 2, and the benched
/// factor's *primary* replica stalls every fourth solve by 40 ms — a
/// straggler, not an outage. With hedging off the stalls are the p99;
/// with hedging on, a stalled solve is duplicated to the clean replica
/// once it outlives the adaptive threshold, the duplicate's reply wins,
/// and the straggler's late answer is discarded by request id.
fn run_hedge_scenario(a: &trisolv_matrix::CscMatrix, hedging: bool) -> HedgeResult {
    // Hedging dodges a straggler's tail; it cannot shed overload — at CPU
    // saturation the duplicate is pure extra work and queueing delay *is*
    // the p99, drowning the stall this pair prices. Cap concurrency so the
    // measured tail is the injected stall, the thing hedging routes around.
    let clients = env_or("BENCH_CLIENTS", CLIENTS).min(4);
    let run_secs = env_or("BENCH_RUN_SECS", RUN_SECS);
    let fp = trisolv_server::Fingerprint::of_matrix(a);

    let clean = spawn_backend(clients / 2 + 2);
    let straggler = Server::spawn(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: clients / 2 + 2,
        engine: EngineOptions {
            exec: ExecMode::Threaded,
            batch: BatchOptions {
                max_batch: 8,
                window: Duration::from_millis(2),
                wait_timeout: Duration::from_secs(30),
            },
            ..EngineOptions::default()
        },
        fault: trisolv_server::FaultPlan::parse("solve.stall=every:4,ms:40").expect("fault spec"),
        ..ServerOptions::default()
    })
    .expect("bind straggler backend");

    // order the backend list so the ring makes the straggler primary for
    // the benched fingerprint — every solve must cross the stall cadence
    let ring = Ring::new(2, RouterOptions::default().vnodes);
    let (c, s) = (
        clean.local_addr().to_string(),
        straggler.local_addr().to_string(),
    );
    let backends = if ring.primary(fp) == Some(1) {
        vec![c, s]
    } else {
        vec![s, c]
    };
    let router = Router::spawn(RouterOptions {
        backends,
        replication: 2,
        probe_interval: Duration::from_millis(20),
        hedge_after: Duration::from_millis(5),
        // generous budget so the bench isolates the mechanism; the rate
        // actually consumed is reported alongside
        hedge_budget: if hedging { 0.5 } else { 0.0 },
        ..RouterOptions::default()
    })
    .expect("bind router");
    assert!(router.wait_healthy(2, Duration::from_secs(10)));
    let raddr = router.local_addr().to_string();

    let loaded = Client::connect(&raddr)
        .expect("connect")
        .load(a)
        .expect("factor and cache");
    assert_eq!(loaded.fingerprint, fp);

    let report = trisolv_server::run_load(&LoadGenOptions {
        addr: raddr.clone(),
        fingerprint: fp,
        n: loaded.n,
        clients,
        duration: Duration::from_secs_f64(run_secs),
        seed: 42,
        deadline_ms: 0,
        client: ClientOptions {
            retries: 16,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            ..ClientOptions::default()
        },
        idle_conns: 0,
    })
    .expect("load generation");

    let (hedges_sent, hedge_wins) = (router.hedges_sent(), router.hedge_wins());
    router.join();
    clean.join();
    straggler.join();

    HedgeResult {
        hedging,
        requests: report.requests,
        errors: report.errors,
        rps: report.throughput_rps,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        hedges_sent,
        hedge_wins,
        hedge_rate: if report.requests > 0 {
            hedges_sent as f64 / report.requests as f64
        } else {
            0.0
        },
    }
}

struct RejoinResult {
    warm: bool,
    rejoin_ms: f64,
    recovered: u64,
    load_hits: u64,
}

/// Rejoin latency: one backend behind the router holds the benched factor;
/// it is shut down and a replacement comes up on the same address. `warm`
/// gives both incarnations a `--persist-dir`, so the replacement recovers
/// the factor from disk and the router's rejoin-replay LOAD is a cache hit
/// instead of a refactorization. Measured: replacement spawn → first
/// successful solve through the router.
fn run_rejoin_scenario(a: &trisolv_matrix::CscMatrix, warm: bool) -> RejoinResult {
    let persist_dir = std::env::temp_dir().join(format!(
        "trisolv-bench-rejoin-{}-{}",
        std::process::id(),
        warm
    ));
    let _ = std::fs::remove_dir_all(&persist_dir);
    let persist = || warm.then(|| StoreOptions::new(&persist_dir));

    let server = spawn_backend_at("127.0.0.1:0", 4, persist());
    let addr = server.local_addr().to_string();
    let router = Router::spawn(RouterOptions {
        backends: vec![addr.clone()],
        replication: 1,
        probe_interval: Duration::from_millis(20),
        ..RouterOptions::default()
    })
    .expect("bind router");
    assert!(router.wait_healthy(1, Duration::from_secs(10)));
    let raddr = router.local_addr().to_string();

    let mut client = Client::connect(&raddr).expect("connect");
    let loaded = client.load(a).expect("factor and cache");
    let b = gen::random_rhs(loaded.n, 1, 9);
    client.solve(loaded.fingerprint, b.col(0)).expect("solve");
    if warm {
        // wait for the write-behind snapshot to land before the kill
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let n = std::fs::read_dir(&persist_dir)
                .map(|it| {
                    it.flatten()
                        .filter(|d| d.file_name().to_string_lossy().ends_with(".factor"))
                        .count()
                })
                .unwrap_or(0);
            if n >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "snapshot never landed"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    server.join();

    let t0 = std::time::Instant::now();
    let replacement = spawn_backend_at(&addr, 4, persist());
    assert!(router.wait_healthy(1, Duration::from_secs(30)));
    let x = client
        .solve_with_deadline(loaded.fingerprint, b.col(0), 30_000)
        .expect("solve after rejoin");
    let rejoin_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(x.len(), loaded.n);

    // ask the replacement itself how the factor came back
    let mut direct = Client::connect(&addr).expect("connect backend");
    let stats = direct.stats().expect("stats");
    let stat = |k: &str| stats.iter().find(|(key, _)| key == k).map_or(0, |p| p.1);
    let (recovered, load_hits) = (stat("persist_recovered"), stat("load_hits"));
    if warm {
        assert_eq!(recovered, 1, "warm rejoin must recover the snapshot");
        assert!(load_hits >= 1, "rejoin replay LOAD must hit the cache");
    }

    drop(client);
    drop(direct);
    router.join();
    replacement.join();
    let _ = std::fs::remove_dir_all(&persist_dir);
    RejoinResult {
        warm,
        rejoin_ms,
        recovered,
        load_hits,
    }
}

fn main() {
    let spec = std::env::var("BENCH_MATRIX").unwrap_or_else(|_| MATRIX_SPEC.to_string());
    let smoke = env_or("BENCH_SMOKE", 0u32) != 0;
    if smoke {
        std::env::set_var("BENCH_RUN_SECS", "0.5");
        std::env::set_var("BENCH_CLIENTS", "8");
    }
    let a = gen::from_spec(&spec).expect("matrix spec");
    println!(
        "bench_router: {spec} (n = {}), {} closed-loop clients, {} s per scenario\n",
        a.nrows(),
        env_or("BENCH_CLIENTS", CLIENTS),
        env_or("BENCH_RUN_SECS", RUN_SECS),
    );
    println!(
        "{:>8} {:>6} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "backends", "repl", "killed", "req/s", "p50 us", "p99 us", "failovers", "errors"
    );

    let mut results = Vec::new();
    for (n, kill) in [(1, false), (2, false), (3, false), (3, true)] {
        let r = run_scenario(&a, n, kill);
        println!(
            "{:>8} {:>6} {:>7} {:>10.0} {:>10.0} {:>10.0} {:>10} {:>10}",
            r.backends, r.replication, r.killed, r.rps, r.p50_us, r.p99_us, r.failovers, r.errors
        );
        assert_eq!(
            r.errors, 0,
            "scenario ({n} backends, killed={kill}): unrecovered client errors"
        );
        assert!(r.requests > 0, "scenario ({n} backends): no requests");
        if kill {
            assert!(
                r.failovers >= 1,
                "kill scenario must record at least one failover"
            );
        }
        results.push(r);
    }

    println!(
        "\n{:>8} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "hedging", "req/s", "p50 us", "p99 us", "hedges", "wins", "rate"
    );
    let mut hedge_results = Vec::new();
    for hedging in [false, true] {
        let r = run_hedge_scenario(&a, hedging);
        println!(
            "{:>8} {:>10.0} {:>10.0} {:>10.0} {:>8} {:>8} {:>8.3}",
            if r.hedging { "on" } else { "off" },
            r.rps,
            r.p50_us,
            r.p99_us,
            r.hedges_sent,
            r.hedge_wins,
            r.hedge_rate
        );
        assert_eq!(
            r.errors, 0,
            "hedge scenario (hedging={hedging}): unrecovered client errors"
        );
        if hedging {
            assert!(r.hedges_sent >= 1, "hedging on: no hedges dispatched");
            assert!(r.hedge_wins >= 1, "hedging on: no hedge ever won");
        } else {
            assert_eq!(r.hedges_sent, 0, "hedging off: budget zero must gate");
        }
        hedge_results.push(r);
    }

    println!(
        "\n{:>8} {:>12} {:>10} {:>10}",
        "rejoin", "latency ms", "recovered", "load_hits"
    );
    let mut rejoins = Vec::new();
    for warm in [false, true] {
        let r = run_rejoin_scenario(&a, warm);
        println!(
            "{:>8} {:>12.1} {:>10} {:>10}",
            if r.warm { "warm" } else { "cold" },
            r.rejoin_ms,
            r.recovered,
            r.load_hits
        );
        rejoins.push(r);
    }

    if smoke {
        println!("\nsmoke mode: skipping BENCH_router.json");
        return;
    }
    let scenarios: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("backends", Json::Int(r.backends as i64)),
                ("replication", Json::Int(r.replication as i64)),
                ("killed_mid_run", Json::Int(i64::from(r.killed))),
                ("requests", Json::Int(r.requests as i64)),
                ("errors", Json::Int(r.errors as i64)),
                ("goodput_rps", Json::Num(r.rps)),
                ("p50_us", Json::Num(r.p50_us)),
                ("p99_us", Json::Num(r.p99_us)),
                ("retried", Json::Int(r.retried as i64)),
                ("failovers", Json::Int(r.failovers as i64)),
            ])
        })
        .collect();
    let doc = Json::obj(vec![
        ("bench", Json::Str("router_fleet".into())),
        ("matrix", Json::Str(spec)),
        ("n", Json::Int(a.nrows() as i64)),
        (
            "clients",
            Json::Int(env_or("BENCH_CLIENTS", CLIENTS) as i64),
        ),
        ("run_secs", Json::Num(env_or("BENCH_RUN_SECS", RUN_SECS))),
        (
            "hw_threads",
            Json::Int(std::thread::available_parallelism().map_or(1, |t| t.get()) as i64),
        ),
        ("scenarios", Json::Arr(scenarios)),
        (
            "hedge_scenarios",
            Json::Arr(
                hedge_results
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("hedging", Json::Int(i64::from(r.hedging))),
                            ("requests", Json::Int(r.requests as i64)),
                            ("errors", Json::Int(r.errors as i64)),
                            ("goodput_rps", Json::Num(r.rps)),
                            ("p50_us", Json::Num(r.p50_us)),
                            ("p99_us", Json::Num(r.p99_us)),
                            ("hedges_sent", Json::Int(r.hedges_sent as i64)),
                            ("hedge_wins", Json::Int(r.hedge_wins as i64)),
                            ("hedge_rate", Json::Num(r.hedge_rate)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "rejoin_scenarios",
            Json::Arr(
                rejoins
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            (
                                "mode",
                                Json::Str(if r.warm { "warm" } else { "cold" }.into()),
                            ),
                            ("rejoin_ms", Json::Num(r.rejoin_ms)),
                            ("persist_recovered", Json::Int(r.recovered as i64)),
                            ("load_hits", Json::Int(r.load_hits as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write("BENCH_router.json", doc.pretty()).expect("write BENCH_router.json");
    println!("\nwrote BENCH_router.json");
}
