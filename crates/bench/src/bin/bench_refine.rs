//! Cost of a solve certificate: refinement overhead per sweep, and the
//! mixed-precision dividend.
//!
//! DESIGN.md §13 claims a refinement sweep reuses the cached factor and
//! its level-scheduled plan, so each sweep costs one residual SpMV plus
//! one extra forward/backward solve — the certificate should price in
//! at roughly `(1 + iterations) ×` the plain solve. This harness checks
//! that claim on well-posed and near-singular generated problems:
//! factor once, time the plain solve, time the refined (certified)
//! solve on the same factor, and report the measured per-sweep cost as
//! a multiple of one plain solve.
//!
//! A second sweep prices the `f32` lane (DESIGN.md §17): the same factor
//! demoted to `f32` halves the bytes every refinement sweep streams. Per
//! warm request the narrow lane pays for its certificate with an extra
//! solve + residual (an `f32` direct solve never meets ω ≤ 1e-10, so
//! refinement always runs ≥ 1 sweep while `f64` usually certifies in 0),
//! and where ill-conditioning stagnates it the certified path
//! transparently refactors in `f64` (a counted fallback, never an
//! uncertified answer).
//!
//! The third section is where the lane earns its keep **end to end**: a
//! round-robin working set of well-conditioned grids against an LRU
//! factor cache at a fixed byte budget sized to hold half the set in
//! `f64` but all of it in `f32`. The wide lane refactors on every
//! request; the narrow lane is all cache hits after warmup — the
//! cache-density dividend of halving resident bytes, measured as
//! amortized certified-request latency. Writes `BENCH_refine.json`.
//!
//! Run: `cargo run --release -p trisolv-bench --bin bench_refine`

use trisolv_bench::timing::{measure, Json};
use trisolv_core::refine::{refine, refine_mixed};
use trisolv_core::{RefineOptions, SparseCholeskySolver};
use trisolv_factor::seqchol::FactorOptions;
use trisolv_matrix::gen;

const CASES: [&str; 4] = [
    "grid2d:64",
    "grid3d:12",
    "graded:2000:12",
    "rankdef:48x48:1e-10",
];
/// Precision-sweep cases: well-conditioned grids at sizes whose factor
/// outgrows L2 (where halving the streamed bytes pays most), a graded
/// diagonal (scale-invariant refinement keeps the `f32` lane), and a
/// rank-deficient-ε grid at κ ≈ 1e13 that must fall back to `f64`.
const PRECISION_CASES: [&str; 5] = [
    "grid2d:64",
    "grid2d:192",
    "grid3d:16",
    "graded:2000:12",
    "rankdef:48x48:1e-12",
];
const NRHS: usize = 4;
/// The precision sweep runs single-RHS: one certified request is the
/// paper's headline workload, and it is where halving the streamed
/// bytes moves the per-sweep solve most.
const PREC_NRHS: usize = 1;
const BUDGET_SECS: f64 = 1.0;

fn main() {
    let mut rows = Vec::new();
    for spec in CASES {
        let a = gen::from_spec(spec).expect("generator spec");
        let n = a.ncols();
        let fopts = FactorOptions {
            regularize: true,
            ..FactorOptions::default()
        };
        let solver = SparseCholeskySolver::factor_opts(&a, fopts).expect("factor");
        let b = gen::random_rhs(n, NRHS, 7);

        let plain = measure(5, BUDGET_SECS, || solver.solve(&b));
        let ropts = RefineOptions::default();
        let refined = measure(5, BUDGET_SECS, || {
            refine(&solver, &a, &b, &ropts).expect("refine")
        });
        let (_, report) = refine(&solver, &a, &b, &ropts).expect("refine");

        // each sweep = one residual + one solve; the certificate itself
        // costs one initial solve + one backward-error evaluation
        let sweeps = report.iterations as f64;
        let per_sweep = if sweeps > 0.0 {
            (refined.min - plain.min) / (sweeps * plain.min)
        } else {
            0.0
        };
        println!(
            "{spec:>22}  n={n:<6} omega={:.3e} iters={} certified={} \
             plain={:.3e}s certified_solve={:.3e}s per-sweep={:.2}x",
            report.backward_error,
            report.iterations,
            report.certified,
            plain.min,
            refined.min,
            per_sweep
        );
        rows.push(Json::obj(vec![
            ("spec", Json::Str(spec.to_string())),
            ("n", Json::Int(n as i64)),
            ("nrhs", Json::Int(NRHS as i64)),
            ("omega", Json::Num(report.backward_error)),
            ("iterations", Json::Int(report.iterations as i64)),
            (
                "certified",
                Json::Str(if report.certified { "yes" } else { "no" }.into()),
            ),
            ("perturbations", Json::Int(report.perturbations as i64)),
            ("plain_solve_s", Json::Num(plain.min)),
            ("refined_solve_s", Json::Num(refined.min)),
            ("per_sweep_cost_vs_solve", Json::Num(per_sweep)),
        ]));
    }
    // ---- mixed-precision sweep: the same warm-factor certified path in
    // both lanes. "Warm" is the service scenario this lane exists for: the
    // factor is already cached, and what is being priced is everything a
    // certified solve streams per request.
    println!("\nprecision sweep (warm factor, certified to omega <= 1e-10):");
    let mut prec_rows = Vec::new();
    let mut best_wellcond_speedup = 0.0f64;
    for spec in PRECISION_CASES {
        let a = gen::from_spec(spec).expect("generator spec");
        let n = a.ncols();
        let fopts = FactorOptions {
            regularize: true,
            ..FactorOptions::default()
        };
        let solver64 = SparseCholeskySolver::factor_opts(&a, fopts).expect("factor");
        let solver32 = SparseCholeskySolver::factor_opts(&a, fopts)
            .expect("factor")
            .demote();
        let b = gen::random_rhs(n, PREC_NRHS, 7);
        let ropts = RefineOptions::default();

        let plain64 = measure(5, BUDGET_SECS, || solver64.solve(&b));
        let plain32 = measure(5, BUDGET_SECS, || solver32.solve(&b));
        let warm64 = measure(5, BUDGET_SECS, || {
            refine(&solver64, &a, &b, &ropts).expect("refine")
        });
        // the f32 certified path with the server's fallback semantics:
        // stagnation refactors in f64 and refines there, inside the timer
        let certified32 = || {
            let (x, report) = refine_mixed(&solver32, &a, &b, &ropts).expect("refine_mixed");
            if report.certified {
                (x, report, false)
            } else {
                let wide = SparseCholeskySolver::factor_opts(&a, fopts).expect("refactor");
                let (x, report) = refine(&wide, &a, &b, &ropts).expect("refine");
                (x, report, true)
            }
        };
        let warm32 = measure(5, BUDGET_SECS, certified32);

        let (_, report64) = refine(&solver64, &a, &b, &ropts).expect("refine");
        let (_, report32, fell_back) = certified32();
        assert!(
            report64.certified && report32.certified,
            "{spec}: every certified path must land (f64 {}, f32-lane {})",
            report64.certified,
            report32.certified
        );
        let speedup = warm64.min / warm32.min;
        let well_conditioned = !spec.starts_with("rankdef");
        if well_conditioned && !fell_back {
            best_wellcond_speedup = best_wellcond_speedup.max(speedup);
        }
        println!(
            "{spec:>22}  n={n:<6} solve f64={:.3e}s f32={:.3e}s ({:.2}x)  \
             sweeps f64={} f32={}  certified f64={:.3e}s f32={:.3e}s ({:.2}x){}",
            plain64.min,
            plain32.min,
            plain64.min / plain32.min,
            report64.iterations,
            report32.iterations,
            warm64.min,
            warm32.min,
            speedup,
            if fell_back {
                "  [fell back to f64]"
            } else {
                ""
            }
        );
        prec_rows.push(Json::obj(vec![
            ("spec", Json::Str(spec.to_string())),
            ("n", Json::Int(n as i64)),
            ("nrhs", Json::Int(PREC_NRHS as i64)),
            ("plain_solve_f64_s", Json::Num(plain64.min)),
            ("plain_solve_f32_s", Json::Num(plain32.min)),
            ("plain_solve_speedup", Json::Num(plain64.min / plain32.min)),
            ("sweeps_f64", Json::Int(report64.iterations as i64)),
            ("sweeps_f32", Json::Int(report32.iterations as i64)),
            ("certified_latency_f64_s", Json::Num(warm64.min)),
            ("certified_latency_f32_s", Json::Num(warm32.min)),
            ("certified_speedup", Json::Num(speedup)),
            ("omega_f64", Json::Num(report64.backward_error)),
            ("omega_f32_lane", Json::Num(report32.backward_error)),
            (
                "fell_back",
                Json::Str(if fell_back { "yes" } else { "no" }.into()),
            ),
            (
                "certified",
                Json::Str(
                    if report64.certified && report32.certified {
                        "yes"
                    } else {
                        "no"
                    }
                    .into(),
                ),
            ),
        ]));
    }
    println!(
        "best f32 warm per-request certified speedup on a well-conditioned case: \
         {best_wellcond_speedup:.2}x"
    );

    // ---- end-to-end at a byte budget: the cache-density dividend. Six
    // well-conditioned grids round-robin against an LRU factor cache
    // whose budget holds three of them in f64 but all six in f32 — the
    // server's `--precision f32` scenario. A request = lookup, factor on
    // miss (always in f64; demoted at insert in the narrow lane), then a
    // certified solve (ω ≤ 1e-10, with the narrow lane's f64-refactor
    // fallback inside the timer).
    let ws_specs = [
        "grid2d:84x78",
        "grid2d:84x80",
        "grid2d:84x82",
        "grid2d:84x84",
        "grid2d:84x86",
        "grid2d:84x88",
    ];
    let ws_mats: Vec<_> = ws_specs
        .iter()
        .map(|s| gen::from_spec(s).expect("generator spec"))
        .collect();
    let fopts = FactorOptions {
        regularize: true,
        ..FactorOptions::default()
    };
    let widest = ws_mats
        .iter()
        .map(|a| {
            SparseCholeskySolver::factor_opts(a, fopts)
                .expect("factor")
                .factor_matrix()
                .value_count()
                * 8
        })
        .max()
        .unwrap();
    // 3.3× the largest f64 factor: three f64 factors fit, six f32 do
    let budget = widest * 33 / 10;
    const ROUNDS: usize = 3;
    let ropts = RefineOptions::default();

    let (lat64, hits64, misses64) = cache_density_lane(
        &ws_mats,
        budget,
        ROUNDS,
        |a| {
            let s = SparseCholeskySolver::factor_opts(a, fopts).expect("factor");
            let bytes = s.factor_matrix().value_count() * 8;
            (s, bytes)
        },
        |s, a, b| {
            let (_, report) = refine(s, a, b, &ropts).expect("refine");
            assert!(report.certified, "f64 lane must certify");
        },
    );
    let (lat32, hits32, misses32) = cache_density_lane(
        &ws_mats,
        budget,
        ROUNDS,
        |a| {
            let s = SparseCholeskySolver::factor_opts(a, fopts)
                .expect("factor")
                .demote();
            let bytes = s.factor_matrix().value_count() * 4;
            (s, bytes)
        },
        |s, a, b| {
            let (_, report) = refine_mixed(s, a, b, &ropts).expect("refine_mixed");
            if !report.certified {
                let wide = SparseCholeskySolver::factor_opts(a, fopts).expect("refactor");
                let (_, report) = refine(&wide, a, b, &ropts).expect("refine");
                assert!(report.certified, "fallback lane must certify");
            }
        },
    );
    let end_to_end_speedup = lat64 / lat32;
    let requests = ws_mats.len() * ROUNDS;
    println!(
        "\nend-to-end at a {:.1} MiB budget ({} grids round-robin, {} certified requests/lane):",
        budget as f64 / (1024.0 * 1024.0),
        ws_mats.len(),
        requests
    );
    println!(
        "  f64: {misses64}/{requests} misses (refactors), {lat64:.3e}s/request\n  \
         f32: {misses32}/{requests} misses, {lat32:.3e}s/request  => {end_to_end_speedup:.2}x"
    );

    let doc = Json::obj(vec![
        ("bench", Json::Str("refine_overhead".into())),
        ("cases", Json::Arr(rows)),
        ("precision_sweep", Json::Arr(prec_rows)),
        (
            "f32_warm_request_speedup_best_wellconditioned",
            Json::Num(best_wellcond_speedup),
        ),
        (
            "cache_density",
            Json::obj(vec![
                (
                    "working_set",
                    Json::Arr(
                        ws_specs
                            .iter()
                            .map(|s| Json::Str((*s).to_string()))
                            .collect(),
                    ),
                ),
                ("budget_bytes", Json::Int(budget as i64)),
                ("rounds", Json::Int(ROUNDS as i64)),
                ("requests_per_lane", Json::Int(requests as i64)),
                ("hits_f64", Json::Int(hits64 as i64)),
                ("misses_f64", Json::Int(misses64 as i64)),
                ("hits_f32", Json::Int(hits32 as i64)),
                ("misses_f32", Json::Int(misses32 as i64)),
                ("certified_request_latency_f64_s", Json::Num(lat64)),
                ("certified_request_latency_f32_s", Json::Num(lat32)),
                ("end_to_end_speedup", Json::Num(end_to_end_speedup)),
            ]),
        ),
        (
            "f32_certified_speedup_best_wellconditioned",
            Json::Num(end_to_end_speedup.max(best_wellcond_speedup)),
        ),
    ]);
    std::fs::write("BENCH_refine.json", doc.pretty()).expect("write BENCH_refine.json");
    println!("wrote BENCH_refine.json");
}

/// Run one lane of the cache-density scenario: `rounds` round-robin
/// passes over `mats` (after one untimed warmup pass) against an LRU
/// factor cache capped at `budget` bytes. Returns (mean seconds per
/// certified request, hits, misses) over the timed passes.
fn cache_density_lane<Sv>(
    mats: &[trisolv_matrix::CscMatrix],
    budget: usize,
    rounds: usize,
    mut factor: impl FnMut(&trisolv_matrix::CscMatrix) -> (Sv, usize),
    mut certify: impl FnMut(&Sv, &trisolv_matrix::CscMatrix, &trisolv_matrix::DenseMatrix),
) -> (f64, usize, usize) {
    let rhs: Vec<_> = mats
        .iter()
        .map(|a| gen::random_rhs(a.ncols(), 1, 7))
        .collect();
    // MRU at the back, like the server cache; eviction keeps ≥ 1 resident
    let mut lru: Vec<(usize, Sv, usize)> = Vec::new();
    let mut hits = 0usize;
    let mut misses = 0usize;
    let mut total = 0.0f64;
    for round in 0..=rounds {
        for (k, a) in mats.iter().enumerate() {
            let t0 = std::time::Instant::now();
            match lru.iter().position(|(key, _, _)| *key == k) {
                Some(p) => {
                    let e = lru.remove(p);
                    lru.push(e);
                    if round > 0 {
                        hits += 1;
                    }
                }
                None => {
                    let (sv, bytes) = factor(a);
                    lru.push((k, sv, bytes));
                    while lru.iter().map(|e| e.2).sum::<usize>() > budget && lru.len() > 1 {
                        lru.remove(0);
                    }
                    if round > 0 {
                        misses += 1;
                    }
                }
            }
            let (_, sv, _) = lru.last().unwrap();
            certify(sv, a, &rhs[k]);
            if round > 0 {
                total += t0.elapsed().as_secs_f64();
            }
        }
    }
    (total / (mats.len() * rounds) as f64, hits, misses)
}
