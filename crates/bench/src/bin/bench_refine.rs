//! Cost of a solve certificate: refinement overhead per sweep.
//!
//! DESIGN.md §13 claims a refinement sweep reuses the cached factor and
//! its level-scheduled plan, so each sweep costs one residual SpMV plus
//! one extra forward/backward solve — the certificate should price in
//! at roughly `(1 + iterations) ×` the plain solve. This harness checks
//! that claim on well-posed and near-singular generated problems:
//! factor once, time the plain solve, time the refined (certified)
//! solve on the same factor, and report the measured per-sweep cost as
//! a multiple of one plain solve. Writes `BENCH_refine.json`.
//!
//! Run: `cargo run --release -p trisolv-bench --bin bench_refine`

use trisolv_bench::timing::{measure, Json};
use trisolv_core::refine::refine;
use trisolv_core::{RefineOptions, SparseCholeskySolver};
use trisolv_factor::seqchol::FactorOptions;
use trisolv_matrix::gen;

const CASES: [&str; 4] = [
    "grid2d:64",
    "grid3d:12",
    "graded:2000:12",
    "rankdef:48x48:1e-10",
];
const NRHS: usize = 4;
const BUDGET_SECS: f64 = 1.0;

fn main() {
    let mut rows = Vec::new();
    for spec in CASES {
        let a = gen::from_spec(spec).expect("generator spec");
        let n = a.ncols();
        let fopts = FactorOptions {
            regularize: true,
            ..FactorOptions::default()
        };
        let solver = SparseCholeskySolver::factor_opts(&a, fopts).expect("factor");
        let b = gen::random_rhs(n, NRHS, 7);

        let plain = measure(5, BUDGET_SECS, || solver.solve(&b));
        let ropts = RefineOptions::default();
        let refined = measure(5, BUDGET_SECS, || {
            refine(&solver, &a, &b, &ropts).expect("refine")
        });
        let (_, report) = refine(&solver, &a, &b, &ropts).expect("refine");

        // each sweep = one residual + one solve; the certificate itself
        // costs one initial solve + one backward-error evaluation
        let sweeps = report.iterations as f64;
        let per_sweep = if sweeps > 0.0 {
            (refined.min - plain.min) / (sweeps * plain.min)
        } else {
            0.0
        };
        println!(
            "{spec:>22}  n={n:<6} omega={:.3e} iters={} certified={} \
             plain={:.3e}s certified_solve={:.3e}s per-sweep={:.2}x",
            report.backward_error,
            report.iterations,
            report.certified,
            plain.min,
            refined.min,
            per_sweep
        );
        rows.push(Json::obj(vec![
            ("spec", Json::Str(spec.to_string())),
            ("n", Json::Int(n as i64)),
            ("nrhs", Json::Int(NRHS as i64)),
            ("omega", Json::Num(report.backward_error)),
            ("iterations", Json::Int(report.iterations as i64)),
            (
                "certified",
                Json::Str(if report.certified { "yes" } else { "no" }.into()),
            ),
            ("perturbations", Json::Int(report.perturbations as i64)),
            ("plain_solve_s", Json::Num(plain.min)),
            ("refined_solve_s", Json::Num(refined.min)),
            ("per_sweep_cost_vs_solve", Json::Num(per_sweep)),
        ]));
    }
    let doc = Json::obj(vec![
        ("bench", Json::Str("refine_overhead".into())),
        ("cases", Json::Arr(rows)),
    ]);
    std::fs::write("BENCH_refine.json", doc.pretty()).expect("write BENCH_refine.json");
    println!("wrote BENCH_refine.json");
}
