//! Ablation: interconnect topology and the locality of subtree-to-subcube.
//!
//! The paper's analysis uses a flat `t_s + m·t_w` cost model, justified by
//! the T3D's wormhole-routed 3-D torus (per-hop latency ~ns). This harness
//! quantifies that justification: the same solve is timed under the flat
//! model, a wormhole-class torus (2 ns/hop), and an artificial
//! store-and-forward-class torus (2 µs/hop) where distance genuinely
//! matters — showing how much of the algorithm's traffic is
//! neighbor-local thanks to the contiguous-rank subcube groups.
//!
//! Run: `cargo run --release -p trisolv-bench --bin ablation_topology`

use trisolv_analysis::Table;
use trisolv_bench::{Prepared, Problem};
use trisolv_core::mapping::SubcubeMapping;
use trisolv_core::tree::{solve_fb, SolveConfig};
use trisolv_machine::MachineParams;
use trisolv_matrix::gen;

fn main() {
    let prep = Prepared::build(&Problem::grid2d(63));
    let n = prep.n();
    println!(
        "topology ablation on {} (N = {n}), NRHS = 1, b = 8\n",
        prep.name
    );
    let mut table = Table::new(vec![
        "p",
        "torus",
        "flat (ms)",
        "wormhole 2ns/hop (ms)",
        "store&fwd 2us/hop (ms)",
        "s&f / flat",
    ]);
    for (p, dims) in [(16usize, [4usize, 2, 2]), (64, [4, 4, 4])] {
        let mapping = SubcubeMapping::new(&prep.analysis.part, p);
        let b = gen::random_rhs(n, 1, 3);
        let time = |params: MachineParams| {
            let config = SolveConfig {
                nprocs: p,
                block: 8,
                params,
            };
            solve_fb(&prep.factor, &mapping, &b, &config).1.total_time
        };
        let flat = time(MachineParams::t3d());
        let wormhole = time(MachineParams::t3d_torus(dims, 2e-9));
        let snf = time(MachineParams::t3d_torus(dims, 2e-6));
        table.push_row(vec![
            p.to_string(),
            format!("{}x{}x{}", dims[0], dims[1], dims[2]),
            format!("{:.3}", flat * 1e3),
            format!("{:.3}", wormhole * 1e3),
            format!("{:.3}", snf * 1e3),
            format!("{:.2}", snf / flat),
        ]);
    }
    println!("{}", table.render());
    println!("Reading: under wormhole routing the torus is indistinguishable from the flat");
    println!("model — the paper's modelling assumption. Even with per-hop latency equal to");
    println!("the message startup (store-and-forward class), the slowdown stays modest");
    println!("because subtree-to-subcube keeps groups on contiguous ranks, so most pipeline");
    println!("and exchange traffic crosses few links.");
}
