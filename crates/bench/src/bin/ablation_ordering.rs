//! Ablation: fill-reducing ordering vs parallel solver performance.
//!
//! The paper's analysis *assumes* a nested-dissection ordering ("which
//! results in an almost balanced elimination tree") — the
//! subtree-to-subcube mapping depends on it. This harness quantifies that
//! assumption: it compares nested dissection against minimum degree, RCM,
//! and the natural ordering on the same matrix, reporting factor fill,
//! elimination-tree height (the balance proxy), and the simulated solve
//! time at p = 16.
//!
//! Run: `cargo run --release -p trisolv-bench --bin ablation_ordering`

use trisolv_analysis::Table;
use trisolv_core::mapping::SubcubeMapping;
use trisolv_core::tree::{solve_fb, SolveConfig};
use trisolv_factor::seqchol;
use trisolv_graph::{mindeg, nd, rcm, Graph, Permutation};
use trisolv_machine::MachineParams;
use trisolv_matrix::gen;

fn main() {
    let k = 40;
    let a = gen::grid2d_laplacian(k, k);
    let g = Graph::from_sym_lower(&a);
    let n = a.ncols();
    println!("ordering ablation on GRID2D({k}) (N = {n}), p = 16, NRHS = 1\n");

    let orderings: Vec<(&str, Permutation)> = vec![
        ("natural", Permutation::identity(n)),
        (
            "nested dissection",
            nd::nested_dissection_coords(&g, &nd::grid2d_coords(k, k, 1), nd::NdOptions::default()),
        ),
        ("minimum degree", mindeg::minimum_degree(&g)),
        ("RCM", rcm::reverse_cuthill_mckee(&g)),
    ];

    let mut table = Table::new(vec![
        "ordering",
        "factor nnz",
        "etree height",
        "T_S (ms)",
        "T_P p=16 (ms)",
        "speedup",
    ]);
    for (name, perm) in orderings {
        let an = seqchol::analyze_with_perm(&a, &perm);
        let factor = seqchol::factor_supernodal(&an.pa, &an.part).expect("SPD");
        let b = gen::random_rhs(n, 1, 3);
        let run = |p: usize| {
            let mapping = SubcubeMapping::new(&an.part, p);
            let config = SolveConfig {
                nprocs: p,
                block: 4,
                params: MachineParams::t3d(),
            };
            solve_fb(&factor, &mapping, &b, &config).1.total_time
        };
        let ts = run(1);
        let tp = run(16);
        table.push_row(vec![
            name.to_string(),
            an.part.nnz().to_string(),
            an.sym.tree().height().to_string(),
            format!("{:.3}", ts * 1e3),
            format!("{:.3}", tp * 1e3),
            format!("{:.1}", ts / tp),
        ]);
    }
    println!("{}", table.render());
    println!("Reading: nested dissection gives both the least fill AND by far the best");
    println!("parallel speedup — the flat trees of banded orderings (natural, RCM) leave");
    println!("almost no subtree parallelism, confirming the paper's standing assumption.");
}
