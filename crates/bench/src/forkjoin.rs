//! The pre-rewrite fork-join threaded solver, preserved as a benchmark
//! baseline.
//!
//! This is the algorithm `trisolv_core::threaded` shipped with before the
//! level-scheduled executor: recursive fork-join over the supernodal tree
//! (scoped threads standing in for the original work-stealing joins), a
//! fresh allocation per supernode, linear `while rows[pos] != gi` scatter
//! searches, and scalar rectangle loops. `bench_threaded` measures the
//! rewrite against it; it is not part of any solver path.

use trisolv_factor::{blas, SupernodalFactor};
use trisolv_matrix::DenseMatrix;

/// Per-supernode working vector carried up the tree (forward pass),
/// indexed like `partition.below_rows(s)`.
struct Update {
    snode: usize,
    vals: DenseMatrix, // below-rows × nrhs
}

/// Solved `(global row, values)` pairs produced by one subtree.
type SolvedRows = Vec<(usize, Vec<f64>)>;

/// Spawn depth limit: below this the recursion runs inline, which keeps
/// the thread count near 2^MAX_SPAWN_DEPTH instead of one per supernode.
const MAX_SPAWN_DEPTH: usize = 5;

fn fork<T: Send>(depth: usize, kids: &[usize], run: &(dyn Fn(usize) -> T + Sync)) -> Vec<T> {
    if depth >= MAX_SPAWN_DEPTH || kids.len() < 2 {
        return kids.iter().map(|&c| run(c)).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = kids.iter().map(|&c| scope.spawn(move || run(c))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fork-join worker panicked"))
            .collect()
    })
}

/// Solve `L·Y = B` with recursive fork-join parallelism (seed algorithm).
pub fn forward(f: &SupernodalFactor, b: &DenseMatrix) -> DenseMatrix {
    let part = f.partition();
    let n = part.n();
    let nrhs = b.ncols();
    assert_eq!(b.nrows(), n);
    let children = part.children();
    let mut y = DenseMatrix::zeros(n, nrhs);
    let roots = part.roots();
    let pieces = fork(0, &roots, &|r| {
        let mut out = Vec::new();
        forward_rec(f, &children, r, 1, b, &mut out);
        out
    });
    for piece in pieces {
        for (gi, vals) in piece {
            for (c, v) in vals.into_iter().enumerate() {
                y[(gi, c)] = v;
            }
        }
    }
    y
}

fn forward_rec(
    f: &SupernodalFactor,
    children: &[Vec<usize>],
    s: usize,
    depth: usize,
    b: &DenseMatrix,
    out: &mut SolvedRows,
) -> Update {
    let part = f.partition();
    let nrhs = b.ncols();
    let child_updates = fork(depth, &children[s], &|c| {
        let mut sub_out = Vec::new();
        let u = forward_rec(f, children, c, depth + 1, b, &mut sub_out);
        (u, sub_out)
    });

    let rows = part.rows(s);
    let t = part.width(s);
    let ns = rows.len();
    let blk = f.block(s);
    let mut w = DenseMatrix::zeros(ns, nrhs);
    for c in 0..nrhs {
        for (k, &gi) in rows[..t].iter().enumerate() {
            w[(k, c)] = b[(gi, c)];
        }
    }
    for (u, sub_out) in child_updates {
        out.extend(sub_out);
        let crows = part.below_rows(u.snode);
        // extend-add via linear search (the baseline's scatter)
        let mut pos = 0usize;
        for (ci, &gi) in crows.iter().enumerate() {
            while rows[pos] != gi {
                pos += 1;
            }
            for c in 0..nrhs {
                w[(pos, c)] += u.vals[(ci, c)];
            }
        }
    }
    blas::trsm_lower_left(blk.as_slice(), ns, w.as_mut_slice(), ns, t, nrhs);
    for c in 0..nrhs {
        for k in 0..t {
            let xv = w[(k, c)];
            if xv == 0.0 {
                continue;
            }
            for i in t..ns {
                let upd = blk[(i, k)] * xv;
                w[(i, c)] -= upd;
            }
        }
    }
    for (k, &gi) in rows[..t].iter().enumerate() {
        let mut v = Vec::with_capacity(nrhs);
        for c in 0..nrhs {
            v.push(w[(k, c)]);
        }
        out.push((gi, v));
    }
    let mut vals = DenseMatrix::zeros(ns - t, nrhs);
    for c in 0..nrhs {
        vals.col_mut(c).copy_from_slice(&w.col(c)[t..ns]);
    }
    Update { snode: s, vals }
}

/// Solve `Lᵀ·X = Y` with recursive fork-join parallelism (seed algorithm).
pub fn backward(f: &SupernodalFactor, y: &DenseMatrix) -> DenseMatrix {
    let part = f.partition();
    let n = part.n();
    let nrhs = y.ncols();
    assert_eq!(y.nrows(), n);
    let children = part.children();
    let mut x = DenseMatrix::zeros(n, nrhs);
    let roots = part.roots();
    let pieces = fork(0, &roots, &|r| {
        let mut out = Vec::new();
        let below = DenseMatrix::zeros(part.below_rows(r).len(), nrhs);
        backward_rec(f, &children, r, 1, y, &below, &mut out);
        out
    });
    for piece in pieces {
        for (gi, vals) in piece {
            for (c, v) in vals.into_iter().enumerate() {
                x[(gi, c)] = v;
            }
        }
    }
    x
}

fn backward_rec(
    f: &SupernodalFactor,
    children: &[Vec<usize>],
    s: usize,
    depth: usize,
    y: &DenseMatrix,
    below: &DenseMatrix,
    out: &mut SolvedRows,
) {
    let part = f.partition();
    let nrhs = y.ncols();
    let rows = part.rows(s);
    let t = part.width(s);
    let ns = rows.len();
    let blk = f.block(s);
    let mut top = DenseMatrix::zeros(t, nrhs);
    for c in 0..nrhs {
        for (k, &gi) in rows[..t].iter().enumerate() {
            top[(k, c)] = y[(gi, c)];
        }
        for k in 0..t {
            let mut sum = 0.0;
            for i in t..ns {
                sum += blk[(i, k)] * below[(i - t, c)];
            }
            top[(k, c)] -= sum;
        }
    }
    blas::trsm_lower_trans_left(blk.as_slice(), ns, top.as_mut_slice(), t, t, nrhs);
    for (k, &gi) in rows[..t].iter().enumerate() {
        let mut v = Vec::with_capacity(nrhs);
        for c in 0..nrhs {
            v.push(top[(k, c)]);
        }
        out.push((gi, v));
    }
    let mut xfull = DenseMatrix::zeros(ns, nrhs);
    for c in 0..nrhs {
        xfull.col_mut(c)[..t].copy_from_slice(top.col(c));
        xfull.col_mut(c)[t..].copy_from_slice(below.col(c));
    }
    let child_outs = fork(depth, &children[s], &|c| {
        let crows = part.below_rows(c);
        let mut cbelow = DenseMatrix::zeros(crows.len(), nrhs);
        let mut pos = 0usize;
        for (ci, &gi) in crows.iter().enumerate() {
            while rows[pos] != gi {
                pos += 1;
            }
            for cc in 0..nrhs {
                cbelow[(ci, cc)] = xfull[(pos, cc)];
            }
        }
        let mut sub_out = Vec::new();
        backward_rec(f, children, c, depth + 1, y, &cbelow, &mut sub_out);
        sub_out
    });
    for sub in child_outs {
        out.extend(sub);
    }
}

/// Forward + backward with the fork-join baseline.
pub fn forward_backward(f: &SupernodalFactor, b: &DenseMatrix) -> DenseMatrix {
    let y = forward(f, b);
    backward(f, &y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_factor::seqchol::{analyze_with_perm, factor_supernodal};
    use trisolv_graph::{nd, Graph};
    use trisolv_matrix::gen;

    #[test]
    fn baseline_matches_sequential() {
        let a = gen::grid2d_laplacian(11, 13);
        let g = Graph::from_sym_lower(&a);
        let p = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = analyze_with_perm(&a, &p);
        let f = factor_supernodal(&an.pa, &an.part).unwrap();
        let b = gen::random_rhs(f.n(), 3, 5);
        let expect = trisolv_core::seq::forward_backward(&f, &b);
        let got = forward_backward(&f, &b);
        assert!(got.max_abs_diff(&expect).unwrap() < 1e-12);
    }
}
