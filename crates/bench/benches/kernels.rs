//! Wall-clock micro-benchmarks for the dense and pipelined kernels.
//!
//! These are regression benches (real wall-clock, not virtual time): the
//! paper-figure artifacts come from the `fig*` binaries instead. The
//! harness is `trisolv_bench::timing` (plain `Instant` sampling) so the
//! suite builds offline with no external benchmarking crate.

use trisolv_bench::timing::{measure, Stats};
use trisolv_core::pipeline::{forward_column_priority, LocalTrapezoid};
use trisolv_factor::blas;
use trisolv_machine::{BlockCyclic1d, Group, Machine, MachineParams};
use trisolv_matrix::{gen, DenseMatrix};

fn report(group: &str, name: &str, s: Stats) {
    println!(
        "{group:10} {name:42} min {:>10.3?} median {:>10.3?} ({} iters)",
        std::time::Duration::from_secs_f64(s.min),
        std::time::Duration::from_secs_f64(s.median),
        s.iters
    );
}

fn random_lower(n: usize, seed: u64) -> DenseMatrix {
    let vals = gen::random_rhs(n * n, 1, seed);
    let mut l = DenseMatrix::zeros(n, n);
    for j in 0..n {
        for i in j..n {
            l[(i, j)] = if i == j {
                3.0 + vals.as_slice()[i + j * n].abs()
            } else {
                vals.as_slice()[i + j * n] * 0.01
            };
        }
    }
    l
}

fn bench_blas() {
    for n in [64usize, 128] {
        let a = random_lower(n, 1);
        let s = measure(20, 0.5, || {
            let mut m = a.clone();
            blas::potrf_lower(m.as_mut_slice(), n, n).unwrap();
            m
        });
        report("blas", &format!("potrf/{n}"), s);
        let l = {
            let mut m = a.clone();
            blas::potrf_lower(m.as_mut_slice(), n, n).unwrap();
            m
        };
        let rhs = gen::random_rhs(n, 8, 2);
        let s = measure(20, 0.5, || {
            let mut x = rhs.clone();
            blas::trsm_lower_left(l.as_slice(), n, x.as_mut_slice(), n, n, 8);
            x
        });
        report("blas", &format!("trsm_lower_left_8rhs/{n}"), s);
    }
}

/// nrhs=1 vs nrhs=4 over the four solve kernels, pitting the gemv-shaped
/// single-RHS fast paths against the four-column blocked code on a
/// typical supernode trapezoid (t=64 columns, 128 below-rows).
fn bench_single_rhs_kernels() {
    let (t, below) = (64usize, 128usize);
    let l = random_lower(t, 5);
    let a = gen::random_rhs(below, t, 6);
    for nrhs in [1usize, 4] {
        let x0 = gen::random_rhs(t, nrhs, 7);
        let s = measure(30, 0.3, || {
            let mut x = x0.clone();
            blas::trsm_lower_left(l.as_slice(), t, x.as_mut_slice(), t, t, nrhs);
            x
        });
        report("blas1rhs", &format!("trsm_lower_left/{t} nrhs={nrhs}"), s);
        let s = measure(30, 0.3, || {
            let mut x = x0.clone();
            blas::trsm_lower_trans_left(l.as_slice(), t, x.as_mut_slice(), t, t, nrhs);
            x
        });
        report(
            "blas1rhs",
            &format!("trsm_lower_trans_left/{t} nrhs={nrhs}"),
            s,
        );
        let top = gen::random_rhs(t, nrhs, 8);
        let c0 = gen::random_rhs(below, nrhs, 9);
        let s = measure(30, 0.3, || {
            let mut c = c0.clone();
            blas::gemm_update(
                c.as_mut_slice(),
                below,
                a.as_slice(),
                below,
                top.as_slice(),
                t,
                below,
                nrhs,
                t,
            );
            c
        });
        report(
            "blas1rhs",
            &format!("gemm_update/{below}x{t} nrhs={nrhs}"),
            s,
        );
        let xb = gen::random_rhs(below, nrhs, 10);
        let ct0 = gen::random_rhs(t, nrhs, 11);
        let s = measure(30, 0.3, || {
            let mut c = ct0.clone();
            blas::gemm_tn_update(
                c.as_mut_slice(),
                t,
                a.as_slice(),
                below,
                xb.as_slice(),
                below,
                t,
                nrhs,
                below,
            );
            c
        });
        report(
            "blas1rhs",
            &format!("gemm_tn_update/{t}x{below} nrhs={nrhs}"),
            s,
        );
    }
}

fn bench_pipeline() {
    for q in [2usize, 4, 8] {
        let (n, t, b) = (256usize, 128usize, 8usize);
        let trap = {
            let full = random_lower(n, 3);
            full.sub_block(0, n, 0, t)
        };
        let layout = BlockCyclic1d::new(n, b, q);
        let machine = Machine::new(q, MachineParams::t3d());
        let s = measure(10, 0.5, || {
            machine.run(|p| {
                let group = Group::world(q);
                let local = LocalTrapezoid::from_global(&trap, &layout, p.rank());
                let mut rhs = DenseMatrix::zeros(local.positions.len(), 1);
                for v in rhs.as_mut_slice() {
                    *v = 1.0;
                }
                forward_column_priority(p, &group, 1, &layout, t, 1, &local, &mut rhs);
            })
        });
        report("pipeline", &format!("forward_column_priority/{q}"), s);
    }
}

fn bench_seq_solve() {
    let a = gen::grid2d_laplacian(63, 63);
    let solver = trisolv_core::SparseCholeskySolver::factor(&a).unwrap();
    let b1 = gen::random_rhs(a.ncols(), 1, 1);
    let b10 = gen::random_rhs(a.ncols(), 10, 1);
    report(
        "solver",
        "seq_fb_grid63_nrhs1",
        measure(10, 0.5, || solver.solve(&b1)),
    );
    report(
        "solver",
        "seq_fb_grid63_nrhs10",
        measure(10, 0.5, || solver.solve(&b10)),
    );
    let f = solver.factor_matrix();
    report(
        "solver",
        "threaded_fb_grid63_nrhs10",
        measure(10, 0.5, || {
            trisolv_core::threaded::forward_backward(f, &b10)
        }),
    );
    // wall-clock effect of supernode amalgamation (fatter dense blocks)
    {
        let graph = trisolv_graph::Graph::from_sym_lower(&a);
        let perm =
            trisolv_graph::nd::nested_dissection(&graph, trisolv_graph::nd::NdOptions::default());
        let an = trisolv_factor::seqchol::analyze_with_perm(&a, &perm);
        let am = an.part.amalgamate(16, 0.15);
        let f_am = trisolv_factor::seqchol::factor_supernodal(&an.pa, &am).unwrap();
        report(
            "solver",
            "seq_fb_grid63_nrhs10_amalgamated",
            measure(10, 0.5, || trisolv_core::seq::forward_backward(&f_am, &b10)),
        );
        // simplicial CSC baseline: same arithmetic, column-at-a-time
        let l_csc = trisolv_factor::seqchol::factor_simplicial(&an.pa, &an.sym).unwrap();
        report(
            "solver",
            "seq_fb_grid63_nrhs10_simplicial_csc",
            measure(10, 0.5, || {
                let y = trisolv_core::seq::forward_csc(&l_csc, &b10);
                trisolv_core::seq::backward_csc(&l_csc, &y)
            }),
        );
    }
}

fn bench_orderings() {
    let a = gen::grid2d_laplacian(32, 32);
    let graph = trisolv_graph::Graph::from_sym_lower(&a);
    let coords = trisolv_graph::nd::grid2d_coords(32, 32, 1);
    report(
        "ordering",
        "nd_coords_grid32",
        measure(10, 0.5, || {
            trisolv_graph::nd::nested_dissection_coords(
                &graph,
                &coords,
                trisolv_graph::nd::NdOptions::default(),
            )
        }),
    );
    report(
        "ordering",
        "nd_bfs_grid32",
        measure(10, 0.5, || {
            trisolv_graph::nd::nested_dissection(&graph, trisolv_graph::nd::NdOptions::default())
        }),
    );
    report(
        "ordering",
        "rcm_grid32",
        measure(10, 0.5, || {
            trisolv_graph::rcm::reverse_cuthill_mckee(&graph)
        }),
    );
}

fn main() {
    bench_blas();
    bench_single_rhs_kernels();
    bench_pipeline();
    bench_seq_solve();
    bench_orderings();
}
