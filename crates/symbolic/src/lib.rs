//! Symbolic Cholesky factorization.
//!
//! Given a (permuted) symmetric matrix `A` and its elimination tree, this
//! crate computes the nonzero structure of the Cholesky factor `L`, the
//! per-column counts, and the **fundamental supernode partition** — the
//! groups of consecutive columns with identical sub-diagonal structure that
//! the paper's trapezoidal dense kernels operate on.
//!
//! The main entry point is [`SymbolicFactor::analyze`], which produces the
//! column structure, and [`SupernodePartition::from_symbolic`], which
//! derives the supernodal elimination tree with per-supernode row patterns
//! and operation counts.

pub mod structure;
pub mod supernode;

pub use structure::SymbolicFactor;
pub use supernode::{SupernodePartition, NONE};
