//! Column structure of the Cholesky factor.

use trisolv_graph::EliminationTree;
use trisolv_matrix::CscMatrix;

/// The symbolic Cholesky factor: per-column nonzero row patterns of `L`
/// (diagonal included), plus the elimination tree they were derived from.
#[derive(Debug, Clone)]
pub struct SymbolicFactor {
    n: usize,
    /// `col_rows[j]` lists the row indices of `L[:, j]`, sorted ascending,
    /// starting with `j` itself.
    col_rows: Vec<Vec<usize>>,
    tree: EliminationTree,
}

impl SymbolicFactor {
    /// Compute the structure of `L` for a symmetric matrix given its lower
    /// triangle.
    ///
    /// Uses the row-subtree characterization: row `i` of `L` contains the
    /// nodes on the elimination-tree paths from each `j` with `A[i, j] ≠ 0`
    /// (`j < i`) up toward `i`. Runs in `O(|L|)` time.
    pub fn analyze(a: &CscMatrix, tree: &EliminationTree) -> Self {
        assert_eq!(a.nrows(), a.ncols());
        let n = a.ncols();
        assert_eq!(tree.len(), n);
        let mut col_rows: Vec<Vec<usize>> = (0..n).map(|j| vec![j]).collect();
        let mut mark = vec![usize::MAX; n];
        // Column k of the transpose = pattern of row k of the lower
        // triangle = the entries A[k, j], j <= k.
        let at = a.transpose();
        for i in 0..n {
            mark[i] = i; // the diagonal is already present
            for &j in at.col_rows(i) {
                let mut k = j;
                while k < i && mark[k] != i {
                    col_rows[k].push(i);
                    mark[k] = i;
                    k = match tree.parent(k) {
                        Some(p) => p,
                        None => break,
                    };
                }
            }
        }
        // Row indices were appended in increasing `i` order, so each column
        // is already sorted.
        SymbolicFactor {
            n,
            col_rows,
            tree: tree.clone(),
        }
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sorted row pattern of `L[:, j]` (diagonal first).
    pub fn col_rows(&self, j: usize) -> &[usize] {
        &self.col_rows[j]
    }

    /// Column count `|L[:, j]|` (diagonal included).
    pub fn col_count(&self, j: usize) -> usize {
        self.col_rows[j].len()
    }

    /// All column counts.
    pub fn col_counts(&self) -> Vec<usize> {
        self.col_rows.iter().map(Vec::len).collect()
    }

    /// Total nonzeros in `L` (diagonal included).
    pub fn nnz(&self) -> usize {
        self.col_rows.iter().map(Vec::len).sum()
    }

    /// The elimination tree the structure was computed from.
    pub fn tree(&self) -> &EliminationTree {
        &self.tree
    }

    /// Floating-point operations of a sequential Cholesky factorization
    /// using this structure: `Σ_j cnt_j·(cnt_j + 2)` ≈ `Σ cnt²` (one
    /// sqrt + scale + rank-1 update per column).
    pub fn factor_flops(&self) -> u64 {
        self.col_rows
            .iter()
            .map(|c| {
                let k = c.len() as u64;
                k * (k + 2)
            })
            .sum()
    }

    /// Floating-point operations of one forward **plus** one backward
    /// solve with `nrhs` right-hand sides: `2 · nrhs · (2·nnz(L) − n)`
    /// (each stored entry is used once per triangular solve as a
    /// multiply-add; diagonal entries once as a divide).
    pub fn solve_flops(&self, nrhs: usize) -> u64 {
        let nnz = self.nnz() as u64;
        2 * nrhs as u64 * (2 * nnz - self.n as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_graph::EliminationTree;
    use trisolv_matrix::gen;

    /// Dense-bitmap reference symbolic factorization.
    fn reference_structure(a: &CscMatrix) -> Vec<Vec<usize>> {
        let n = a.nrows();
        let mut pat = vec![vec![false; n]; n];
        for j in 0..n {
            for &i in a.col_rows(j) {
                pat[j][i] = true;
            }
        }
        for k in 0..n {
            if let Some(p) = (k + 1..n).find(|&i| pat[k][i]) {
                for i in k + 1..n {
                    if pat[k][i] {
                        pat[p][i] = true;
                    }
                }
            }
        }
        (0..n)
            .map(|j| (j..n).filter(|&i| pat[j][i] || i == j).collect())
            .collect()
    }

    #[test]
    fn matches_reference_on_grid() {
        let a = gen::grid2d_laplacian(5, 4);
        let t = EliminationTree::from_sym_lower(&a);
        let s = SymbolicFactor::analyze(&a, &t);
        let r = reference_structure(&a);
        for j in 0..a.ncols() {
            assert_eq!(s.col_rows(j), r[j].as_slice(), "column {j}");
        }
    }

    #[test]
    fn matches_reference_on_random() {
        for seed in 0..4 {
            let a = gen::random_spd(35, 3, seed);
            let t = EliminationTree::from_sym_lower(&a);
            let s = SymbolicFactor::analyze(&a, &t);
            let r = reference_structure(&a);
            for j in 0..a.ncols() {
                assert_eq!(s.col_rows(j), r[j].as_slice(), "seed {seed} column {j}");
            }
        }
    }

    #[test]
    fn structure_contains_original_entries() {
        let a = gen::grid3d_laplacian(3, 3, 2);
        let t = EliminationTree::from_sym_lower(&a);
        let s = SymbolicFactor::analyze(&a, &t);
        for j in 0..a.ncols() {
            for &i in a.col_rows(j) {
                assert!(s.col_rows(j).contains(&i), "A entry ({i},{j}) missing in L");
            }
        }
    }

    #[test]
    fn columns_sorted_and_start_with_diagonal() {
        let a = gen::random_spd(25, 4, 9);
        let t = EliminationTree::from_sym_lower(&a);
        let s = SymbolicFactor::analyze(&a, &t);
        for j in 0..25 {
            let rows = s.col_rows(j);
            assert_eq!(rows[0], j);
            assert!(rows.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn tridiagonal_has_no_fill() {
        let a = gen::grid2d_laplacian(6, 1);
        let t = EliminationTree::from_sym_lower(&a);
        let s = SymbolicFactor::analyze(&a, &t);
        assert_eq!(s.nnz(), a.nnz());
    }

    #[test]
    fn flop_counts_positive_and_scale_with_nrhs() {
        let a = gen::grid2d_laplacian(6, 6);
        let t = EliminationTree::from_sym_lower(&a);
        let s = SymbolicFactor::analyze(&a, &t);
        assert!(s.factor_flops() > 0);
        assert_eq!(s.solve_flops(2), 2 * s.solve_flops(1));
        // solve flops with nnz entries: 2*(2nnz - n) per rhs
        assert_eq!(
            s.solve_flops(1),
            2 * (2 * s.nnz() as u64 - a.ncols() as u64)
        );
    }
}
