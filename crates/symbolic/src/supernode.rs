//! Fundamental supernodes and the supernodal elimination tree.
//!
//! A supernode is a maximal set of consecutive columns `f, f+1, …, l` such
//! that each column's structure below the supernode is identical and the
//! columns form a chain in the elimination tree (paper §2: "a set of
//! columns i₁…i_t such that all of them have non-zeros in identical
//! locations and i_{j+1} is the parent of i_j"). The portion of `L`
//! belonging to a supernode is a dense trapezoid of width `t` and height
//! `n ≥ t` — the unit on which all the parallel pipelined kernels operate.

use crate::SymbolicFactor;
use trisolv_graph::EliminationTree;

/// Sentinel for "no parent" in the supernodal tree.
pub const NONE: usize = usize::MAX;

/// The supernode partition of a symbolic factor.
#[derive(Debug, Clone)]
pub struct SupernodePartition {
    /// `first_col[s]` is the first column of supernode `s`;
    /// `first_col[nsup]` = n.
    first_col: Vec<usize>,
    /// Supernode containing each column.
    snode_of_col: Vec<usize>,
    /// Full row pattern of each supernode (length `height(s)`, the first
    /// `width(s)` entries are the supernode's own columns).
    rows: Vec<Vec<usize>>,
    /// Supernodal elimination tree (`NONE` = root).
    parent: Vec<usize>,
}

impl SupernodePartition {
    /// Derive the fundamental supernode partition from a symbolic factor.
    ///
    /// Column `j` joins the supernode of `j−1` iff `parent(j−1) = j` and
    /// `count(j) = count(j−1) − 1`; together these force the below-diagonal
    /// structures to coincide.
    pub fn from_symbolic(sym: &SymbolicFactor) -> Self {
        let n = sym.n();
        let tree = sym.tree();
        let mut first_col = vec![0usize];
        let mut snode_of_col = vec![0usize; n];
        for j in 1..n {
            let merge =
                tree.parent(j - 1) == Some(j) && sym.col_count(j) == sym.col_count(j - 1) - 1;
            if !merge {
                first_col.push(j);
            }
            snode_of_col[j] = first_col.len() - 1;
        }
        let nsup = first_col.len();
        first_col.push(n);

        let mut rows = Vec::with_capacity(nsup);
        for s in 0..nsup {
            // pattern of the first column = supernode's own columns
            // followed by the shared below-supernode rows.
            rows.push(sym.col_rows(first_col[s]).to_vec());
        }

        let mut parent = vec![NONE; nsup];
        for s in 0..nsup {
            let last = first_col[s + 1] - 1;
            if let Some(p) = tree.parent(last) {
                parent[s] = snode_of_col[p];
            }
        }

        SupernodePartition {
            first_col,
            snode_of_col,
            rows,
            parent,
        }
    }

    /// Reassemble a partition from raw arrays (used by factor
    /// deserialization). Validates the structural invariants and panics on
    /// violation — callers deserializing untrusted data must pre-validate.
    pub fn from_raw(
        first_col: Vec<usize>,
        snode_of_col: Vec<usize>,
        rows: Vec<Vec<usize>>,
        parent: Vec<usize>,
    ) -> Self {
        let nsup = rows.len();
        assert_eq!(first_col.len(), nsup + 1, "first_col length");
        assert_eq!(parent.len(), nsup, "parent length");
        let n = *first_col.last().expect("non-empty first_col");
        assert_eq!(snode_of_col.len(), n, "snode_of_col length");
        for s in 0..nsup {
            let t = first_col[s + 1] - first_col[s];
            assert!(t >= 1, "empty supernode {s}");
            assert!(rows[s].len() >= t, "supernode {s} shorter than wide");
            assert!(
                rows[s][..t]
                    .iter()
                    .copied()
                    .eq(first_col[s]..first_col[s + 1]),
                "supernode {s} row prefix mismatch"
            );
            assert!(
                parent[s] == NONE || (parent[s] > s && parent[s] < nsup),
                "supernode {s} parent out of order"
            );
        }
        SupernodePartition {
            first_col,
            snode_of_col,
            rows,
            parent,
        }
    }

    /// Number of supernodes.
    pub fn nsup(&self) -> usize {
        self.parent.len()
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        *self.first_col.last().unwrap()
    }

    /// Column range of supernode `s`.
    pub fn cols(&self, s: usize) -> std::ops::Range<usize> {
        self.first_col[s]..self.first_col[s + 1]
    }

    /// Width `t` of supernode `s` (number of columns).
    pub fn width(&self, s: usize) -> usize {
        self.first_col[s + 1] - self.first_col[s]
    }

    /// Height `n_s` of supernode `s` (rows in the trapezoid, = column count
    /// of its first column).
    pub fn height(&self, s: usize) -> usize {
        self.rows[s].len()
    }

    /// Full row pattern of supernode `s` (first `width(s)` entries are the
    /// supernode's own columns).
    pub fn rows(&self, s: usize) -> &[usize] {
        &self.rows[s]
    }

    /// Rows strictly below the triangular part.
    pub fn below_rows(&self, s: usize) -> &[usize] {
        &self.rows[s][self.width(s)..]
    }

    /// Supernode containing column `j`.
    pub fn snode_of(&self, j: usize) -> usize {
        self.snode_of_col[j]
    }

    /// Parent supernode, or `None` at a root.
    pub fn parent(&self, s: usize) -> Option<usize> {
        match self.parent[s] {
            NONE => None,
            p => Some(p),
        }
    }

    /// The supernodal elimination tree as an [`EliminationTree`] over
    /// supernode indices.
    pub fn to_etree(&self) -> EliminationTree {
        EliminationTree::from_parent(self.parent.clone())
    }

    /// Children lists of the supernodal tree.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.nsup()];
        for s in 0..self.nsup() {
            if let Some(p) = self.parent(s) {
                ch[p].push(s);
            }
        }
        ch
    }

    /// Root supernodes.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.nsup())
            .filter(|&s| self.parent[s] == NONE)
            .collect()
    }

    /// Nonzeros of `L` accounted supernode by supernode:
    /// `Σ_s Σ_{k<t} (n_s − k)`.
    pub fn nnz(&self) -> usize {
        (0..self.nsup())
            .map(|s| {
                let (n, t) = (self.height(s), self.width(s));
                (0..t).map(|k| n - k).sum::<usize>()
            })
            .sum()
    }

    /// Flops for forward **or** backward substitution over supernode `s`
    /// with `nrhs` right-hand sides: `t²` for the dense triangle (divide +
    /// multiply-add per stored entry) plus `2·t·(n−t)` for the rectangle,
    /// per right-hand side.
    pub fn solve_flops_snode(&self, s: usize, nrhs: usize) -> u64 {
        let (n, t) = (self.height(s) as u64, self.width(s) as u64);
        nrhs as u64 * (t * t + 2 * t * (n - t))
    }

    /// Flops for a forward+backward solve over the whole factor.
    pub fn solve_flops(&self, nrhs: usize) -> u64 {
        2 * (0..self.nsup())
            .map(|s| self.solve_flops_snode(s, nrhs))
            .sum::<u64>()
    }

    /// Flops for a (dense-trapezoid) supernodal Cholesky factorization:
    /// per supernode, `t` column eliminations over the trapezoid —
    /// `Σ_{k<t} (n_s − k)(n_s − k + 2)`.
    pub fn factor_flops(&self) -> u64 {
        (0..self.nsup())
            .map(|s| {
                let (n, t) = (self.height(s) as u64, self.width(s) as u64);
                (0..t).map(|k| (n - k) * (n - k + 2)).sum::<u64>()
            })
            .sum()
    }

    /// Relaxed supernode amalgamation: merge a supernode into its parent
    /// when their column ranges are adjacent and the merge pads in at most
    /// `relax_abs + relax_frac × merged-size` explicit zeros.
    ///
    /// Production solvers (including the WSMP lineage this paper fed into)
    /// apply this to fatten small supernodes: the padded zeros cost a few
    /// extra flops but the dense blocks get large enough for BLAS-3 kernels
    /// and fewer pipeline startups. The returned partition satisfies every
    /// invariant the factorization and solvers rely on (columns tile `0..n`
    /// contiguously, `rows[..t] == cols`, child below-rows nest in the
    /// parent's row set).
    pub fn amalgamate(&self, relax_abs: usize, relax_frac: f64) -> SupernodePartition {
        #[derive(Clone)]
        struct Node {
            first: usize,
            last: usize, // inclusive
            rows: Vec<usize>,
            /// cumulative explicit zeros padded in by merges below here
            padding: usize,
        }
        let stored = |t: usize, ns: usize| -> usize { (0..t).map(|k| ns - k).sum() };
        let mut result: Vec<Node> = Vec::new();
        for s in 0..self.nsup() {
            let cols = self.cols(s);
            let mut node = Node {
                first: cols.start,
                last: cols.end - 1,
                rows: self.rows(s).to_vec(),
                padding: 0,
            };
            // repeatedly absorb the previously-emitted node if it is this
            // node's child in the supernodal tree and the padding is small
            while let Some(prev) = result.last() {
                if prev.last + 1 != node.first {
                    break;
                }
                // prev's tree parent = supernode of its first below row
                let prev_t = prev.last + 1 - prev.first;
                let prev_parent_col = prev.rows.get(prev_t).copied();
                if prev_parent_col
                    .map(|c| !(node.first..=node.last).contains(&c))
                    .unwrap_or(true)
                {
                    break;
                }
                // merged pattern: prev's columns followed by node's rows
                let merged_t = prev_t + (node.last + 1 - node.first);
                let mut merged_rows: Vec<usize> = (prev.first..=prev.last).collect();
                merged_rows.extend_from_slice(&node.rows);
                let before = stored(prev_t, prev.rows.len())
                    + stored(node.last + 1 - node.first, node.rows.len());
                let after = stored(merged_t, merged_rows.len());
                // bound the CUMULATIVE zero fraction of the merged node, so
                // merge chains cannot compound padding indefinitely
                let total_padding = after - before + prev.padding + node.padding;
                if total_padding > relax_abs + (relax_frac * after as f64) as usize {
                    break;
                }
                // check every below row of prev lands inside the merge
                // (guaranteed by the tree relation, asserted in debug)
                debug_assert!(prev.rows[prev_t..]
                    .iter()
                    .all(|r| merged_rows.binary_search(r).is_ok()));
                let prev = result.pop().expect("non-empty");
                node = Node {
                    first: prev.first,
                    last: node.last,
                    rows: merged_rows,
                    padding: total_padding,
                };
            }
            result.push(node);
        }
        // rebuild the partition arrays
        let n = self.n();
        let mut first_col: Vec<usize> = result.iter().map(|nd| nd.first).collect();
        first_col.push(n);
        let mut snode_of_col = vec![0usize; n];
        for (si, nd) in result.iter().enumerate() {
            for c in nd.first..=nd.last {
                snode_of_col[c] = si;
            }
        }
        let mut parent = vec![NONE; result.len()];
        for (si, nd) in result.iter().enumerate() {
            let t = nd.last + 1 - nd.first;
            if let Some(&below0) = nd.rows.get(t) {
                parent[si] = snode_of_col[below0];
            }
        }
        SupernodePartition {
            first_col,
            snode_of_col,
            rows: result.into_iter().map(|nd| nd.rows).collect(),
            parent,
        }
    }

    /// Per-supernode levels in the supernodal tree (roots at level 0).
    pub fn levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.nsup()];
        for s in (0..self.nsup()).rev() {
            if let Some(p) = self.parent(s) {
                level[s] = level[p] + 1;
            }
        }
        level
    }

    /// Total forward-solve flops in each supernode's subtree (used for
    /// load-balanced subtree-to-subcube splitting).
    pub fn subtree_solve_flops(&self, nrhs: usize) -> Vec<u64> {
        let mut w: Vec<u64> = (0..self.nsup())
            .map(|s| self.solve_flops_snode(s, nrhs))
            .collect();
        for s in 0..self.nsup() {
            if let Some(p) = self.parent(s) {
                w[p] += w[s];
            }
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_graph::{nd, EliminationTree, Graph};
    use trisolv_matrix::{gen, CscMatrix};

    fn analyze(a: &CscMatrix) -> (SymbolicFactor, SupernodePartition) {
        let t = EliminationTree::from_sym_lower(a);
        let post = t.postorder();
        let pa = a.permute_sym_lower(post.as_slice()).unwrap();
        let t = EliminationTree::from_sym_lower(&pa);
        let sym = SymbolicFactor::analyze(&pa, &t);
        let sn = SupernodePartition::from_symbolic(&sym);
        (sym, sn)
    }

    #[test]
    fn partition_covers_all_columns() {
        let a = gen::grid2d_laplacian(6, 5);
        let (_, sn) = analyze(&a);
        assert_eq!(sn.n(), 30);
        let mut covered = 0;
        for s in 0..sn.nsup() {
            let r = sn.cols(s);
            assert_eq!(sn.width(s), r.len());
            for j in r.clone() {
                assert_eq!(sn.snode_of(j), s);
            }
            covered += r.len();
        }
        assert_eq!(covered, 30);
    }

    #[test]
    fn supernode_columns_share_structure() {
        let a = gen::random_spd(40, 4, 11);
        let (sym, sn) = analyze(&a);
        for s in 0..sn.nsup() {
            let cols = sn.cols(s);
            let f = cols.start;
            for j in cols.clone() {
                // below-supernode rows must equal the supernode's shared set
                let below: Vec<usize> = sym
                    .col_rows(j)
                    .iter()
                    .copied()
                    .filter(|&i| i >= cols.end)
                    .collect();
                assert_eq!(below, sn.below_rows(s), "col {j} of snode {s} (first {f})");
            }
        }
    }

    #[test]
    fn supernode_cols_form_tree_chain() {
        let a = gen::grid2d_laplacian(7, 7);
        let (sym, sn) = analyze(&a);
        for s in 0..sn.nsup() {
            let cols = sn.cols(s);
            for j in cols.start..cols.end - 1 {
                assert_eq!(sym.tree().parent(j), Some(j + 1));
            }
        }
    }

    #[test]
    fn rows_start_with_own_columns() {
        let a = gen::grid3d_laplacian(3, 3, 3);
        let (_, sn) = analyze(&a);
        for s in 0..sn.nsup() {
            let t = sn.width(s);
            let rows = sn.rows(s);
            let cols: Vec<usize> = sn.cols(s).collect();
            assert_eq!(&rows[..t], cols.as_slice());
            assert!(rows.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn parent_relation_consistent_with_column_tree() {
        let a = gen::random_spd(30, 3, 5);
        let (sym, sn) = analyze(&a);
        for s in 0..sn.nsup() {
            let last = sn.cols(s).end - 1;
            match sym.tree().parent(last) {
                Some(p) => assert_eq!(sn.parent(s), Some(sn.snode_of(p))),
                None => assert_eq!(sn.parent(s), None),
            }
        }
        // supernodal tree is a valid forest with parents after children
        let t = sn.to_etree();
        assert_eq!(t.len(), sn.nsup());
    }

    #[test]
    fn nnz_matches_symbolic() {
        let a = gen::grid2d_laplacian(8, 6);
        let (sym, sn) = analyze(&a);
        assert_eq!(sn.nnz(), sym.nnz());
    }

    #[test]
    fn nd_ordering_produces_fat_supernodes() {
        // With nested dissection on a grid, the top separator becomes one
        // dense supernode of width ~k.
        let k = 15;
        let a = gen::grid2d_laplacian(k, k);
        let g = Graph::from_sym_lower(&a);
        let coords = nd::grid2d_coords(k, k, 1);
        let p = nd::nested_dissection_coords(&g, &coords, nd::NdOptions::default());
        let pa = a.permute_sym_lower(p.as_slice()).unwrap();
        let (_, sn) = analyze(&pa);
        let max_width = (0..sn.nsup()).map(|s| sn.width(s)).max().unwrap();
        assert!(
            max_width >= k / 2,
            "expected a separator supernode of width >= {}, got {max_width}",
            k / 2
        );
    }

    #[test]
    fn flop_counts_consistent() {
        let a = gen::grid2d_laplacian(6, 6);
        let (sym, sn) = analyze(&a);
        // solve flops agree between symbolic (per-column) and supernodal
        // accounting: per column j, triangle contributes, rectangle...
        // both count 2·(2·nnz − n) per rhs for fw+bw.
        assert_eq!(sn.solve_flops(1), sym.solve_flops(1));
        assert_eq!(sn.solve_flops(3), 3 * sn.solve_flops(1));
        assert!(sn.factor_flops() >= sym.nnz() as u64);
    }

    #[test]
    fn subtree_flops_accumulate_to_root() {
        let a = gen::grid2d_laplacian(7, 5);
        let (_, sn) = analyze(&a);
        let w = sn.subtree_solve_flops(1);
        let total: u64 = sn.roots().iter().map(|&r| w[r]).sum();
        let direct: u64 = (0..sn.nsup()).map(|s| sn.solve_flops_snode(s, 1)).sum();
        assert_eq!(total, direct);
    }

    fn check_partition_invariants(sn: &SupernodePartition) {
        let n = sn.n();
        let mut covered = 0usize;
        for s in 0..sn.nsup() {
            let cols: Vec<usize> = sn.cols(s).collect();
            covered += cols.len();
            // rows prefix is exactly the supernode's columns, sorted
            assert_eq!(&sn.rows(s)[..sn.width(s)], cols.as_slice());
            assert!(sn.rows(s).windows(2).all(|w| w[0] < w[1]));
            for &c in &cols {
                assert_eq!(sn.snode_of(c), s);
            }
            // below rows nest in the parent's rows
            if let Some(p) = sn.parent(s) {
                for &r in sn.below_rows(s) {
                    assert!(
                        sn.rows(p).contains(&r),
                        "below row {r} of {s} missing in parent {p}"
                    );
                }
            } else {
                assert!(sn.below_rows(s).is_empty());
            }
        }
        assert_eq!(covered, n);
    }

    #[test]
    fn amalgamation_preserves_invariants_and_reduces_count() {
        let a = gen::grid2d_laplacian(12, 12);
        let (_, sn) = analyze(&a);
        let am = sn.amalgamate(8, 0.2);
        check_partition_invariants(&am);
        assert!(am.nsup() < sn.nsup(), "{} -> {}", sn.nsup(), am.nsup());
        assert!(am.nnz() >= sn.nnz(), "storage can only grow");
        // padding bounded loosely: far below doubling
        assert!(am.nnz() < 2 * sn.nnz(), "{} vs {}", am.nnz(), sn.nnz());
    }

    #[test]
    fn zero_relaxation_merges_nothing_extra() {
        let a = gen::random_spd(50, 3, 3);
        let (_, sn) = analyze(&a);
        let am = sn.amalgamate(0, 0.0);
        // only merges with zero padding are allowed; storage unchanged
        assert_eq!(am.nnz(), sn.nnz());
        check_partition_invariants(&am);
        assert!(am.nsup() <= sn.nsup());
    }

    #[test]
    fn aggressive_relaxation_still_valid() {
        let a = gen::grid3d_laplacian(4, 4, 3);
        let (_, sn) = analyze(&a);
        let am = sn.amalgamate(1000, 0.9);
        check_partition_invariants(&am);
        assert!(am.nsup() <= sn.nsup());
    }

    #[test]
    fn tridiagonal_single_path_supernodes() {
        // A tridiagonal matrix: every column's below-structure is exactly
        // {j+1}, so counts decrease by ... count(j) = 2 except last = 1.
        // Fundamental supernodes: columns merge only when count(j) =
        // count(j-1) - 1, i.e. only the last pair merges... verify general
        // sanity instead: widths >= 1 and chain property.
        let a = gen::grid2d_laplacian(8, 1);
        let (_, sn) = analyze(&a);
        for s in 0..sn.nsup() {
            assert!(sn.width(s) >= 1);
        }
        assert_eq!(sn.n(), 8);
    }
}
