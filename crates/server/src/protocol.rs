//! Length-prefixed binary wire protocol for the solve service.
//!
//! Frame format (all integers little-endian, values IEEE-754 bits):
//!
//! ```text
//! | u32 len | u8 opcode | payload (len - 1 bytes) |
//! ```
//!
//! `len` counts the opcode byte plus the payload, so an empty-payload frame
//! has `len == 1`. Frames larger than [`MAX_FRAME_LEN`] are rejected before
//! any allocation, which is what lets the server shrug off garbage length
//! prefixes.
//!
//! Request opcodes:
//!
//! | op | name | payload |
//! |------|----------|---------|
//! | 0x01 | LOAD     | `u64 nrows, ncols, nnz`, `colptr[(ncols+1)·u64]`, `rowidx[nnz·u64]`, `values[nnz·f64]` |
//! | 0x02 | SOLVE    | `fingerprint[16]`, `u64 deadline_ms`, `u64 n`, `rhs[n·f64]`, optional `u8 flags` |
//! | 0x03 | STATS    | empty |
//! | 0x04 | EVICT    | `fingerprint[16]` |
//! | 0x05 | SHUTDOWN | empty |
//! | 0x06 | HELLO    | `u16 max_version` (version negotiation, v4) |
//!
//! `deadline_ms` (new in protocol version 2) is the client's end-to-end
//! budget for the request, measured from when the server finishes reading
//! the frame; `0` means "no preference". The server clamps it to its own
//! `--deadline-cap-ms`, so a deadline is always in force. A request that
//! cannot be answered in time gets `ERR Deadline` rather than an answer —
//! including when it is already boarded in a batch lane (an expired boarder
//! is expelled at seal time so it cannot stall the batch's other riders).
//!
//! The trailing `flags` byte (new in protocol version 3) is optional: a
//! version-2 SOLVE frame simply omits it, and the server treats the missing
//! byte as `0`. Bit 0 ([`SOLVE_FLAG_CERTIFIED`]) requests a *certified*
//! solve: the server runs iterative refinement against the retained original
//! matrix and the reply carries the refinement certificate. Other bits are
//! reserved and must be zero.
//!
//! Response opcodes:
//!
//! | op | name | payload |
//! |------|------------|---------|
//! | 0x81 | OK_LOADED  | `fingerprint[16]`, `u64 n`, `u64 factor_nnz`, `u8 already_cached` |
//! | 0x82 | OK_SOLVED  | `u64 n`, `x[n·f64]`, then for certified solves `u32 iterations`, `f64 backward_error`, `u8 certified` |
//! | 0x83 | OK_STATS   | `u64 count`, then per stat `u16 keylen`, key bytes, `u64 value` |
//! | 0x84 | OK_EVICTED | `u8 existed`, then optional per-replica outcomes (see below) |
//! | 0x85 | OK_BYE     | empty |
//! | 0x86 | OK_HELLO   | `u16 negotiated_version` |
//! | 0xFF | ERR        | `u16 code`, `u32 msglen`, UTF-8 message, then code-specific extras |
//!
//! # Protocol v4: negotiation, request IDs, frame integrity
//!
//! A v4 peer opens a connection by sending `HELLO` with the highest
//! version it speaks; a v4 server replies `OK_HELLO` with
//! `min(theirs, PROTOCOL_VERSION)`. A v3 server answers the unknown
//! opcode with `ERR UnknownOpcode` and leaves the connection open, which
//! *is* the downgrade signal: the caller falls back to the legacy (v3)
//! framing on the same connection, byte-unchanged. A v2/v3 client simply
//! never sends `HELLO` and the server keeps speaking v3 to it. `HELLO` is
//! only legal as the very first frame of a connection.
//!
//! Once version ≥ 4 is negotiated, every subsequent frame in *both*
//! directions wraps its payload in the v4 envelope:
//!
//! ```text
//! | u32 len | u8 opcode | u64 req_id | inner payload | ck_lo u64 | ck_hi u64 |
//! ```
//!
//! `req_id` is chosen by the requester (any 64-bit value; typically a
//! per-connection counter) and echoed verbatim in the reply, so replies
//! may legally arrive out of order and a receiver correlates them by ID
//! instead of FIFO position. The 16-byte trailer is the two-lane FNV-1a
//! checksum [`Fingerprint::of_tagged_bytes`]`(opcode, req_id ‖ inner)`:
//! it covers the opcode, the request ID, and the payload, so any wire
//! corruption that slips past TCP (or is injected by the `read.bitflip` /
//! `write.bitflip` fault sites) is rejected as `ERR Corrupt` instead of
//! being parsed — length framing alone cannot see a flipped bit.
//! [`wrap_v4`] builds the enveloped payload and [`unwrap_v4`] verifies
//! and strips it.
//!
//! `ERR` frames emitted from the event loop's close paths (bad length
//! prefix, slow-peer timeout, admission-control reject at accept) may
//! still be legacy-encoded even on a negotiated connection — they can
//! precede or outlive any specific request. A v4 receiver that fails to
//! unwrap an `ERR` payload falls back to the legacy [`parse_err`] decode
//! and treats the error as connection-scoped.
//! An `ERR` with code [`ErrorCode::Busy`] carries one extra trailing field,
//! `u64 retry_after_ms` — the server's backoff hint for the shed request.
//! Other codes carry no extras; decoders must ignore trailing bytes they do
//! not understand so future codes can add fields compatibly.
//!
//! `OK_EVICTED` from a *router* (the sharded front tier in
//! `trisolv-router`) appends per-replica outcomes after the `u8 existed`
//! aggregate: `u8 count`, then per replica `u16 addrlen`, the backend
//! address bytes, and a `u8` status (`0` = not resident, `1` = evicted,
//! `2` = unreachable). Single-server replies omit the trailer entirely;
//! [`crate::client::Client::evict`] ignores it and
//! [`crate::client::Client::evict_detailed`] decodes it.
//!
//! `OK_STATS` keys include the cache-occupancy gauges `cache_entries` and
//! `cache_bytes` (aliases of `entries`/`resident_bytes`, kept stable for
//! placement/balance decisions by the router tier) alongside the engine
//! counters; a router replies with the *sum* over its backends plus its own
//! `router_*` keys.
//!
//! Error codes are in [`ErrorCode`]. Protocol errors on a decodable frame
//! produce an `ERR` reply and leave the connection open; an undecodable
//! frame (bad length prefix) produces an `ERR` and then a close, since the
//! stream can no longer be re-synchronized.

/// Protocol revision implemented by this module. Version 2 added the SOLVE
/// `deadline_ms` field and error codes 9–12 (`Busy`, `Deadline`,
/// `NonFinite`, `NumericBreakdown`). Version 3 added the optional SOLVE
/// `flags` byte (certified solves) and the refinement certificate trailing
/// the `OK_SOLVED` reply; version-2 frames remain valid. Version 4 added
/// the `HELLO`/`OK_HELLO` negotiation handshake, the request-ID + checksum
/// envelope on negotiated connections, and `ERR Corrupt`; un-negotiated
/// connections keep speaking v3 byte-unchanged.
pub const PROTOCOL_VERSION: u16 = 4;

/// Per-frame envelope overhead on a negotiated v4 connection: the leading
/// `u64 req_id` plus the 16-byte checksum trailer.
pub const V4_ENVELOPE_BYTES: usize = 8 + 16;

/// SOLVE `flags` bit 0: run iterative refinement and return the certificate
/// (`u32 iterations`, `f64 backward_error`, `u8 certified`) after `x`.
pub const SOLVE_FLAG_CERTIFIED: u8 = 0x01;

use std::io::{self, Read, Write};

use crate::engine::EngineError;
use crate::fingerprint::Fingerprint;

/// Hard cap on a frame's `len` field (64 MiB) — bounds allocation from a
/// hostile or corrupt length prefix.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Request opcodes.
pub mod op {
    /// Factor a matrix and cache it.
    pub const LOAD: u8 = 0x01;
    /// Solve one RHS against a cached factor.
    pub const SOLVE: u8 = 0x02;
    /// Fetch engine counters.
    pub const STATS: u8 = 0x03;
    /// Drop a cached factor.
    pub const EVICT: u8 = 0x04;
    /// Stop the server gracefully.
    pub const SHUTDOWN: u8 = 0x05;
    /// Version negotiation (v4): `u16 max_version`, first frame only.
    pub const HELLO: u8 = 0x06;
    /// Successful LOAD reply.
    pub const OK_LOADED: u8 = 0x81;
    /// Successful SOLVE reply.
    pub const OK_SOLVED: u8 = 0x82;
    /// Successful STATS reply.
    pub const OK_STATS: u8 = 0x83;
    /// Successful EVICT reply.
    pub const OK_EVICTED: u8 = 0x84;
    /// Acknowledged SHUTDOWN.
    pub const OK_BYE: u8 = 0x85;
    /// Successful HELLO reply: `u16 negotiated_version`.
    pub const OK_HELLO: u8 = 0x86;
    /// Error reply.
    pub const ERR: u8 = 0xFF;
}

/// Wire error codes carried in `ERR` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Frame or payload could not be decoded.
    Malformed = 1,
    /// Request opcode not recognized.
    UnknownOpcode = 2,
    /// SOLVE/EVICT fingerprint not resident.
    UnknownFingerprint = 3,
    /// SOLVE RHS length does not match the factor dimension.
    DimensionMismatch = 4,
    /// LOAD matrix failed numeric factorization.
    NotSpd = 5,
    /// Request timed out inside the service.
    Timeout = 6,
    /// Frame exceeded [`MAX_FRAME_LEN`].
    TooLarge = 7,
    /// Internal service error.
    Internal = 8,
    /// Server over its admission-control high-water mark; the ERR payload
    /// carries a trailing `u64 retry_after_ms` backoff hint.
    Busy = 9,
    /// The request's deadline expired inside the service.
    Deadline = 10,
    /// Request contained NaN/Inf matrix values or RHS entries.
    NonFinite = 11,
    /// The solve produced NaN/Inf output (numeric breakdown).
    NumericBreakdown = 12,
    /// A v4 frame failed its payload checksum (wire corruption). The
    /// frame is rejected; the connection stays open.
    Corrupt = 13,
}

impl ErrorCode {
    /// Decode a wire value.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownOpcode,
            3 => ErrorCode::UnknownFingerprint,
            4 => ErrorCode::DimensionMismatch,
            5 => ErrorCode::NotSpd,
            6 => ErrorCode::Timeout,
            7 => ErrorCode::TooLarge,
            8 => ErrorCode::Internal,
            9 => ErrorCode::Busy,
            10 => ErrorCode::Deadline,
            11 => ErrorCode::NonFinite,
            12 => ErrorCode::NumericBreakdown,
            13 => ErrorCode::Corrupt,
            _ => return None,
        })
    }

    /// The wire code for an engine failure.
    pub fn of_engine_error(e: &EngineError) -> ErrorCode {
        match e {
            EngineError::UnknownFingerprint(_) => ErrorCode::UnknownFingerprint,
            EngineError::DimensionMismatch { .. } => ErrorCode::DimensionMismatch,
            EngineError::BadMatrix(_) => ErrorCode::Malformed,
            EngineError::NotSpd(_) => ErrorCode::NotSpd,
            EngineError::Timeout => ErrorCode::Timeout,
            EngineError::DeadlineExceeded => ErrorCode::Deadline,
            EngineError::Busy { .. } => ErrorCode::Busy,
            EngineError::NonFinite { .. } => ErrorCode::NonFinite,
            EngineError::NumericBreakdown => ErrorCode::NumericBreakdown,
            EngineError::Internal(_) => ErrorCode::Internal,
        }
    }
}

/// Write one frame. The header and payload go out through
/// `write_vectored`, so on a `TCP_NODELAY` socket the whole frame lands
/// in one segment and the peer wakes once, not once per `write_all`.
pub fn write_frame<W: Write>(w: &mut W, opcode: u8, payload: &[u8]) -> io::Result<()> {
    let len = 1 + payload.len();
    if len > MAX_FRAME_LEN as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME_LEN",
        ));
    }
    let mut head = [0u8; 5];
    head[..4].copy_from_slice(&(len as u32).to_le_bytes());
    head[4] = opcode;
    let total = head.len() + payload.len();
    let mut done = 0usize;
    while done < total {
        let n = if done < head.len() {
            w.write_vectored(&[io::IoSlice::new(&head[done..]), io::IoSlice::new(payload)])?
        } else {
            w.write(&payload[done - head.len()..])?
        };
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "failed to write frame",
            ));
        }
        done += n;
    }
    w.flush()
}

/// Read one frame, enforcing [`MAX_FRAME_LEN`]. Returns `(opcode, payload)`.
/// A length of zero or above the cap yields `InvalidData` — the stream
/// cannot be re-synchronized after that.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<(u8, Vec<u8>)> {
    // header + opcode in one read: `len` counts the opcode, so every
    // well-formed frame has at least these five bytes
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let len = u32::from_le_bytes(head[..4].try_into().unwrap());
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let body_len = (len - 1) as u64;
    let mut body = Vec::with_capacity(body_len as usize);
    r.take(body_len).read_to_end(&mut body)?;
    if body.len() as u64 != body_len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream closed mid-frame",
        ));
    }
    Ok((head[4], body))
}

/// A full wire frame (`len | opcode | payload`) as a byte vector, ready to
/// append to a connection's write buffer. Reply sizes are bounded by
/// request sizes, so overflow is unreachable in practice; if it ever
/// happens the peer gets a structured `ERR` instead of a dead worker.
pub fn encode_frame(opcode: u8, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(5 + payload.len());
    if write_frame(&mut frame, opcode, payload).is_err() {
        frame.clear();
        let p = err_payload(ErrorCode::Internal, "reply exceeded frame limit", None);
        write_frame(&mut frame, op::ERR, &p).expect("error frame fits");
    }
    frame
}

/// Encode an `ERR` frame payload (with the Busy retry hint when present).
pub fn err_payload(code: ErrorCode, msg: &str, retry_after_ms: Option<u64>) -> Vec<u8> {
    let bytes = msg.as_bytes();
    let mut b = Builder::new()
        .u16(code as u16)
        .u32(bytes.len() as u32)
        .bytes(bytes);
    if let Some(ms) = retry_after_ms {
        b = b.u64(ms);
    }
    b.build()
}

/// Decode an `ERR` payload into `(code, message, retry_after_ms)`. The code
/// is `None` when unrecognized; the retry hint is present only on `Busy`.
/// Trailing bytes on other codes are ignored for forward compatibility.
pub fn parse_err(payload: &[u8]) -> Result<(Option<ErrorCode>, String, Option<u64>), String> {
    let mut c = Cursor::new(payload);
    let code = c.u16()?;
    let mlen = c.u32()? as usize;
    let msg = String::from_utf8_lossy(c.bytes(mlen)?).into_owned();
    let code = ErrorCode::from_u16(code);
    let retry_after_ms = match code {
        Some(ErrorCode::Busy) => c.u64().ok(),
        _ => None,
    };
    Ok((code, msg, retry_after_ms))
}

/// Why a v4 envelope failed to unwrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvelopeError {
    /// Payload shorter than `req_id` + checksum trailer — not a v4 frame.
    TooShort,
    /// The checksum trailer does not match the frame contents.
    Checksum,
}

/// The v4 frame checksum: two-lane FNV-1a over the opcode (as the seed
/// word) followed by `req_id ‖ inner payload`, where `enveloped_prefix`
/// is the wrapped payload *without* its 16-byte trailer.
fn v4_checksum(opcode: u8, enveloped_prefix: &[u8]) -> Fingerprint {
    Fingerprint::of_tagged_bytes(u64::from(opcode), enveloped_prefix)
}

/// Wrap an inner payload in the v4 envelope: `req_id` prefix, checksum
/// trailer. The result is the frame payload to pass to [`write_frame`] /
/// [`encode_frame`] with the same opcode.
pub fn wrap_v4(opcode: u8, req_id: u64, inner: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(V4_ENVELOPE_BYTES + inner.len());
    out.extend_from_slice(&req_id.to_le_bytes());
    out.extend_from_slice(inner);
    let ck = v4_checksum(opcode, &out);
    out.extend_from_slice(&ck.0.to_le_bytes());
    out.extend_from_slice(&ck.1.to_le_bytes());
    out
}

/// Verify and strip the v4 envelope, returning `(req_id, inner payload)`.
/// A checksum mismatch means the frame was corrupted in flight (or by a
/// `*.bitflip` fault site); the caller rejects the *frame* — with
/// `ERR Corrupt` server-side, a counted drop router-side — and keeps the
/// connection.
pub fn unwrap_v4(opcode: u8, payload: &[u8]) -> Result<(u64, &[u8]), EnvelopeError> {
    if payload.len() < V4_ENVELOPE_BYTES {
        return Err(EnvelopeError::TooShort);
    }
    let trailer_at = payload.len() - 16;
    let ck = v4_checksum(opcode, &payload[..trailer_at]);
    let lo = u64::from_le_bytes(payload[trailer_at..trailer_at + 8].try_into().unwrap());
    let hi = u64::from_le_bytes(payload[trailer_at + 8..].try_into().unwrap());
    if (ck.0, ck.1) != (lo, hi) {
        return Err(EnvelopeError::Checksum);
    }
    let req_id = u64::from_le_bytes(payload[..8].try_into().unwrap());
    Ok((req_id, &payload[8..trailer_at]))
}

/// Best-effort `req_id` of a v4 payload that failed verification — used
/// to echo the ID on an `ERR Corrupt` reply. The ID itself sits in the
/// corrupt region, so it is a hint, not a fact.
pub fn v4_req_id_hint(payload: &[u8]) -> u64 {
    payload
        .get(..8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .unwrap_or(0)
}

/// Incremental little-endian payload reader.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wrap a payload.
    pub fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `u64` and convert to `usize`, rejecting overflow.
    pub fn usize(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| "size overflows usize".to_string())
    }

    /// Read `n` `u64`s as `usize`s.
    pub fn usize_vec(&mut self, n: usize) -> Result<Vec<usize>, String> {
        let raw = self.take(n.checked_mul(8).ok_or("size overflow")?)?;
        raw.chunks_exact(8)
            .map(|c| {
                usize::try_from(u64::from_le_bytes(c.try_into().unwrap()))
                    .map_err(|_| "index overflows usize".to_string())
            })
            .collect()
    }

    /// Read `n` `f64`s.
    pub fn f64_vec(&mut self, n: usize) -> Result<Vec<f64>, String> {
        let raw = self.take(n.checked_mul(8).ok_or("size overflow")?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Read `n` `f32`s (v2 factor snapshots persist the demoted lane's
    /// values at their native width).
    pub fn f32_vec(&mut self, n: usize) -> Result<Vec<f32>, String> {
        let raw = self.take(n.checked_mul(4).ok_or("size overflow")?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Read a 16-byte fingerprint.
    pub fn fingerprint(&mut self) -> Result<Fingerprint, String> {
        Ok(Fingerprint::from_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Read an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        self.take(n)
    }

    /// Unconsumed bytes left in the payload. Lets decoders accept optional
    /// trailing fields (e.g. the v3 SOLVE `flags` byte) without rejecting
    /// older, shorter frames.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail if any bytes remain unconsumed.
    pub fn finish(&self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

/// Payload builder mirroring [`Cursor`].
#[derive(Default)]
pub struct Builder {
    buf: Vec<u8>,
}

impl Builder {
    /// An empty payload.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Append a `u8`.
    pub fn u8(mut self, v: u8) -> Builder {
        self.buf.push(v);
        self
    }

    /// Append a `u16`.
    pub fn u16(mut self, v: u16) -> Builder {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u32`.
    pub fn u32(mut self, v: u32) -> Builder {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u64`.
    pub fn u64(mut self, v: u64) -> Builder {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append `usize`s as `u64`s.
    pub fn usize_slice(mut self, vs: &[usize]) -> Builder {
        self.buf.reserve(vs.len() * 8);
        for &v in vs {
            self.buf.extend_from_slice(&(v as u64).to_le_bytes());
        }
        self
    }

    /// Append an `f64` by bit pattern.
    pub fn f64(mut self, v: f64) -> Builder {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append `f64`s by bit pattern.
    pub fn f64_slice(mut self, vs: &[f64]) -> Builder {
        self.buf.reserve(vs.len() * 8);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Append `f32`s by bit pattern.
    pub fn f32_slice(mut self, vs: &[f32]) -> Builder {
        self.buf.reserve(vs.len() * 4);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Append a fingerprint (16 bytes).
    pub fn fingerprint(mut self, fp: Fingerprint) -> Builder {
        self.buf.extend_from_slice(&fp.to_bytes());
        self
    }

    /// Append raw bytes.
    pub fn bytes(mut self, bs: &[u8]) -> Builder {
        self.buf.extend_from_slice(bs);
        self
    }

    /// The finished payload.
    pub fn build(self) -> Vec<u8> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, op::SOLVE, &[1, 2, 3]).unwrap();
        assert_eq!(buf.len(), 4 + 1 + 3);
        let (opcode, payload) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(opcode, op::SOLVE);
        assert_eq!(payload, vec![1, 2, 3]);
    }

    #[test]
    fn zero_and_oversized_lengths_rejected() {
        let zero = 0u32.to_le_bytes();
        assert!(read_frame(&mut zero.as_slice()).is_err());
        let huge = (MAX_FRAME_LEN + 1).to_le_bytes();
        assert!(read_frame(&mut huge.as_slice()).is_err());
    }

    #[test]
    fn cursor_builder_round_trip() {
        let fp = Fingerprint(7, 9);
        let payload = Builder::new()
            .u8(3)
            .u16(512)
            .u32(70_000)
            .u64(1 << 40)
            .fingerprint(fp)
            .usize_slice(&[1, 2, 3])
            .f64_slice(&[0.5, -0.25])
            .build();
        let mut c = Cursor::new(&payload);
        assert_eq!(c.u8().unwrap(), 3);
        assert_eq!(c.u16().unwrap(), 512);
        assert_eq!(c.u32().unwrap(), 70_000);
        assert_eq!(c.u64().unwrap(), 1 << 40);
        assert_eq!(c.fingerprint().unwrap(), fp);
        assert_eq!(c.usize_vec(3).unwrap(), vec![1, 2, 3]);
        assert_eq!(c.remaining(), 16, "two f64s left");
        assert_eq!(c.f64_vec(2).unwrap(), vec![0.5, -0.25]);
        assert_eq!(c.remaining(), 0);
        c.finish().unwrap();
        // single f64 append/read round-trips by bit pattern
        let one = Builder::new().f64(-0.0).build();
        let mut c = Cursor::new(&one);
        assert_eq!(c.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        c.finish().unwrap();
        // truncation is an error, not a panic
        let mut c = Cursor::new(&payload[..3]);
        assert!(c.u32().is_err());
    }

    #[test]
    fn err_frame_helpers_round_trip() {
        let payload = err_payload(ErrorCode::Busy, "shed", Some(17));
        let (code, msg, hint) = parse_err(&payload).unwrap();
        assert_eq!(code, Some(ErrorCode::Busy));
        assert_eq!(msg, "shed");
        assert_eq!(hint, Some(17));
        // non-Busy codes carry no hint, and trailing junk is tolerated
        let mut payload = err_payload(ErrorCode::Timeout, "slow", None);
        payload.extend_from_slice(&[9, 9, 9]);
        let (code, msg, hint) = parse_err(&payload).unwrap();
        assert_eq!(code, Some(ErrorCode::Timeout));
        assert_eq!(msg, "slow");
        assert_eq!(hint, None);
        // encode_frame produces a parseable wire frame
        let frame = encode_frame(op::OK_BYE, &[1, 2]);
        let (opcode, body) = read_frame(&mut frame.as_slice()).unwrap();
        assert_eq!(opcode, op::OK_BYE);
        assert_eq!(body, vec![1, 2]);
        assert!(parse_err(&[1]).is_err(), "truncated ERR payload rejected");
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::UnknownOpcode,
            ErrorCode::UnknownFingerprint,
            ErrorCode::DimensionMismatch,
            ErrorCode::NotSpd,
            ErrorCode::Timeout,
            ErrorCode::TooLarge,
            ErrorCode::Internal,
            ErrorCode::Busy,
            ErrorCode::Deadline,
            ErrorCode::NonFinite,
            ErrorCode::NumericBreakdown,
            ErrorCode::Corrupt,
        ] {
            assert_eq!(ErrorCode::from_u16(code as u16), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(999), None);
    }

    #[test]
    fn v4_envelope_round_trip() {
        let inner = [7u8, 8, 9, 10, 11];
        let wrapped = wrap_v4(op::SOLVE, 0xdead_beef_cafe_f00d, &inner);
        assert_eq!(wrapped.len(), inner.len() + V4_ENVELOPE_BYTES);
        let (rid, body) = unwrap_v4(op::SOLVE, &wrapped).unwrap();
        assert_eq!(rid, 0xdead_beef_cafe_f00d);
        assert_eq!(body, inner);
        // empty inner payload is legal (STATS, SHUTDOWN)
        let wrapped = wrap_v4(op::STATS, 3, &[]);
        let (rid, body) = unwrap_v4(op::STATS, &wrapped).unwrap();
        assert_eq!((rid, body.len()), (3, 0));
    }

    #[test]
    fn v4_envelope_rejects_corruption_everywhere() {
        let inner: Vec<u8> = (0..100).collect();
        let wrapped = wrap_v4(op::SOLVE, 42, &inner);
        // every single-bit flip in the frame is caught: req_id, payload,
        // and trailer bytes alike
        for i in 0..wrapped.len() {
            let mut bad = wrapped.clone();
            bad[i] ^= 0x10;
            assert_eq!(
                unwrap_v4(op::SOLVE, &bad),
                Err(EnvelopeError::Checksum),
                "flip at byte {i} must be caught"
            );
        }
        // a flipped opcode byte (outside the payload) is caught too
        assert_eq!(unwrap_v4(op::LOAD, &wrapped), Err(EnvelopeError::Checksum));
        // too-short payloads are structurally rejected, id hint survives
        assert_eq!(unwrap_v4(op::SOLVE, &[0; 23]), Err(EnvelopeError::TooShort));
        assert_eq!(v4_req_id_hint(&wrapped), 42);
        assert_eq!(v4_req_id_hint(&[1]), 0);
    }
}
