//! Crash-consistent on-disk factor store with warm restart (DESIGN.md §16).
//!
//! The paper's economics — pay factorization once, amortize it over many
//! triangular solves — should survive a process death. Each sealed cache
//! entry is snapshotted by a dedicated **write-behind thread** (the hot
//! path never blocks on disk; `save` is an `Arc` clone plus a channel
//! send) into a fingerprint-named, versioned file holding the CSC matrix,
//! the factor's numeric values, and the factorization policy, protected by
//! the two-lane FNV-1a checksum family from the integrity work:
//!
//! ```text
//! <fingerprint:32 hex>.factor
//!   magic    b"TSVF"                      4 bytes
//!   version  u16 LE                       2 bytes
//!   payload                               (see encode_snapshot)
//!   trailer  Fingerprint::of_bytes(payload)   16 bytes
//! ```
//!
//! Writes follow the temp-file → `fsync` → atomic-rename protocol, so a
//! reader never observes a half-written snapshot under its final name; a
//! crash can only leave a stray `.tmp` (debris, unlinked at recovery) or —
//! if the crash lands between `rename` and the directory sync on a
//! power-cut — a truncated file the trailer checksum rejects. A tiny
//! advisory `MANIFEST` (oldest-first `fingerprint bytes` lines) preserves
//! eviction order across restarts for the byte budget; the directory scan
//! is the source of truth, so a lost or stale manifest costs nothing but
//! ordering.
//!
//! What is deliberately **not** persisted: the `SolvePlan`, the
//! `SubtreeSchedule`, the permutation, and the supernode partition. All of
//! them are pure functions of the matrix structure (DESIGN.md §12), so
//! recovery re-runs the deterministic symbolic pipeline via
//! [`SparseCholeskySolver::from_factor_values`] and restores only the
//! numeric values verbatim — a warm-restarted server answers bit-identically
//! to one that never died, and the format does not have to version every
//! internal scheduling structure.
//!
//! The recovery scan classifies every `*.factor` file as good (loaded),
//! torn (short file or trailer-checksum mismatch), corrupt (checksum
//! passes but the content is inconsistent — foreign writer, fingerprint
//! mismatch, rebuild digest mismatch), or stale (wrong version or
//! factorization policy); bad files are unlinked and counted, never
//! panicked on. Fault sites `store.torn`, `store.stall`, and
//! `store.bitflip` drill exactly the torn-write and silent-corruption
//! artifacts through the always-compiled [`FaultPlan`].

use std::collections::HashSet;
use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use trisolv_core::{SparseCholeskySolver, SparseCholeskySolverF32};
use trisolv_factor::seqchol::FactorOptions;
use trisolv_matrix::CscMatrix;

use crate::cache::{FactorEntry, SolverLane};
use crate::fault::{FaultAction, FaultPlan, FaultSite};
use crate::fingerprint::Fingerprint;
use crate::protocol::{Builder, Cursor};

/// Leading magic of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"TSVF";
/// Current snapshot format version. Version 2 added the precision tag and
/// native-width (`f32`) factor payloads; version-1 files (implicitly `f64`)
/// still load — recovery, not rejection, for every file an older server
/// wrote.
pub const SNAPSHOT_VERSION: u16 = 2;
/// Precision-tag byte: full-precision `f64` factor payload.
pub const PRECISION_F64: u8 = 0;
/// Precision-tag byte: demoted `f32` factor payload.
pub const PRECISION_F32: u8 = 1;
/// Snapshot file extension (files are named `<fingerprint>.factor`).
pub const SNAPSHOT_EXT: &str = "factor";

const HEADER_LEN: usize = 6;
const TRAILER_LEN: usize = 16;
const MANIFEST: &str = "MANIFEST";

/// Persistence configuration (`trisolv serve --persist-dir`).
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Directory the snapshots live in (created if missing).
    pub dir: PathBuf,
    /// On-disk byte budget across all snapshots; the oldest are unlinked
    /// when it overflows. The newest snapshot is always kept.
    pub budget_bytes: u64,
}

impl StoreOptions {
    /// Options for `dir` with an unlimited byte budget.
    pub fn new(dir: impl Into<PathBuf>) -> StoreOptions {
        StoreOptions {
            dir: dir.into(),
            budget_bytes: u64::MAX,
        }
    }
}

/// Why the recovery scan refused a snapshot file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Short file or trailer-checksum mismatch: a torn write or flipped
    /// bits (the checksum cannot tell the two apart).
    Torn,
    /// The checksum passed but the content is inconsistent: foreign
    /// writer, fingerprint/name mismatch, or the rebuilt factor failed its
    /// digest.
    Corrupt,
    /// Wrong format version or factorization policy.
    Stale,
}

/// A snapshot the recovery scan accepted: the solver is already rebuilt
/// (deterministic symbolic pipeline + persisted numeric values) and its
/// factor digest verified against the persisted checksum.
pub struct RecoveredFactor {
    /// Content hash of the matrix (and the snapshot's file name).
    pub fingerprint: Fingerprint,
    /// The original matrix, retained for refinement and self-healing.
    pub matrix: CscMatrix,
    /// The rebuilt solver in its persisted precision lane; bit-identical
    /// to the one that was persisted (version-1 snapshots are always
    /// `f64`).
    pub solver: SolverLane,
    /// The factor-integrity checksum carried in the snapshot.
    pub checksum: Fingerprint,
}

struct Ledger {
    /// `(fingerprint, file bytes)` oldest-first; drives budget eviction.
    entries: Vec<(Fingerprint, u64)>,
}

impl Ledger {
    fn total(&self) -> u64 {
        self.entries.iter().map(|(_, b)| b).sum()
    }

    fn touch(&mut self, fp: Fingerprint, bytes: u64) {
        self.entries.retain(|(f, _)| *f != fp);
        self.entries.push((fp, bytes));
    }

    fn remove(&mut self, fp: Fingerprint) {
        self.entries.retain(|(f, _)| *f != fp);
    }
}

enum Msg {
    Save(Arc<FactorEntry>),
    Delete(Fingerprint),
    Flush(Sender<()>),
}

/// The write-behind snapshot store. One instance per server; `save` and
/// `delete` are cheap sends to the writer thread, `recover` is a blocking
/// startup scan.
pub struct FactorStore {
    dir: PathBuf,
    budget: u64,
    tx: Mutex<Option<Sender<Msg>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
    ledger: Arc<Mutex<Ledger>>,
    writes: Arc<AtomicU64>,
    recovered: AtomicU64,
    dropped: AtomicU64,
}

impl FactorStore {
    /// Open (creating if needed) the snapshot directory and start the
    /// write-behind thread. Call [`FactorStore::recover`] before serving
    /// traffic to load surviving snapshots.
    pub fn open(opts: StoreOptions, fault: FaultPlan) -> io::Result<Arc<FactorStore>> {
        fs::create_dir_all(&opts.dir)?;
        let (tx, rx) = mpsc::channel::<Msg>();
        let ledger = Arc::new(Mutex::new(Ledger {
            entries: Vec::new(),
        }));
        let writes = Arc::new(AtomicU64::new(0));
        let store = Arc::new(FactorStore {
            dir: opts.dir.clone(),
            budget: opts.budget_bytes,
            tx: Mutex::new(Some(tx)),
            writer: Mutex::new(None),
            ledger: Arc::clone(&ledger),
            writes: Arc::clone(&writes),
            recovered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        });
        let dir = opts.dir;
        let budget = opts.budget_bytes;
        let handle = std::thread::Builder::new()
            .name("tsv-store-writer".to_string())
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Save(entry) => {
                            writer_save(&dir, budget, &fault, &ledger, &writes, &entry)
                        }
                        Msg::Delete(fp) => {
                            let mut g = lock(&ledger);
                            g.remove(fp);
                            let _ = fs::remove_file(snapshot_path(&dir, fp));
                            write_manifest(&dir, &g.entries);
                        }
                        Msg::Flush(ack) => {
                            let _ = ack.send(());
                        }
                    }
                }
            })?;
        *store.writer.lock().unwrap_or_else(|e| e.into_inner()) = Some(handle);
        Ok(store)
    }

    /// The snapshot directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Queue a snapshot of a sealed cache entry. Costs one `Arc` clone and
    /// a channel send on the caller; encoding and disk I/O happen on the
    /// writer thread.
    pub fn save(&self, entry: Arc<FactorEntry>) {
        self.send(Msg::Save(entry));
    }

    /// Queue deletion of a snapshot (explicit `EVICT` or LRU eviction).
    pub fn delete(&self, fp: Fingerprint) {
        self.send(Msg::Delete(fp));
    }

    /// Wait until every queued save/delete has been applied (the writer
    /// processes messages in order, so a flush ack means the queue ahead
    /// of it drained). Returns `false` on timeout.
    pub fn flush(&self, timeout: Duration) -> bool {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.send(Msg::Flush(ack_tx));
        ack_rx.recv_timeout(timeout).is_ok()
    }

    fn send(&self, msg: Msg) {
        let g = self.tx.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(tx) = g.as_ref() {
            let _ = tx.send(msg);
        }
    }

    /// Completed snapshot writes (temp → fsync → rename all succeeded).
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Snapshots loaded by the recovery scan.
    pub fn recovered_count(&self) -> u64 {
        self.recovered.load(Ordering::Relaxed)
    }

    /// Files the recovery scan unlinked (torn, corrupt, stale, or orphan
    /// `.tmp` debris).
    pub fn dropped_count(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Scan the directory, verify every snapshot, and return the survivors
    /// oldest-first (manifest order where known). Torn/corrupt/stale files
    /// and orphaned `.tmp`s are unlinked and counted — never panicked on.
    /// Survivors beyond the byte budget are unlinked oldest-first.
    pub fn recover(&self) -> Vec<RecoveredFactor> {
        let mut named: Vec<(Fingerprint, PathBuf)> = Vec::new();
        let entries = match fs::read_dir(&self.dir) {
            Ok(it) => it,
            Err(_) => return Vec::new(),
        };
        for dent in entries.flatten() {
            let path = dent.path();
            let name = dent.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".tmp") {
                // debris of a crash mid-protocol: the write never committed
                let _ = fs::remove_file(&path);
                self.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            match parse_snapshot_name(&name) {
                Some(fp) => named.push((fp, path)),
                None => {
                    if name != MANIFEST && name.ends_with(&format!(".{SNAPSHOT_EXT}")) {
                        // a .factor file not named by a fingerprint cannot
                        // be trusted; treat as corrupt
                        let _ = fs::remove_file(&path);
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        // manifest order first (oldest-first), unknown files after
        let manifest = read_manifest(&self.dir);
        named.sort_by_key(|(fp, _)| manifest.iter().position(|m| m == fp).unwrap_or(usize::MAX));

        let mut out = Vec::new();
        let mut ledger = lock(&self.ledger);
        for (fp, path) in named {
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(_) => {
                    let _ = fs::remove_file(&path);
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            match decode_snapshot(&bytes, fp) {
                Ok(rec) => {
                    ledger.touch(fp, bytes.len() as u64);
                    self.recovered.fetch_add(1, Ordering::Relaxed);
                    out.push(rec);
                }
                Err(_reason) => {
                    let _ = fs::remove_file(&path);
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // budget: unlink oldest survivors until the directory fits
        let mut evicted: HashSet<Fingerprint> = HashSet::new();
        while ledger.total() > self.budget && ledger.entries.len() > 1 {
            let (fp, _) = ledger.entries.remove(0);
            let _ = fs::remove_file(snapshot_path(&self.dir, fp));
            evicted.insert(fp);
        }
        if !evicted.is_empty() {
            out.retain(|r| !evicted.contains(&r.fingerprint));
        }
        write_manifest(&self.dir, &ledger.entries);
        out
    }
}

impl Drop for FactorStore {
    fn drop(&mut self) {
        // close the channel so the writer exits, then join it
        self.tx.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(h) = self.writer.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = h.join();
        }
    }
}

fn lock(m: &Mutex<Ledger>) -> std::sync::MutexGuard<'_, Ledger> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One write-behind save: encode, trip the `store` fault site, write
/// atomically, update the ledger/manifest, and enforce the byte budget.
fn writer_save(
    dir: &Path,
    budget: u64,
    fault: &FaultPlan,
    ledger: &Mutex<Ledger>,
    writes: &AtomicU64,
    entry: &FactorEntry,
) {
    let mut bytes = encode_snapshot(entry);
    let final_path = snapshot_path(dir, entry.fingerprint);
    // Stall is honored in place by trip() — that is the window the SIGKILL
    // crash drill aims at.
    match fault.trip(FaultSite::Store) {
        Some(FaultAction::Torn) => {
            // a crash between write and fsync: a truncated snapshot visible
            // under its final name, which recovery must reject
            let cut = (bytes.len() * 2 / 3).max(1).min(bytes.len() - 1);
            let _ = fs::write(&final_path, &bytes[..cut]);
            return;
        }
        Some(FaultAction::BitFlip) => {
            // silent corruption after the trailer checksum was computed
            let mid = HEADER_LEN + (bytes.len() - HEADER_LEN - TRAILER_LEN) / 2;
            bytes[mid] ^= 0x10;
        }
        _ => {}
    }
    if write_atomic(dir, &final_path, &bytes).is_err() {
        // disk trouble is not worth crashing the server over; the entry
        // simply stays memory-only
        return;
    }
    writes.fetch_add(1, Ordering::Relaxed);
    let mut g = lock(ledger);
    g.touch(entry.fingerprint, bytes.len() as u64);
    while g.total() > budget && g.entries.len() > 1 {
        let (fp, _) = g.entries.remove(0);
        let _ = fs::remove_file(snapshot_path(dir, fp));
    }
    write_manifest(dir, &g.entries);
}

/// temp-file → fsync → atomic rename → best-effort directory sync.
fn write_atomic(dir: &Path, final_path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = final_path.with_extension(format!("{SNAPSHOT_EXT}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, final_path)?;
    // make the rename itself durable; failure here only risks losing the
    // newest snapshot on power-cut, never exposing a torn one
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

fn snapshot_path(dir: &Path, fp: Fingerprint) -> PathBuf {
    dir.join(format!("{fp}.{SNAPSHOT_EXT}"))
}

/// `<32 hex>.factor` → the fingerprint, `None` for anything else.
fn parse_snapshot_name(name: &str) -> Option<Fingerprint> {
    let hex = name.strip_suffix(&format!(".{SNAPSHOT_EXT}"))?;
    if hex.len() != 32 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let a = u64::from_str_radix(&hex[..16], 16).ok()?;
    let b = u64::from_str_radix(&hex[16..], 16).ok()?;
    Some(Fingerprint(a, b))
}

fn write_manifest(dir: &Path, entries: &[(Fingerprint, u64)]) {
    let mut text = String::new();
    for (fp, bytes) in entries {
        text.push_str(&format!("{fp} {bytes}\n"));
    }
    let tmp = dir.join("MANIFEST.tmp");
    if fs::write(&tmp, text).is_ok() {
        let _ = fs::rename(&tmp, dir.join(MANIFEST));
    }
}

fn read_manifest(dir: &Path) -> Vec<Fingerprint> {
    let Ok(text) = fs::read_to_string(dir.join(MANIFEST)) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| parse_snapshot_name(&format!("{}.{SNAPSHOT_EXT}", l.split(' ').next()?)))
        .collect()
}

/// Encode a sealed cache entry into the full snapshot file image
/// (header + payload + trailer checksum). The factor payload is written at
/// its resident width: `f64` blocks for a full-precision entry, raw `f32`
/// bits for a demoted one — half the bytes, and the bit-exact resident
/// values either way.
pub fn encode_snapshot(entry: &FactorEntry) -> Vec<u8> {
    let m = &entry.matrix;
    let opts = FactorOptions::default();
    let tag = if entry.solver.is_f32() {
        PRECISION_F32
    } else {
        PRECISION_F64
    };
    let mut b = Builder::new()
        .fingerprint(entry.fingerprint)
        .u8(u8::from(opts.regularize))
        .f64(opts.beta)
        .u8(tag)
        .u64(m.nrows() as u64)
        .u64(m.nnz() as u64)
        .usize_slice(m.colptr())
        .usize_slice(m.rowidx())
        .f64_slice(m.values())
        .fingerprint(entry.checksum)
        .u64(entry.solver.value_count() as u64);
    match &entry.solver {
        SolverLane::F64(solver) => {
            let f = solver.factor_matrix();
            for s in 0..f.nsup() {
                b = b.f64_slice(f.block(s).as_slice());
            }
        }
        SolverLane::F32(solver) => {
            let f = solver.factor_matrix();
            for s in 0..f.nsup() {
                b = b.f32_slice(f.values(s));
            }
        }
    }
    let perts = entry.solver.perturbations();
    b = b.u64(perts.len() as u64);
    for &(col, delta) in perts {
        b = b.u64(col as u64).f64(delta);
    }
    let payload = b.build();
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    let trailer = Fingerprint::of_bytes(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&trailer.to_bytes());
    out
}

/// Decode and fully verify a snapshot file image: header, trailer checksum,
/// payload consistency, fingerprint identity, and — after rebuilding the
/// solver through the deterministic symbolic pipeline — the factor digest.
pub fn decode_snapshot(bytes: &[u8], expect: Fingerprint) -> Result<RecoveredFactor, DropReason> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(DropReason::Torn);
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(DropReason::Corrupt);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    // Backward, not forward, compatible: every version this server has
    // ever written still loads; files from a *newer* server are stale.
    if version == 0 || version > SNAPSHOT_VERSION {
        return Err(DropReason::Stale);
    }
    let payload = &bytes[HEADER_LEN..bytes.len() - TRAILER_LEN];
    let trailer = Fingerprint::from_bytes(bytes[bytes.len() - TRAILER_LEN..].try_into().unwrap());
    if Fingerprint::of_bytes(payload) != trailer {
        return Err(DropReason::Torn);
    }
    // The checksum passed, so any decode failure below means an
    // inconsistent writer, not a torn write.
    let mut c = Cursor::new(payload);
    let parsed: Result<RecoveredFactor, String> = (|| {
        let fp = c.fingerprint()?;
        if fp != expect {
            return Err("snapshot fingerprint does not match its file name".to_string());
        }
        let regularize = c.u8()? != 0;
        let beta = c.f64()?;
        let opts = FactorOptions::default();
        if regularize != opts.regularize || beta.to_bits() != opts.beta.to_bits() {
            // wrong factorization policy: values would not match what this
            // server would compute — classified as stale below
            return Err("policy".to_string());
        }
        // Version 1 predates the precision tag; those files are `f64` by
        // construction.
        let tag = if version >= 2 { c.u8()? } else { PRECISION_F64 };
        if tag != PRECISION_F64 && tag != PRECISION_F32 {
            return Err("unknown precision tag".to_string());
        }
        let n = c.u64()? as usize;
        let nnz = c.u64()? as usize;
        if n.checked_add(1).is_none() || nnz > payload.len() {
            return Err("implausible dimensions".to_string());
        }
        let colptr = c.usize_vec(n + 1)?;
        let rowidx = c.usize_vec(nnz)?;
        let values = c.f64_vec(nnz)?;
        let matrix =
            CscMatrix::from_parts(n, n, colptr, rowidx, values).map_err(|e| e.to_string())?;
        if Fingerprint::of_matrix(&matrix) != fp {
            return Err("matrix content does not match fingerprint".to_string());
        }
        let checksum = c.fingerprint()?;
        let nvals = c.u64()? as usize;
        let solver: SolverLane = if tag == PRECISION_F32 {
            let fvals = c.f32_vec(nvals)?;
            let perts = read_perturbations(&mut c, n)?;
            c.finish()?;
            let solver = SparseCholeskySolverF32::from_factor_values(&matrix, &fvals, perts)
                .map_err(|e| e.to_string())?;
            let digest = {
                let f = solver.factor_matrix();
                Fingerprint::of_value_slices_f32((0..f.nsup()).map(|s| f.values(s)))
            };
            if digest != checksum {
                return Err("rebuilt factor does not match persisted checksum".to_string());
            }
            SolverLane::F32(solver)
        } else {
            let fvals = c.f64_vec(nvals)?;
            let perts = read_perturbations(&mut c, n)?;
            c.finish()?;
            let solver = SparseCholeskySolver::from_factor_values(&matrix, &fvals, perts)
                .map_err(|e| e.to_string())?;
            let digest = {
                let f = solver.factor_matrix();
                Fingerprint::of_value_slices((0..f.nsup()).map(|s| f.block(s).as_slice()))
            };
            if digest != checksum {
                return Err("rebuilt factor does not match persisted checksum".to_string());
            }
            SolverLane::F64(solver)
        };
        Ok(RecoveredFactor {
            fingerprint: fp,
            matrix,
            solver,
            checksum,
        })
    })();
    parsed.map_err(|reason| {
        if reason == "policy" {
            DropReason::Stale
        } else {
            DropReason::Corrupt
        }
    })
}

/// The perturbation ledger tail shared by both precision lanes (always
/// persisted in `f64`: the recorded diagonal boosts are a property of the
/// factorization, not of the storage width).
fn read_perturbations(c: &mut Cursor<'_>, n: usize) -> Result<Vec<(usize, f64)>, String> {
    let npert = c.u64()? as usize;
    let mut perts = Vec::with_capacity(npert.min(n));
    for _ in 0..npert {
        let col = c.u64()? as usize;
        let delta = c.f64()?;
        perts.push((col, delta));
    }
    Ok(perts)
}

/// Byte offsets of every section boundary inside an encoded snapshot:
/// after the header, and after each payload section (identity+policy,
/// matrix arrays, factor checksum+values, perturbations), ending at the
/// trailer. Test aid for the torn-file drill — truncating the file at any
/// of these offsets ±1 must be rejected by [`decode_snapshot`]. Replays
/// the layout of whichever version the header declares.
pub fn section_boundaries(bytes: &[u8]) -> Vec<usize> {
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    let payload = &bytes[HEADER_LEN..bytes.len() - TRAILER_LEN];
    let mut c = Cursor::new(payload);
    let mut marks = vec![HEADER_LEN];
    let _ = (|| -> Result<(), String> {
        let _ = c.fingerprint()?;
        let _ = c.u8()?;
        let _ = c.f64()?;
        let tag = if version >= 2 { c.u8()? } else { PRECISION_F64 };
        marks.push(HEADER_LEN + (payload.len() - c.remaining()));
        let n = c.u64()? as usize;
        let nnz = c.u64()? as usize;
        let _ = c.usize_vec(n + 1)?;
        let _ = c.usize_vec(nnz)?;
        let _ = c.f64_vec(nnz)?;
        marks.push(HEADER_LEN + (payload.len() - c.remaining()));
        let _ = c.fingerprint()?;
        let nvals = c.u64()? as usize;
        if tag == PRECISION_F32 {
            let _ = c.f32_vec(nvals)?;
        } else {
            let _ = c.f64_vec(nvals)?;
        }
        marks.push(HEADER_LEN + (payload.len() - c.remaining()));
        let npert = c.u64()? as usize;
        for _ in 0..npert {
            let _ = c.u64()?;
            let _ = c.f64()?;
        }
        marks.push(HEADER_LEN + (payload.len() - c.remaining()));
        Ok(())
    })();
    marks.push(bytes.len());
    marks
}
