//! Minimal readiness poller for the event-driven front end.
//!
//! The workspace is `std`-only, so this is a hand-rolled, level-triggered
//! wrapper over `poll(2)` declared through a five-line FFI shim (no `libc`
//! crate; the symbols come from the C library `std` already links). The
//! interface is deliberately tiny: the caller rebuilds the descriptor set
//! every iteration ([`wait`] is stateless), which keeps level-triggered
//! semantics trivial — a connection that still has buffered input or unsent
//! output is simply registered again and reported ready again.
//!
//! On non-unix targets a degraded fallback keeps the crate compiling: it
//! sleeps a short interval and reports every registered descriptor as ready
//! per its interest. Spurious readiness is harmless — all front-end sockets
//! are nonblocking, so a wrong guess costs one `WouldBlock` — but idle CPU
//! is no longer near zero there. Production targets are unix.
//!
//! Cross-thread wakeups use a loopback socket pair ([`wake_pair`]) instead
//! of a self-pipe, because `std` can make sockets without any FFI at all:
//! the read half sits in the poll set, and [`Waker::wake`] writes one byte.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

/// Raw socket descriptor registered with [`wait`].
#[cfg(unix)]
pub type RawFd = std::os::unix::io::RawFd;
/// Raw socket descriptor (opaque on non-unix; the fallback ignores it).
#[cfg(not(unix))]
pub type RawFd = i32;

/// The descriptor of a socket-like object, as [`wait`] wants it.
#[cfg(unix)]
pub fn fd_of<T: std::os::unix::io::AsRawFd>(s: &T) -> RawFd {
    s.as_raw_fd()
}
/// Non-unix fallback: descriptors are not used, any value works.
#[cfg(not(unix))]
pub fn fd_of<T>(_s: &T) -> RawFd {
    0
}

/// What the owner wants to be told about.
#[derive(Debug, Clone, Copy, Default)]
pub struct Interest {
    /// Wake when a read would make progress (or the peer hung up).
    pub readable: bool,
    /// Wake when a write would make progress.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub fn read() -> Interest {
        Interest {
            readable: true,
            writable: false,
        }
    }
}

/// What `poll(2)` reported for one descriptor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Readiness {
    /// A read would make progress.
    pub readable: bool,
    /// A write would make progress.
    pub writable: bool,
    /// Error/hangup/invalid state; the owner should attempt I/O (to surface
    /// the error) and close. Reported even when not asked for.
    pub hangup: bool,
}

/// One registered descriptor: interest in, readiness out.
#[derive(Debug)]
pub struct PollFd {
    /// The descriptor.
    pub fd: RawFd,
    /// What to wait for.
    pub interest: Interest,
    /// Filled by [`wait`].
    pub ready: Readiness,
}

impl PollFd {
    /// A registration with empty readiness.
    pub fn new(fd: RawFd, interest: Interest) -> PollFd {
        PollFd {
            fd,
            interest,
            ready: Readiness::default(),
        }
    }
}

// The one `unsafe` island in the workspace: declaring and calling `poll(2)`.
// The call is sound by inspection — `fds` points at a live, correctly-sized
// `#[repr(C)]` slice for the duration of the call and the kernel only writes
// `revents` within it.
#[allow(unsafe_code)]
#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_ulong};

    #[repr(C)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        // `nfds_t` is `unsigned long` on Linux and `unsigned int` on the
        // BSDs; passing the wider type is safe everywhere the value fits in
        // 32 bits, which a poll set always does.
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }
}

/// `timeout` for `poll(2)`: `None` blocks forever; sub-millisecond remnants
/// round *up* so a nearly-due deadline does not busy-spin at timeout 0.
#[cfg(unix)]
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let mut ms = d.as_millis();
            if d.as_nanos() % 1_000_000 != 0 {
                ms += 1;
            }
            ms.min(i32::MAX as u128) as i32
        }
    }
}

/// Block until a registered descriptor is ready or `timeout` expires
/// (`None` = wait forever). Fills `ready` on every entry; returns how many
/// are ready. A signal interruption reports zero ready descriptors.
#[cfg(unix)]
pub fn wait(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let mut raw: Vec<sys::PollFd> = fds
        .iter()
        .map(|f| sys::PollFd {
            fd: f.fd,
            events: if f.interest.readable { sys::POLLIN } else { 0 }
                | if f.interest.writable { sys::POLLOUT } else { 0 },
            revents: 0,
        })
        .collect();
    #[allow(unsafe_code)] // FFI call into poll(2); see `mod sys` for the safety argument
    let rc = unsafe {
        sys::poll(
            raw.as_mut_ptr(),
            raw.len() as std::os::raw::c_ulong,
            timeout_ms(timeout),
        )
    };
    if rc < 0 {
        let err = io::Error::last_os_error();
        for f in fds.iter_mut() {
            f.ready = Readiness::default();
        }
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    for (f, r) in fds.iter_mut().zip(&raw) {
        f.ready = Readiness {
            readable: r.revents & sys::POLLIN != 0,
            writable: r.revents & sys::POLLOUT != 0,
            hangup: r.revents & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0,
        };
    }
    Ok(rc as usize)
}

/// Degraded non-unix fallback: sleep briefly, then report every descriptor
/// ready per its interest. Spurious readiness is safe on nonblocking
/// sockets; near-zero idle CPU is not preserved on these targets.
#[cfg(not(unix))]
pub fn wait(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let nap = timeout
        .unwrap_or(Duration::from_millis(10))
        .min(Duration::from_millis(10));
    if !nap.is_zero() {
        std::thread::sleep(nap);
    }
    for f in fds.iter_mut() {
        f.ready = Readiness {
            readable: f.interest.readable,
            writable: f.interest.writable,
            hangup: false,
        };
    }
    Ok(fds.len())
}

/// Cross-thread wakeup handle for a [`wait`] loop; see [`wake_pair`].
pub struct Waker {
    tx: Mutex<TcpStream>,
}

impl Waker {
    /// Make the paired [`wait`] loop return now. Best-effort by design: a
    /// full socket buffer means a wake is already pending, and a closed
    /// peer means the loop is already gone.
    pub fn wake(&self) {
        let mut tx = self.tx.lock().unwrap_or_else(|e| e.into_inner());
        let _ = tx.write(&[1]);
    }

    /// The raw descriptor of the write half, for the signal handler: a
    /// handler must not touch the `Mutex` (not async-signal-safe), so it
    /// `write(2)`s its wake byte to this descriptor directly. Concurrent
    /// one-byte writes with [`Waker::wake`] are safe — both sides only ever
    /// append wake bytes the loop drains in bulk.
    pub fn raw_fd(&self) -> RawFd {
        fd_of(&*self.tx.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// A connected loopback socket pair: the [`Waker`] write half (shareable
/// across threads) and the nonblocking read half to register in the poll
/// set. The accept loop verifies the peer is our own connect, so a stranger
/// racing the ephemeral port cannot become the wake channel.
pub fn wake_pair() -> io::Result<(Waker, TcpStream)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let ours = tx.local_addr()?;
    let rx = loop {
        let (rx, peer) = listener.accept()?;
        if peer == ours {
            break rx;
        }
    };
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx: Mutex::new(tx) }, rx))
}

/// Swallow buffered wake bytes after a wakeup (the read half is
/// nonblocking, so this never parks).
pub fn drain(rx: &mut TcpStream) {
    let mut buf = [0u8; 256];
    loop {
        match rx.read(&mut buf) {
            Ok(0) => return,
            Ok(_) => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn timeout_expires_without_events() {
        let (_waker, rx) = wake_pair().unwrap();
        let mut fds = [PollFd::new(fd_of(&rx), Interest::read())];
        let t0 = Instant::now();
        let n = wait(&mut fds, Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0, "no wake was sent");
        assert!(!fds[0].ready.readable);
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn wake_makes_wait_return_readable() {
        let (waker, mut rx) = wake_pair().unwrap();
        // the thread hands the waker back so its write half stays open —
        // dropping it would close the stream and make `rx` readable (EOF)
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
            waker
        });
        let mut fds = [PollFd::new(fd_of(&rx), Interest::read())];
        let n = wait(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready.readable);
        drain(&mut rx);
        let _waker = t.join().unwrap();
        // drained: an immediate zero-timeout wait sees nothing
        let mut fds = [PollFd::new(fd_of(&rx), Interest::read())];
        let n = wait(&mut fds, Some(Duration::ZERO)).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn sub_millisecond_timeouts_round_up() {
        #[cfg(unix)]
        {
            assert_eq!(timeout_ms(None), -1);
            assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
            assert_eq!(timeout_ms(Some(Duration::from_micros(200))), 1);
            assert_eq!(timeout_ms(Some(Duration::from_millis(7))), 7);
            assert_eq!(timeout_ms(Some(Duration::from_secs(1 << 40))), i32::MAX);
        }
    }
}
