//! `trisolv-server`: a factor-caching, RHS-batching solve service.
//!
//! The paper's experimental point is that triangular-solve throughput is
//! limited by per-solve overhead, not arithmetic: on the T3D one RHS ran at
//! 435 MFLOPS while 30 blocked RHS exceeded 3 GFLOPS. This crate reproduces
//! that amortization curve *at the service level*: a long-lived process
//! keeps factorizations resident ([`cache`]), merges concurrent single-RHS
//! requests on the same factor into blocked `n×k` solves ([`batch`],
//! [`engine`]), and exposes the whole thing over a std-only length-prefixed
//! TCP protocol ([`protocol`]) behind an event-driven front end — a
//! `poll(2)` readiness loop ([`poller`]), per-connection state machines
//! with request pipelining ([`conn`]), and a solver-worker pool
//! ([`server`]) — with a matching blocking client and load generator
//! ([`client`], [`loadgen`]).
//!
//! Failure is a first-class input ([`fault`]): a seeded fault plan can
//! inject torn frames, stalls, panics, and connection drops at named sites,
//! and the hardening it exercises — deadlines, admission control, panic
//! isolation with a sequential-executor fallback, and client retry — is on
//! by default (DESIGN.md §11).
//!
//! Numeric trust is also first-class (DESIGN.md §13): cached factors are
//! checksummed at insert and re-verified on a configurable cadence, with a
//! corrupted factor transparently refactored from the retained matrix
//! (self-healing, bit-identical by determinism), and protocol v3 lets a
//! client request a *certified* solve — iterative refinement whose reply
//! carries the componentwise backward error it achieved.
//!
//! Everything is `std`-only; the workspace builds offline with zero
//! external dependencies.

pub mod batch;
pub mod cache;
pub mod client;
pub mod conn;
pub mod engine;
pub mod fault;
pub mod fingerprint;
pub mod loadgen;
pub mod poller;
pub mod protocol;
pub mod server;
pub mod signal;
pub mod store;

pub use batch::{BatchLane, BatchOptions, LaneError};
pub use cache::{CacheStats, FactorCache, FactorEntry, SolverLane};
pub use client::{
    CertifiedReply, Client, ClientError, ClientOptions, ClientPool, EvictReply, LoadReply,
    PooledClient, ReplicaEvict, RetryStats,
};
pub use engine::{
    CertifiedOutcome, Engine, EngineError, EngineOptions, EngineStats, ExecMode, LoadOutcome,
    PrecisionMode,
};
pub use fault::{FaultAction, FaultPlan, FaultSite};
pub use fingerprint::Fingerprint;
pub use loadgen::{run_load, LoadGenOptions, LoadGenReport};
pub use server::{RunningServer, Server, ServerOptions};
pub use store::{DropReason, FactorStore, RecoveredFactor, StoreOptions};
