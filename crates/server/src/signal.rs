//! Graceful SIGTERM/SIGINT shutdown for `trisolv serve`.
//!
//! Before this, only a `SHUTDOWN` frame exited cleanly; a SIGTERM killed
//! the process mid-flight and could strand a half-written snapshot for the
//! recovery scan to discard. The fix is the classic self-pipe trick routed
//! through the event loop's existing [`crate::poller::Waker`]: the handler
//! does exactly two async-signal-safe things — store a flag in a static
//! `AtomicBool` and `write(2)` one byte to the waker's raw descriptor
//! (bypassing the waker's `Mutex`, which a signal handler must never
//! touch). The event loop polls the flag next to its own shutdown flag, so
//! a signal drains lanes through the same 500 ms grace path as a
//! `SHUTDOWN` frame, flushes pending snapshots, and exits 0.
//!
//! Installation is opt-in ([`install`] is called by the `serve` CLI only),
//! so in-process test servers never have their process-wide signal
//! disposition changed under them.

use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static WAKE_FD: AtomicI32 = AtomicI32::new(-1);

// FFI shim beside the poller's: `signal(2)` registration and the raw
// `write(2)` the handler is allowed to call. Sound by inspection — the
// handler pointer outlives the process, and `write` gets a live one-byte
// buffer.
#[allow(unsafe_code)]
#[cfg(unix)]
mod sys {
    use std::os::raw::c_int;

    pub const SIGINT: c_int = 2;
    pub const SIGTERM: c_int = 15;

    extern "C" {
        pub fn signal(signum: c_int, handler: usize) -> usize;
        pub fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    }
}

/// The handler: async-signal-safe by construction (two atomics and one
/// `write(2)`; no allocation, no locks, no formatting).
#[cfg(unix)]
extern "C" fn handle(_sig: std::os::raw::c_int) {
    SHUTDOWN.store(true, Ordering::SeqCst);
    let fd = WAKE_FD.load(Ordering::SeqCst);
    if fd >= 0 {
        let byte = [1u8];
        #[allow(unsafe_code)] // FFI write(2); see `mod sys`
        unsafe {
            let _ = sys::write(fd, byte.as_ptr(), 1);
        }
    }
}

/// Route SIGTERM and SIGINT into a graceful shutdown: the handler sets the
/// flag read by [`shutdown_requested`] and writes a wake byte to `wake_fd`
/// (the raw descriptor of the event loop's waker,
/// [`crate::poller::Waker::raw_fd`]). Call once from the `serve` CLI after
/// the server is up.
#[cfg(unix)]
pub fn install(wake_fd: i32) {
    WAKE_FD.store(wake_fd, Ordering::SeqCst);
    let f: extern "C" fn(std::os::raw::c_int) = handle;
    #[allow(unsafe_code)] // FFI signal(2) registration; see `mod sys`
    unsafe {
        let _ = sys::signal(sys::SIGTERM, f as usize);
        let _ = sys::signal(sys::SIGINT, f as usize);
    }
}

/// Non-unix fallback: signals are not routed; `SHUTDOWN` frames still work.
#[cfg(not(unix))]
pub fn install(_wake_fd: i32) {}

/// Has a routed signal asked the process to shut down? The event loop
/// checks this beside its own shutdown flag; one relaxed-ish atomic load
/// per loop iteration, zero cost when no handler was ever installed.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn handler_sets_flag_and_writes_wake_byte() {
        // Call the handler directly rather than raising a real signal: the
        // lib-test binary shares one process across all unit tests, and a
        // genuine SIGTERM disposition change could interfere with them. The
        // end-to-end path (real SIGTERM → clean exit 0) is covered by the
        // CLI crash-drill integration test.
        let (waker, mut rx) = crate::poller::wake_pair().unwrap();
        WAKE_FD.store(waker.raw_fd(), Ordering::SeqCst);
        assert!(!shutdown_requested());
        handle(sys::SIGTERM);
        assert!(shutdown_requested());
        // the read half is nonblocking; loopback delivery is fast but not
        // instantaneous, so poll briefly instead of asserting on one read
        let mut buf = [0u8; 8];
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        let n = loop {
            match rx.read(&mut buf) {
                Ok(n) => break n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "wake byte never arrived"
                    );
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(e) => panic!("unexpected read error: {e}"),
            }
        };
        assert_eq!(&buf[..n], &[1], "one wake byte lands on the read half");
        // restore the globals so no other test observes a shutdown request
        SHUTDOWN.store(false, Ordering::SeqCst);
        WAKE_FD.store(-1, Ordering::SeqCst);
    }
}
