//! TCP front end: readiness-driven event loop, solver-worker pool, watchdog.
//!
//! One event-loop thread owns every socket: it polls the nonblocking
//! listener, a wake channel, and all connections through the [`poller`]
//! abstraction, feeds complete frames from each [`Conn`] state machine into
//! a job channel, and writes finished replies back out. A fixed pool of
//! solver workers blocks on that channel — a worker blocked inside the
//! micro-batcher is exactly what lets concurrent requests share a blocked
//! solve, so `workers` should be at least the target batch size. Requests
//! pipelined on one connection execute concurrently across workers; replies
//! are re-sequenced into request order by the connection (see `conn.rs`).
//!
//! Idle cost is near zero by construction: the loop sleeps in `poll(2)`
//! until a socket or the waker fires (with a timeout only when a slow-peer
//! or write deadline is actually pending), workers sleep in `recv()`, and
//! the watchdog sleeps in `recv()` on worker-exit notices. No thread wakes
//! on a period.
//!
//! Robustness contract (exercised in `tests/service.rs`, `tests/chaos.rs`,
//! and `tests/frontend.rs`):
//!
//! * a garbage or oversized length prefix gets an `ERR` reply and a close
//!   (the stream cannot be re-synchronized);
//! * a decodable frame with a bad payload (truncated arrays, wrong RHS
//!   length, unknown fingerprint, unknown opcode) gets a structured `ERR`
//!   reply and the connection stays open;
//! * a peer that starts a frame but trickles it in slower than
//!   `io_timeout` (slow loris) gets `ERR Timeout` and a close — and under
//!   the event loop it never held a thread to begin with; idle connections
//!   *between* frames may wait forever;
//! * a panic anywhere in request handling is caught at the dispatch
//!   boundary and answered with `ERR Internal`; a panic that escapes a
//!   worker thread entirely (e.g. the injected `worker.panic` fault) is
//!   noticed by the watchdog, which respawns the worker, counts it in
//!   `STATS worker_respawns`, and closes the connection whose request died
//!   with the worker so its client can retry on a fresh stream;
//! * `SHUTDOWN` (or [`RunningServer::shutdown`]) flushes pending replies,
//!   stops the loop, drains the workers, and joins every thread;
//! * a `HELLO` first frame negotiates protocol v4 inline in the loop
//!   (never through the worker pool, so no pipelined enveloped frame can
//!   race the mode switch): subsequent frames carry a request ID echoed in
//!   the reply plus a checksum trailer, replies flush in completion order,
//!   and a frame failing its checksum gets `ERR Corrupt` (counted in
//!   `STATS crc_rejects`) while the connection keeps serving.
//!
//! Every fault-injection site ([`FaultSite`]) on the request path lives in
//! this file except `solve`/`factor`, which the engine trips: `conn` at
//! accept, `read` per parsed frame in the loop, `write` and `worker` in the
//! workers.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use trisolv_matrix::CscMatrix;

use crate::conn::{Conn, FrameStep, Outcome, ReadStatus};
use crate::engine::{Engine, EngineError, EngineOptions};
use crate::fault::{FaultAction, FaultPlan, FaultSite};
use crate::poller::{self, Interest, PollFd, Waker};
use crate::protocol::{
    encode_frame, err_payload, op, unwrap_v4, v4_req_id_hint, wrap_v4, write_frame, Builder,
    Cursor, EnvelopeError, ErrorCode, MAX_FRAME_LEN, PROTOCOL_VERSION, SOLVE_FLAG_CERTIFIED,
};
use crate::signal;
use crate::store::{FactorStore, StoreOptions};

/// Front-end configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Solver worker threads (the event loop handles all connections, so
    /// this no longer bounds concurrent clients). Should be ≥ the batching
    /// `max_batch` for full-width batches to form.
    pub workers: usize,
    /// Engine (cache + batcher + executor) configuration.
    pub engine: EngineOptions,
    /// Fault-injection plan (empty in production; see [`FaultPlan`]).
    pub fault: FaultPlan,
    /// Slow-peer guard: once a frame's first byte arrives, the rest of the
    /// frame must arrive within this budget, and replies must be accepted
    /// this fast. Zero disables the guard.
    pub io_timeout: Duration,
    /// Hard cap on client-requested SOLVE deadlines; also the default
    /// deadline when a client sends none. Zero means uncapped.
    pub deadline_cap: Duration,
    /// Maximum concurrent connections; extras get `ERR Busy` and a close.
    /// Zero means unlimited.
    pub max_conns: usize,
    /// Per-connection pipelining cap: frames admitted while earlier
    /// requests on the same connection are still in flight. Past the cap
    /// the loop stops reading the socket, so flooding clients block on TCP.
    pub max_pipeline: usize,
    /// Crash-consistent factor persistence (`--persist-dir`): snapshot
    /// sealed cache entries to this store and warm-restart from it at
    /// spawn. `None` (the default) keeps the cache memory-only.
    pub persist: Option<StoreOptions>,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 32,
            engine: EngineOptions::default(),
            fault: FaultPlan::none(),
            io_timeout: Duration::from_secs(10),
            deadline_cap: Duration::from_secs(30),
            max_conns: 0,
            max_pipeline: 64,
            persist: None,
        }
    }
}

/// Handle to a spawned server; dropping it shuts the server down.
pub struct RunningServer {
    local_addr: SocketAddr,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
    waker: Arc<Waker>,
    threads: Vec<JoinHandle<()>>,
}

/// One parsed request on its way to a solver worker.
struct Job {
    conn_id: u64,
    seq: u64,
    opcode: u8,
    payload: Vec<u8>,
    /// The v4 request ID to echo in the reply envelope; `None` on a legacy
    /// (un-negotiated) connection, whose replies stay bare v3 frames.
    wire: Option<u64>,
    /// When the frame finished arriving; deadlines count from here, not
    /// from when a worker got around to it.
    received: Instant,
}

/// What flows back from workers (and the watchdog) to the event loop.
enum Completion {
    /// Request `seq` on `conn_id` resolved.
    Done {
        conn_id: u64,
        seq: u64,
        outcome: Outcome,
    },
    /// A worker died holding this connection's request; the reply will
    /// never come, so the loop closes the connection and the client's
    /// retry ladder takes over on a fresh stream.
    ConnLost { conn_id: u64 },
}

/// Completions mailbox: workers push, the loop drains; every push wakes
/// the loop out of `poll`.
struct CompletionQueue {
    items: Mutex<Vec<Completion>>,
    waker: Arc<Waker>,
}

impl CompletionQueue {
    fn push(&self, c: Completion) {
        self.items.lock().unwrap_or_else(|e| e.into_inner()).push(c);
        self.waker.wake();
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.items.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// A worker thread's exit report, sent from a drop guard so it fires on
/// panic and clean return alike.
struct WorkerExit {
    slot: usize,
    panicked: bool,
}

struct ExitNotice {
    tx: Sender<WorkerExit>,
    slot: usize,
}

impl Drop for ExitNotice {
    fn drop(&mut self) {
        let _ = self.tx.send(WorkerExit {
            slot: self.slot,
            panicked: std::thread::panicking(),
        });
    }
}

/// Everything a solver worker needs.
struct WorkerCtx {
    jobs: Arc<Mutex<Receiver<Job>>>,
    completions: Arc<CompletionQueue>,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
    fault: FaultPlan,
    deadline_cap: Duration,
    exits: Sender<WorkerExit>,
    /// Per-slot `conn_id + 1` of the request being served (0 = idle), so
    /// the watchdog knows which connection a dead worker orphaned.
    current: Arc<Vec<AtomicU64>>,
}

impl WorkerCtx {
    fn clone_for_respawn(&self) -> WorkerCtx {
        WorkerCtx {
            jobs: Arc::clone(&self.jobs),
            completions: Arc::clone(&self.completions),
            engine: Arc::clone(&self.engine),
            shutdown: Arc::clone(&self.shutdown),
            fault: self.fault.clone(),
            deadline_cap: self.deadline_cap,
            exits: self.exits.clone(),
            current: Arc::clone(&self.current),
        }
    }
}

/// Everything the event loop owns.
struct LoopCtx {
    listener: TcpListener,
    wake_rx: TcpStream,
    jobs_tx: Sender<Job>,
    completions: Arc<CompletionQueue>,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
    fault: FaultPlan,
    io_timeout: Duration,
    max_conns: usize,
    max_pipeline: usize,
}

/// The service entry point.
pub struct Server;

impl Server {
    /// Bind, spawn the event loop, worker pool, and watchdog, and return
    /// immediately.
    pub fn spawn(opts: ServerOptions) -> io::Result<RunningServer> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        // Open the store (and run its recovery scan inside the engine)
        // before accepting any traffic: a warm-restarted server is
        // indistinguishable from one that never died by the time the first
        // connection lands.
        let store = match &opts.persist {
            Some(p) => Some(FactorStore::open(p.clone(), opts.fault.clone())?),
            None => None,
        };
        let engine = Arc::new(Engine::with_store(opts.engine, opts.fault.clone(), store));
        let shutdown = Arc::new(AtomicBool::new(false));
        let (waker, wake_rx) = poller::wake_pair()?;
        let waker = Arc::new(waker);
        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let completions = Arc::new(CompletionQueue {
            items: Mutex::new(Vec::new()),
            waker: Arc::clone(&waker),
        });
        let (exit_tx, exit_rx) = mpsc::channel::<WorkerExit>();
        let nworkers = opts.workers.max(1);
        let current: Arc<Vec<AtomicU64>> =
            Arc::new((0..nworkers).map(|_| AtomicU64::new(0)).collect());

        let wctx = WorkerCtx {
            jobs: Arc::new(Mutex::new(jobs_rx)),
            completions: Arc::clone(&completions),
            engine: Arc::clone(&engine),
            shutdown: Arc::clone(&shutdown),
            fault: opts.fault.clone(),
            deadline_cap: opts.deadline_cap,
            exits: exit_tx,
            current,
        };
        let workers: Vec<Option<JoinHandle<()>>> = (0..nworkers)
            .map(|slot| Some(spawn_worker(wctx.clone_for_respawn(), slot)))
            .collect();

        let mut threads = Vec::with_capacity(2);
        threads.push(
            std::thread::Builder::new()
                .name("tsv-watchdog".to_string())
                .spawn(move || watchdog_loop(wctx, exit_rx, workers))?,
        );
        let lctx = LoopCtx {
            listener,
            wake_rx,
            jobs_tx,
            completions,
            engine: Arc::clone(&engine),
            shutdown: Arc::clone(&shutdown),
            fault: opts.fault,
            io_timeout: opts.io_timeout,
            max_conns: opts.max_conns,
            max_pipeline: opts.max_pipeline.max(1),
        };
        threads.push(
            std::thread::Builder::new()
                .name("tsv-evloop".to_string())
                .spawn(move || event_loop(lctx))?,
        );
        Ok(RunningServer {
            local_addr,
            engine,
            shutdown,
            waker,
            threads,
        })
    }
}

impl RunningServer {
    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared engine (for in-process inspection and benchmarks).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Route SIGTERM/SIGINT into this server's graceful-shutdown path
    /// (flush snapshots, drain lanes, exit the loop). Changes process-wide
    /// signal disposition — intended for the `serve` CLI, not for
    /// in-process test servers.
    pub fn install_signal_handlers(&self) {
        signal::install(self.waker.raw_fd());
    }

    /// Signal shutdown without waiting.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    /// Signal shutdown and join every thread.
    pub fn join(mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Block until the server shuts down — via a `SHUTDOWN` request or a
    /// [`RunningServer::shutdown`] call from another thread — joining every
    /// thread. Unlike [`RunningServer::join`], this does not itself request
    /// shutdown; it is what `trisolv serve` parks on.
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

/// Positions of the two fixed poll-set entries; connections follow.
const POLL_LISTENER: usize = 0;
const POLL_WAKER: usize = 1;

fn event_loop(mut ctx: LoopCtx) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut fds: Vec<PollFd> = Vec::new();
    let mut ids: Vec<u64> = Vec::new();
    loop {
        // Finished work first: apply completions, admit buffered frames
        // into the freed pipeline slots, flush, reap. The extraction pass
        // here is load-bearing: a burst past `max_pipeline` sits fully
        // drained into `Conn::read_buf`, where level-triggered poll will
        // never see it again — completions are the only edge that frees
        // slots, so completions must re-run the parser.
        for id in apply_completions(&ctx, &mut conns) {
            let close = match conns.get_mut(&id) {
                Some(conn) => {
                    extract_frames(&ctx, id, conn)
                        || conn.try_write(ctx.io_timeout).is_err()
                        || conn.finished()
                }
                None => false,
            };
            if close {
                close_conn(&ctx, &mut conns, id);
            }
        }
        if ctx.shutdown.load(Ordering::SeqCst) || signal::shutdown_requested() {
            shutdown_drain(&ctx, &mut conns);
            // a signal (or SHUTDOWN frame) must not strand a queued
            // snapshot: wait for the write-behind thread to drain
            ctx.engine.flush_store(Duration::from_secs(5));
            return; // drops jobs_tx: workers see disconnect and exit
        }

        // Rebuild the level-triggered poll set.
        fds.clear();
        ids.clear();
        fds.push(PollFd::new(poller::fd_of(&ctx.listener), Interest::read()));
        fds.push(PollFd::new(poller::fd_of(&ctx.wake_rx), Interest::read()));
        for (&id, conn) in conns.iter() {
            fds.push(PollFd::new(
                poller::fd_of(&conn.stream),
                Interest {
                    readable: conn.wants_read(ctx.max_pipeline),
                    writable: conn.wants_write(),
                },
            ));
            ids.push(id);
        }

        // Sleep until readiness, the waker, or the nearest deadline. With
        // no deadlines pending this blocks indefinitely: an idle server
        // makes zero wakeups.
        let timeout = nearest_deadline(&conns);
        if poller::wait(&mut fds, timeout).is_err() {
            // poll(2) failures other than EINTR (absorbed by the poller)
            // are exotic; back off so a persistent one cannot spin the loop
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }

        if fds[POLL_WAKER].ready.readable || fds[POLL_WAKER].ready.hangup {
            poller::drain(&mut ctx.wake_rx);
        }
        if fds[POLL_LISTENER].ready.readable {
            accept_ready(&ctx, &mut conns, &mut next_id);
        }

        let now = Instant::now();
        let mut dead: Vec<u64> = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            let ready = fds[i + 2].ready;
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            let mut close = false;
            if ready.readable || ready.hangup {
                close = service_input(&ctx, id, conn);
            }
            if !close && (ready.writable || conn.wants_write()) {
                close = conn.try_write(ctx.io_timeout).is_err();
            }
            if !close {
                if conn.read_deadline.is_some_and(|d| now >= d) {
                    // slow loris: started a frame, trickled it in too slowly
                    conn.fail_and_close(encode_frame(
                        op::ERR,
                        &err_payload(ErrorCode::Timeout, "slow peer: frame stalled", None),
                    ));
                    let _ = conn.try_write(ctx.io_timeout);
                }
                if conn.write_deadline.is_some_and(|d| now >= d) {
                    close = true; // peer stopped accepting our replies
                }
            }
            if close || conn.finished() {
                dead.push(id);
            }
        }
        for id in dead {
            close_conn(&ctx, &mut conns, id);
        }
    }
}

/// Apply queued completions; returns the ids of connections touched.
fn apply_completions(ctx: &LoopCtx, conns: &mut HashMap<u64, Conn>) -> Vec<u64> {
    let mut touched = Vec::new();
    for c in ctx.completions.drain() {
        match c {
            Completion::Done {
                conn_id,
                seq,
                outcome,
            } => {
                if let Some(conn) = conns.get_mut(&conn_id) {
                    conn.finish(seq, outcome);
                    touched.push(conn_id);
                }
            }
            Completion::ConnLost { conn_id } => close_conn(ctx, conns, conn_id),
        }
    }
    touched
}

/// The soonest pending read/write deadline across all connections, as a
/// poll timeout; `None` when nothing is pending.
fn nearest_deadline(conns: &HashMap<u64, Conn>) -> Option<Duration> {
    let now = Instant::now();
    let mut timeout: Option<Duration> = None;
    for conn in conns.values() {
        for d in [conn.read_deadline, conn.write_deadline]
            .into_iter()
            .flatten()
        {
            let left = d.saturating_duration_since(now);
            timeout = Some(timeout.map_or(left, |t| t.min(left)));
        }
    }
    timeout
}

fn close_conn(ctx: &LoopCtx, conns: &mut HashMap<u64, Conn>, id: u64) {
    if conns.remove(&id).is_some() {
        ctx.engine.note_conn_closed();
    }
}

/// Accept everything the backlog has (the listener is level-triggered, but
/// draining it now saves poll round-trips under an accept storm).
fn accept_ready(ctx: &LoopCtx, conns: &mut HashMap<u64, Conn>, next_id: &mut u64) {
    loop {
        let stream = match ctx.listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            // Per-connection accept errors (ECONNABORTED etc.): skip it and
            // keep draining; a persistent listener error surfaces as
            // WouldBlock-free repeats, which the next poll absorbs.
            Err(_) => return,
        };
        if ctx.fault.trip(FaultSite::Conn) == Some(FaultAction::Drop) {
            continue; // spurious connection drop before the first frame
        }
        if ctx.max_conns != 0 && conns.len() >= ctx.max_conns {
            // Best-effort rejection that must not block the loop: the
            // socket goes nonblocking *before* the write, so a peer that
            // connects with a full receive window costs one WouldBlock,
            // not a stalled event loop. The frame is small enough to fit a
            // fresh send buffer in practice; a peer that misses it still
            // sees the close.
            let mut stream = stream;
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let _ = write_frame(
                &mut stream,
                op::ERR,
                &err_payload(
                    ErrorCode::Busy,
                    "connection limit reached",
                    Some(ctx.engine.retry_after_ms()),
                ),
            );
            continue;
        }
        if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
            continue;
        }
        let id = *next_id;
        *next_id += 1;
        conns.insert(id, Conn::new(stream));
        ctx.engine.note_conn_open();
    }
}

/// Read what the socket has and feed every complete frame to the workers.
/// Returns `true` when the connection must close immediately.
fn service_input(ctx: &LoopCtx, id: u64, conn: &mut Conn) -> bool {
    let status = match conn.read_some() {
        Ok(s) => s,
        Err(_) => return true,
    };
    if extract_frames(ctx, id, conn) {
        return true;
    }
    if status == ReadStatus::Eof {
        conn.close_input();
    }
    conn.finished()
}

/// Peel complete frames off the read buffer into pipeline slots and
/// dispatch them to the workers. Called from `service_input` after a socket
/// read, and again after completions free in-flight slots — frames past
/// the pipeline cap (or arriving just before a peer EOF) live only in
/// `Conn::read_buf`, invisible to `poll`, so slot-freeing is the edge that
/// must resume parsing. Returns `true` when the connection must close
/// immediately.
fn extract_frames(ctx: &LoopCtx, id: u64, conn: &mut Conn) -> bool {
    let mut extracted = false;
    while conn.can_extract(ctx.max_pipeline) {
        match conn.next_frame() {
            FrameStep::Incomplete => break,
            FrameStep::BadLength(len) => {
                // cannot resync the stream after a bad length: reply, close
                let code = if len > MAX_FRAME_LEN {
                    ErrorCode::TooLarge
                } else {
                    ErrorCode::Malformed
                };
                conn.fail_and_close(encode_frame(
                    op::ERR,
                    &err_payload(code, &format!("bad frame length {len}"), None),
                ));
                break;
            }
            FrameStep::Frame {
                opcode,
                mut payload,
            } => {
                extracted = true;
                // The read fault site fires per parsed frame, as the old
                // per-read-attempt site effectively did: a drop severs the
                // connection mid-stream, a stall stalls the loop — which is
                // exactly what a stalled read did to the old per-conn thread,
                // writ service-wide. A bitflip corrupts one payload byte in
                // flight: the v4 checksum rejects the frame as `ERR Corrupt`;
                // a legacy connection carries the damage into the decoder.
                match ctx.fault.trip(FaultSite::Read) {
                    Some(FaultAction::Drop) => return true,
                    Some(FaultAction::BitFlip) if !payload.is_empty() => {
                        let at = payload.len() / 2;
                        payload[at] ^= 0x20;
                    }
                    _ => {}
                }
                // Version negotiation: HELLO is only legal as the very
                // first frame and is answered inline — routing it through
                // the worker pool would let a pipelined enveloped frame
                // race the mode switch. Any later HELLO falls through to
                // dispatch and gets ERR UnknownOpcode, exactly what a v3
                // server says.
                if opcode == op::HELLO && !conn.is_v4() && conn.requests_begun() == 0 {
                    let reply = match Cursor::new(&payload).u16() {
                        Ok(theirs) => {
                            let negotiated = theirs.min(PROTOCOL_VERSION);
                            if negotiated >= 4 {
                                conn.set_v4();
                            }
                            encode_frame(op::OK_HELLO, &Builder::new().u16(negotiated).build())
                        }
                        Err(msg) => {
                            encode_frame(op::ERR, &err_payload(ErrorCode::Malformed, &msg, None))
                        }
                    };
                    conn.enqueue(&reply);
                    continue;
                }
                // Envelope unwrap on a negotiated connection: verify the
                // checksum trailer before any byte reaches a decoder. A
                // mismatch rejects the *frame* — ERR Corrupt, counted —
                // and the connection keeps serving.
                let mut wire = None;
                if conn.is_v4() {
                    match unwrap_v4(opcode, &payload) {
                        Ok((rid, inner)) => {
                            let inner = inner.to_vec();
                            wire = Some(rid);
                            payload = inner;
                        }
                        Err(e) => {
                            let (code, msg) = match e {
                                EnvelopeError::Checksum => {
                                    ctx.engine.note_crc_reject();
                                    (ErrorCode::Corrupt, "frame failed payload checksum")
                                }
                                EnvelopeError::TooShort => {
                                    (ErrorCode::Malformed, "v4 frame shorter than its envelope")
                                }
                            };
                            let rid = v4_req_id_hint(&payload);
                            let body = wrap_v4(op::ERR, rid, &err_payload(code, msg, None));
                            conn.enqueue(&encode_frame(op::ERR, &body));
                            continue;
                        }
                    }
                }
                if conn.in_flight > 0 {
                    ctx.engine.note_frames_pipelined(1);
                }
                let seq = conn.begin_request();
                let job = Job {
                    conn_id: id,
                    seq,
                    opcode,
                    payload,
                    wire,
                    received: Instant::now(),
                };
                if ctx.jobs_tx.send(job).is_err() {
                    return true; // workers gone: shutting down
                }
            }
        }
    }
    conn.compact();
    conn.update_read_deadline(ctx.io_timeout, extracted);
    false
}

/// Post-shutdown grace: let in-flight requests resolve and their replies
/// flush (bounded), so `SHUTDOWN` clients actually see `OK_BYE`. The only
/// sleep here runs during teardown, never on the idle path.
fn shutdown_drain(ctx: &LoopCtx, conns: &mut HashMap<u64, Conn>) {
    let deadline = Instant::now() + Duration::from_millis(500);
    while !conns.is_empty() && Instant::now() < deadline {
        apply_completions(ctx, conns);
        let mut done: Vec<u64> = Vec::new();
        for (&id, conn) in conns.iter_mut() {
            if conn.try_write(ctx.io_timeout).is_err()
                || (!conn.wants_write() && conn.in_flight == 0)
            {
                done.push(id);
            }
        }
        for id in done {
            close_conn(ctx, conns, id);
        }
        if conns.is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let leftover: Vec<u64> = conns.keys().copied().collect();
    for id in leftover {
        close_conn(ctx, conns, id);
    }
}

// ---------------------------------------------------------------------------
// Worker pool + watchdog
// ---------------------------------------------------------------------------

fn spawn_worker(ctx: WorkerCtx, slot: usize) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("tsv-worker-{slot}"))
        .spawn(move || worker_loop(&ctx, slot))
        .expect("spawn solver worker thread")
}

fn worker_loop(ctx: &WorkerCtx, slot: usize) {
    // Fires on every exit path — panic included — so the watchdog never
    // has to poll `is_finished()`.
    let _notice = ExitNotice {
        tx: ctx.exits.clone(),
        slot,
    };
    loop {
        // Block with no timeout: an idle pool makes zero wakeups (the old
        // `recv_timeout(POLL)` burned CPU on every idle worker, forever).
        // Shutdown arrives as a channel disconnect when the event loop
        // drops its Sender. Poison recovery: a sibling that panicked while
        // holding the lock left the receiver itself intact.
        let job = {
            let guard = ctx.jobs.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        let Ok(job) = job else { return };
        ctx.current[slot].store(job.conn_id + 1, Ordering::Release);
        // The worker fault site panics *outside* dispatch isolation on
        // purpose: it simulates a worker-killing bug and must be
        // survivable only via the watchdog respawn path.
        ctx.fault.trip(FaultSite::Worker);
        let outcome = serve_job(ctx, &job);
        ctx.current[slot].store(0, Ordering::Release);
        ctx.completions.push(Completion::Done {
            conn_id: job.conn_id,
            seq: job.seq,
            outcome,
        });
    }
}

/// Dispatch one request and shape the reply, including the `write` fault
/// site (drop/torn/stall) that used to live at the socket write.
fn serve_job(ctx: &WorkerCtx, job: &Job) -> Outcome {
    // Dispatch isolation: any panic that slips past the engine's own
    // guards becomes ERR Internal on this connection, not a dead worker.
    let dispatched = panic::catch_unwind(AssertUnwindSafe(|| {
        dispatch(
            &ctx.engine,
            &ctx.shutdown,
            ctx.deadline_cap,
            job.opcode,
            &job.payload,
            job.received,
        )
    }))
    .unwrap_or_else(|_| Dispatch::Error {
        code: ErrorCode::Internal,
        msg: "request handler panicked".to_string(),
        retry_after_ms: None,
    });
    let (opcode, mut payload, close) = match dispatched {
        Dispatch::Reply(opcode, reply) => (opcode, reply, false),
        Dispatch::Error {
            code,
            msg,
            retry_after_ms,
        } => (op::ERR, err_payload(code, &msg, retry_after_ms), false),
        Dispatch::Bye => (op::OK_BYE, Vec::new(), true),
    };
    // Replies on a negotiated connection echo the request ID and carry the
    // checksum trailer; the envelope wraps *before* the write fault site so
    // an injected bitflip lands after the checksum — silent wire corruption
    // the receiver must catch.
    if let Some(rid) = job.wire {
        payload = wrap_v4(opcode, rid, &payload);
    }
    // The write fault site: a stall is served in place, a drop closes
    // without writing, a torn write queues a truncated prefix of the real
    // frame and then closes — exactly the partial-frame garbage a crashing
    // server would leave on the wire — and a bitflip flips one byte of the
    // encoded frame past the length prefix, leaving the connection open.
    match ctx.fault.trip(FaultSite::Write) {
        Some(FaultAction::Drop) => return Outcome::CloseSilent,
        Some(FaultAction::Torn) => {
            let frame = encode_frame(opcode, &payload);
            let cut = (frame.len() / 2).max(1);
            return Outcome::ReplyThenClose(frame[..cut].to_vec());
        }
        Some(FaultAction::BitFlip) => {
            let mut frame = encode_frame(opcode, &payload);
            // flip inside opcode+payload, never the length prefix (that
            // would desynchronize the stream, which is `torn`'s job)
            let at = 4 + (frame.len() - 4) / 2;
            frame[at] ^= 0x20;
            return if close {
                Outcome::ReplyThenClose(frame)
            } else {
                Outcome::Reply(frame)
            };
        }
        _ => {}
    }
    let frame = encode_frame(opcode, &payload);
    if close {
        Outcome::ReplyThenClose(frame)
    } else {
        Outcome::Reply(frame)
    }
}

/// Supervise the worker pool on exit notices: a worker that dies by panic
/// (a bug that escaped dispatch isolation, or the injected `worker.panic`
/// fault) is joined, its orphaned connection is closed, and a replacement
/// is spawned so the pool never silently shrinks. Clean exits (shutdown
/// disconnect) are not respawned; the watchdog leaves when the pool is
/// empty.
fn watchdog_loop(
    ctx: WorkerCtx,
    exits: Receiver<WorkerExit>,
    mut workers: Vec<Option<JoinHandle<()>>>,
) {
    let mut alive = workers.len();
    while alive > 0 {
        let Ok(exit) = exits.recv() else { break };
        if let Some(handle) = workers[exit.slot].take() {
            let _ = handle.join();
        }
        if exit.panicked && !ctx.shutdown.load(Ordering::SeqCst) {
            ctx.engine.note_worker_respawn();
            let held = ctx.current[exit.slot].swap(0, Ordering::AcqRel);
            if held != 0 {
                ctx.completions
                    .push(Completion::ConnLost { conn_id: held - 1 });
            }
            workers[exit.slot] = Some(spawn_worker(ctx.clone_for_respawn(), exit.slot));
        } else {
            alive -= 1;
        }
    }
    for handle in workers.iter_mut().filter_map(Option::take) {
        let _ = handle.join();
    }
}

// ---------------------------------------------------------------------------
// Frame building + dispatch
// ---------------------------------------------------------------------------

enum Dispatch {
    Reply(u8, Vec<u8>),
    Error {
        code: ErrorCode,
        msg: String,
        retry_after_ms: Option<u64>,
    },
    Bye,
}

/// A Dispatch error from a decode failure.
fn bad(code: ErrorCode, msg: impl Into<String>) -> Dispatch {
    Dispatch::Error {
        code,
        msg: msg.into(),
        retry_after_ms: None,
    }
}

/// A Dispatch error from an engine failure (carries the Busy retry hint).
fn engine_err(e: &EngineError) -> Dispatch {
    let retry_after_ms = match e {
        EngineError::Busy { retry_after_ms } => Some(*retry_after_ms),
        _ => None,
    };
    Dispatch::Error {
        code: ErrorCode::of_engine_error(e),
        msg: e.to_string(),
        retry_after_ms,
    }
}

/// The effective request deadline: the client's ask clamped to the server
/// cap; the cap alone when the client sent none. `None` only when both are
/// unset.
fn effective_deadline(client_ms: u64, cap: Duration, now: Instant) -> Option<Instant> {
    let client = (client_ms > 0).then(|| Duration::from_millis(client_ms));
    let cap = (!cap.is_zero()).then_some(cap);
    let budget = match (client, cap) {
        (Some(c), Some(k)) => Some(c.min(k)),
        (Some(c), None) => Some(c),
        (None, Some(k)) => Some(k),
        (None, None) => None,
    };
    budget.map(|b| now + b)
}

fn dispatch(
    engine: &Engine,
    shutdown: &AtomicBool,
    deadline_cap: Duration,
    opcode: u8,
    payload: &[u8],
    received: Instant,
) -> Dispatch {
    match opcode {
        op::LOAD => match parse_load(payload) {
            Ok(matrix) => match engine.load(&matrix) {
                Ok(out) => Dispatch::Reply(
                    op::OK_LOADED,
                    Builder::new()
                        .fingerprint(out.fingerprint)
                        .u64(out.n as u64)
                        .u64(out.factor_nnz as u64)
                        .u8(u8::from(out.already_cached))
                        .build(),
                ),
                Err(e) => engine_err(&e),
            },
            Err(msg) => bad(ErrorCode::Malformed, msg),
        },
        op::SOLVE => {
            let parsed = (|| {
                let mut c = Cursor::new(payload);
                let fp = c.fingerprint()?;
                let deadline_ms = c.u64()?;
                let n = c.usize()?;
                let rhs = c.f64_vec(n)?;
                // optional v3 flags byte; v2 frames omit it entirely
                let flags = if c.remaining() > 0 { c.u8()? } else { 0 };
                c.finish()?;
                if flags & !SOLVE_FLAG_CERTIFIED != 0 {
                    return Err(format!("unknown SOLVE flags 0x{flags:02x}"));
                }
                Ok::<_, String>((fp, deadline_ms, rhs, flags))
            })();
            match parsed {
                Ok((fp, deadline_ms, rhs, flags)) => {
                    let deadline = effective_deadline(deadline_ms, deadline_cap, received);
                    if flags & SOLVE_FLAG_CERTIFIED != 0 {
                        match engine.solve_certified(fp, rhs, deadline) {
                            Ok(out) => Dispatch::Reply(
                                op::OK_SOLVED,
                                Builder::new()
                                    .u64(out.x.len() as u64)
                                    .f64_slice(&out.x)
                                    .u32(out.iterations)
                                    .f64(out.backward_error)
                                    .u8(u8::from(out.certified))
                                    .build(),
                            ),
                            Err(e) => engine_err(&e),
                        }
                    } else {
                        match engine.solve_deadline(fp, rhs, deadline) {
                            Ok(x) => Dispatch::Reply(
                                op::OK_SOLVED,
                                Builder::new().u64(x.len() as u64).f64_slice(&x).build(),
                            ),
                            Err(e) => engine_err(&e),
                        }
                    }
                }
                Err(msg) => bad(ErrorCode::Malformed, msg),
            }
        }
        op::STATS => {
            let s = engine.stats();
            let pairs: [(&str, u64); 36] = [
                ("hits", s.cache.hits),
                ("misses", s.cache.misses),
                ("evictions", s.cache.evictions),
                ("entries", s.cache.entries as u64),
                ("resident_bytes", s.cache.resident_bytes as u64),
                // Stable cache-occupancy gauges for the router tier's
                // balance/placement decisions (aliases of the two above,
                // which predate the router and keep their legacy names).
                ("cache_entries", s.cache.entries as u64),
                ("cache_bytes", s.cache.resident_bytes as u64),
                ("budget_bytes", engine.options().budget_bytes as u64),
                ("solves_ok", s.solves_ok),
                ("solves_err", s.solves_err),
                ("batches", s.batches),
                ("batched_cols", s.batched_cols),
                ("max_batch", s.max_batch as u64),
                ("max_pending", engine.options().max_pending as u64),
                ("shed", s.shed),
                ("deadline_misses", s.deadline_misses),
                ("panics_caught", s.panics_caught),
                ("exec_fallbacks", s.exec_fallbacks),
                ("nonfinite_rejected", s.nonfinite_rejected),
                ("breakdowns", s.breakdowns),
                ("worker_respawns", s.worker_respawns),
                ("faults_injected", s.faults_injected),
                ("integrity_checks", s.integrity_checks),
                ("self_heals", s.self_heals),
                ("certified_solves", s.certified_solves),
                ("connections_open", s.connections_open),
                ("connections_total", s.connections_total),
                ("frames_pipelined", s.frames_pipelined),
                ("load_hits", s.load_hits),
                ("persist_writes", s.persist_writes),
                ("persist_recovered", s.persist_recovered),
                ("persist_dropped", s.persist_dropped),
                ("f32_solves", s.f32_solves),
                ("precision_fallbacks", s.precision_fallbacks),
                ("demoted_factors", s.demoted_factors),
                ("crc_rejects", s.crc_rejects),
            ];
            let mut b = Builder::new().u64(pairs.len() as u64);
            for (key, val) in pairs {
                b = b.u16(key.len() as u16).bytes(key.as_bytes()).u64(val);
            }
            Dispatch::Reply(op::OK_STATS, b.build())
        }
        op::EVICT => {
            let parsed = (|| {
                let mut c = Cursor::new(payload);
                let fp = c.fingerprint()?;
                c.finish()?;
                Ok::<_, String>(fp)
            })();
            match parsed {
                Ok(fp) => Dispatch::Reply(
                    op::OK_EVICTED,
                    Builder::new().u8(u8::from(engine.evict(fp))).build(),
                ),
                Err(msg) => bad(ErrorCode::Malformed, msg),
            }
        }
        op::SHUTDOWN => {
            shutdown.store(true, Ordering::SeqCst);
            Dispatch::Bye
        }
        other => bad(
            ErrorCode::UnknownOpcode,
            format!("unknown request opcode 0x{other:02x}"),
        ),
    }
}

fn parse_load(payload: &[u8]) -> Result<CscMatrix, String> {
    let mut c = Cursor::new(payload);
    let nrows = c.usize()?;
    let ncols = c.usize()?;
    let nnz = c.usize()?;
    // The column-pointer array has ncols + 1 entries; the add is on
    // attacker-controlled input, so it must be checked (a huge ncols used
    // to panic in debug and wrap — skewing the sanity bound — in release).
    let cols1 = ncols.checked_add(1).ok_or("ncols overflow")?;
    // cheap sanity bound before the big allocations: the arrays must fit
    // the frame we already read
    let need = cols1
        .checked_add(nnz.checked_mul(2).ok_or("nnz overflow")?)
        .and_then(|w| w.checked_mul(8))
        .ok_or("size overflow")?;
    if need > payload.len() {
        return Err(format!(
            "LOAD arrays need {need} bytes but payload has {}",
            payload.len()
        ));
    }
    let colptr = c.usize_vec(cols1)?;
    let rowidx = c.usize_vec(nnz)?;
    let values = c.f64_vec(nnz)?;
    c.finish()?;
    CscMatrix::from_parts(nrows, ncols, colptr, rowidx, values).map_err(|e| e.to_string())
}
