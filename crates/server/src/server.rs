//! TCP front end: acceptor, worker pool, request dispatch.
//!
//! One acceptor thread hands accepted connections to a fixed pool of worker
//! threads over an `mpsc` channel; each worker owns one connection at a
//! time and services frames until the peer hangs up or the server shuts
//! down. A worker blocked inside the micro-batcher is exactly what lets
//! concurrent connections share a blocked solve, so `workers` should be at
//! least the target batch size.
//!
//! Robustness contract (exercised in `tests/service.rs`):
//!
//! * a garbage or oversized length prefix gets an `ERR` reply and a close
//!   (the stream cannot be re-synchronized);
//! * a decodable frame with a bad payload (truncated arrays, wrong RHS
//!   length, unknown fingerprint, unknown opcode) gets a structured `ERR`
//!   reply and the connection stays open;
//! * `SHUTDOWN` (or [`RunningServer::shutdown`]) stops the acceptor,
//!   drains the workers, and joins every thread.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use trisolv_matrix::CscMatrix;

use crate::engine::{Engine, EngineOptions};
use crate::protocol::{op, write_frame, Builder, Cursor, ErrorCode, MAX_FRAME_LEN};

/// Front-end configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerOptions {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads (each services one connection at a time). Should be
    /// ≥ the batching `max_batch` for full-width batches to form.
    pub workers: usize,
    /// Engine (cache + batcher + executor) configuration.
    pub engine: EngineOptions,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 32,
            engine: EngineOptions::default(),
        }
    }
}

/// Handle to a spawned server; dropping it shuts the server down.
pub struct RunningServer {
    local_addr: SocketAddr,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

/// The service entry point.
pub struct Server;

impl Server {
    /// Bind, spawn the acceptor and worker pool, and return immediately.
    pub fn spawn(opts: ServerOptions) -> io::Result<RunningServer> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let engine = Arc::new(Engine::new(opts.engine));
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let mut threads = Vec::with_capacity(opts.workers + 1);
        {
            let shutdown = Arc::clone(&shutdown);
            threads.push(std::thread::spawn(move || {
                accept_loop(listener, tx, &shutdown);
            }));
        }
        for _ in 0..opts.workers.max(1) {
            let rx = Arc::clone(&rx);
            let engine = Arc::clone(&engine);
            let shutdown = Arc::clone(&shutdown);
            threads.push(std::thread::spawn(move || {
                worker_loop(&rx, &engine, &shutdown);
            }));
        }
        Ok(RunningServer {
            local_addr,
            engine,
            shutdown,
            threads,
        })
    }
}

impl RunningServer {
    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared engine (for in-process inspection and benchmarks).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Signal shutdown without waiting.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Signal shutdown and join every thread.
    pub fn join(mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Block until the server shuts down — via a `SHUTDOWN` request or a
    /// [`RunningServer::shutdown`] call from another thread — joining every
    /// thread. Unlike [`RunningServer::join`], this does not itself request
    /// shutdown; it is what `trisolv serve` parks on.
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// How often blocked accept/recv/read calls re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(20);

fn accept_loop(listener: TcpListener, tx: mpsc::Sender<TcpStream>, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
    // dropping `tx` wakes workers blocked on recv
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, engine: &Engine, shutdown: &AtomicBool) {
    loop {
        let next = {
            let guard = rx.lock().unwrap();
            guard.recv_timeout(POLL)
        };
        match next {
            Ok(stream) => {
                let _ = handle_conn(stream, engine, shutdown);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

enum ReadOutcome {
    /// Buffer filled.
    Full,
    /// Clean EOF before the first byte.
    Eof,
    /// Server is shutting down.
    Shutdown,
}

/// `read_exact` with shutdown polling: retries `WouldBlock`/`TimedOut`
/// (the socket has a read timeout) while watching the shutdown flag.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> io::Result<ReadOutcome> {
    let mut got = 0;
    while got < buf.len() {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(ReadOutcome::Shutdown);
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(ReadOutcome::Eof);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

fn send_err(stream: &mut TcpStream, code: ErrorCode, msg: &str) -> io::Result<()> {
    let bytes = msg.as_bytes();
    let payload = Builder::new()
        .u16(code as u16)
        .u32(bytes.len() as u32)
        .bytes(bytes)
        .build();
    write_frame(stream, op::ERR, &payload)
}

fn handle_conn(mut stream: TcpStream, engine: &Engine, shutdown: &AtomicBool) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL))?;
    loop {
        // length prefix
        let mut len4 = [0u8; 4];
        match read_full(&mut stream, &mut len4, shutdown)? {
            ReadOutcome::Full => {}
            ReadOutcome::Eof | ReadOutcome::Shutdown => return Ok(()),
        }
        let len = u32::from_le_bytes(len4);
        if len == 0 || len > MAX_FRAME_LEN {
            // cannot resync the stream after a bad length: reply and close
            let code = if len > MAX_FRAME_LEN {
                ErrorCode::TooLarge
            } else {
                ErrorCode::Malformed
            };
            let _ = send_err(&mut stream, code, &format!("bad frame length {len}"));
            return Ok(());
        }
        let mut body = vec![0u8; len as usize];
        match read_full(&mut stream, &mut body, shutdown)? {
            ReadOutcome::Full => {}
            ReadOutcome::Eof => return Ok(()),
            ReadOutcome::Shutdown => return Ok(()),
        }
        let opcode = body[0];
        let payload = &body[1..];
        match dispatch(engine, shutdown, opcode, payload) {
            Dispatch::Reply(opcode, reply) => write_frame(&mut stream, opcode, &reply)?,
            Dispatch::Error(code, msg) => send_err(&mut stream, code, &msg)?,
            Dispatch::Bye => {
                write_frame(&mut stream, op::OK_BYE, &[])?;
                return Ok(());
            }
        }
    }
}

enum Dispatch {
    Reply(u8, Vec<u8>),
    Error(ErrorCode, String),
    Bye,
}

fn dispatch(engine: &Engine, shutdown: &AtomicBool, opcode: u8, payload: &[u8]) -> Dispatch {
    match opcode {
        op::LOAD => match parse_load(payload) {
            Ok(matrix) => match engine.load(&matrix) {
                Ok(out) => Dispatch::Reply(
                    op::OK_LOADED,
                    Builder::new()
                        .fingerprint(out.fingerprint)
                        .u64(out.n as u64)
                        .u64(out.factor_nnz as u64)
                        .u8(u8::from(out.already_cached))
                        .build(),
                ),
                Err(e) => Dispatch::Error(ErrorCode::of_engine_error(&e), e.to_string()),
            },
            Err(msg) => Dispatch::Error(ErrorCode::Malformed, msg),
        },
        op::SOLVE => {
            let parsed = (|| {
                let mut c = Cursor::new(payload);
                let fp = c.fingerprint()?;
                let n = c.usize()?;
                let rhs = c.f64_vec(n)?;
                c.finish()?;
                Ok::<_, String>((fp, rhs))
            })();
            match parsed {
                Ok((fp, rhs)) => match engine.solve(fp, rhs) {
                    Ok(x) => Dispatch::Reply(
                        op::OK_SOLVED,
                        Builder::new().u64(x.len() as u64).f64_slice(&x).build(),
                    ),
                    Err(e) => Dispatch::Error(ErrorCode::of_engine_error(&e), e.to_string()),
                },
                Err(msg) => Dispatch::Error(ErrorCode::Malformed, msg),
            }
        }
        op::STATS => {
            let s = engine.stats();
            let pairs: [(&str, u64); 11] = [
                ("hits", s.cache.hits),
                ("misses", s.cache.misses),
                ("evictions", s.cache.evictions),
                ("entries", s.cache.entries as u64),
                ("resident_bytes", s.cache.resident_bytes as u64),
                ("budget_bytes", engine.options().budget_bytes as u64),
                ("solves_ok", s.solves_ok),
                ("solves_err", s.solves_err),
                ("batches", s.batches),
                ("batched_cols", s.batched_cols),
                ("max_batch", s.max_batch as u64),
            ];
            let mut b = Builder::new().u64(pairs.len() as u64);
            for (key, val) in pairs {
                b = b.u16(key.len() as u16).bytes(key.as_bytes()).u64(val);
            }
            Dispatch::Reply(op::OK_STATS, b.build())
        }
        op::EVICT => {
            let parsed = (|| {
                let mut c = Cursor::new(payload);
                let fp = c.fingerprint()?;
                c.finish()?;
                Ok::<_, String>(fp)
            })();
            match parsed {
                Ok(fp) => Dispatch::Reply(
                    op::OK_EVICTED,
                    Builder::new().u8(u8::from(engine.evict(fp))).build(),
                ),
                Err(msg) => Dispatch::Error(ErrorCode::Malformed, msg),
            }
        }
        op::SHUTDOWN => {
            shutdown.store(true, Ordering::SeqCst);
            Dispatch::Bye
        }
        other => Dispatch::Error(
            ErrorCode::UnknownOpcode,
            format!("unknown request opcode 0x{other:02x}"),
        ),
    }
}

fn parse_load(payload: &[u8]) -> Result<CscMatrix, String> {
    let mut c = Cursor::new(payload);
    let nrows = c.usize()?;
    let ncols = c.usize()?;
    let nnz = c.usize()?;
    // cheap sanity bound before the big allocations: the arrays must fit
    // the frame we already read
    let need = (ncols + 1)
        .checked_add(nnz.checked_mul(2).ok_or("nnz overflow")?)
        .and_then(|w| w.checked_mul(8))
        .ok_or("size overflow")?;
    if need > payload.len() {
        return Err(format!(
            "LOAD arrays need {need} bytes but payload has {}",
            payload.len()
        ));
    }
    let colptr = c.usize_vec(ncols + 1)?;
    let rowidx = c.usize_vec(nnz)?;
    let values = c.f64_vec(nnz)?;
    c.finish()?;
    CscMatrix::from_parts(nrows, ncols, colptr, rowidx, values).map_err(|e| e.to_string())
}
