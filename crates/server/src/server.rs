//! TCP front end: acceptor, worker pool, watchdog, request dispatch.
//!
//! One acceptor thread hands accepted connections to a fixed pool of worker
//! threads over an `mpsc` channel; each worker owns one connection at a
//! time and services frames until the peer hangs up or the server shuts
//! down. A worker blocked inside the micro-batcher is exactly what lets
//! concurrent connections share a blocked solve, so `workers` should be at
//! least the target batch size.
//!
//! Robustness contract (exercised in `tests/service.rs` and
//! `tests/chaos.rs`):
//!
//! * a garbage or oversized length prefix gets an `ERR` reply and a close
//!   (the stream cannot be re-synchronized);
//! * a decodable frame with a bad payload (truncated arrays, wrong RHS
//!   length, unknown fingerprint, unknown opcode) gets a structured `ERR`
//!   reply and the connection stays open;
//! * a peer that starts a frame but trickles it in slower than
//!   `io_timeout` (slow loris) gets `ERR Timeout` and a close — it cannot
//!   pin a worker; idle connections *between* frames may wait forever;
//! * a panic anywhere in request handling is caught at the dispatch
//!   boundary and answered with `ERR Internal`; a panic that escapes a
//!   worker thread entirely (e.g. the injected `worker.panic` fault) is
//!   noticed by the watchdog thread, which respawns the worker and counts
//!   it in `STATS worker_respawns`;
//! * `SHUTDOWN` (or [`RunningServer::shutdown`]) stops the acceptor,
//!   drains the workers, and joins every thread.
//!
//! Every fault-injection site ([`FaultSite`]) on the request path lives in
//! this file except `solve`/`factor`, which the engine trips.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use trisolv_matrix::CscMatrix;

use crate::engine::{Engine, EngineError, EngineOptions};
use crate::fault::{FaultAction, FaultPlan, FaultSite};
use crate::protocol::{
    op, write_frame, Builder, Cursor, ErrorCode, MAX_FRAME_LEN, SOLVE_FLAG_CERTIFIED,
};

/// Front-end configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads (each services one connection at a time). Should be
    /// ≥ the batching `max_batch` for full-width batches to form.
    pub workers: usize,
    /// Engine (cache + batcher + executor) configuration.
    pub engine: EngineOptions,
    /// Fault-injection plan (empty in production; see [`FaultPlan`]).
    pub fault: FaultPlan,
    /// Slow-peer guard: once a frame's first byte arrives, the rest of the
    /// frame must arrive within this budget, and replies must be accepted
    /// this fast. Zero disables the guard.
    pub io_timeout: Duration,
    /// Hard cap on client-requested SOLVE deadlines; also the default
    /// deadline when a client sends none. Zero means uncapped.
    pub deadline_cap: Duration,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 32,
            engine: EngineOptions::default(),
            fault: FaultPlan::none(),
            io_timeout: Duration::from_secs(10),
            deadline_cap: Duration::from_secs(30),
        }
    }
}

/// Handle to a spawned server; dropping it shuts the server down.
pub struct RunningServer {
    local_addr: SocketAddr,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

/// Everything a worker needs to service connections.
struct WorkerCtx {
    rx: Arc<Mutex<Receiver<TcpStream>>>,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
    fault: FaultPlan,
    io_timeout: Duration,
    deadline_cap: Duration,
}

impl WorkerCtx {
    fn clone_for_respawn(&self) -> WorkerCtx {
        WorkerCtx {
            rx: Arc::clone(&self.rx),
            engine: Arc::clone(&self.engine),
            shutdown: Arc::clone(&self.shutdown),
            fault: self.fault.clone(),
            io_timeout: self.io_timeout,
            deadline_cap: self.deadline_cap,
        }
    }
}

/// The service entry point.
pub struct Server;

impl Server {
    /// Bind, spawn the acceptor, worker pool, and watchdog, and return
    /// immediately.
    pub fn spawn(opts: ServerOptions) -> io::Result<RunningServer> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let engine = Arc::new(Engine::with_fault(opts.engine, opts.fault.clone()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let mut threads = Vec::with_capacity(2);
        {
            let shutdown = Arc::clone(&shutdown);
            threads.push(std::thread::spawn(move || {
                accept_loop(listener, tx, &shutdown);
            }));
        }
        let ctx = WorkerCtx {
            rx,
            engine: Arc::clone(&engine),
            shutdown: Arc::clone(&shutdown),
            fault: opts.fault,
            io_timeout: opts.io_timeout,
            deadline_cap: opts.deadline_cap,
        };
        let workers: Vec<Option<JoinHandle<()>>> = (0..opts.workers.max(1))
            .map(|_| Some(spawn_worker(ctx.clone_for_respawn())))
            .collect();
        threads.push(std::thread::spawn(move || {
            watchdog_loop(ctx, workers);
        }));
        Ok(RunningServer {
            local_addr,
            engine,
            shutdown,
            threads,
        })
    }
}

impl RunningServer {
    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared engine (for in-process inspection and benchmarks).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Signal shutdown without waiting.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Signal shutdown and join every thread.
    pub fn join(mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Block until the server shuts down — via a `SHUTDOWN` request or a
    /// [`RunningServer::shutdown`] call from another thread — joining every
    /// thread. Unlike [`RunningServer::join`], this does not itself request
    /// shutdown; it is what `trisolv serve` parks on.
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// How often blocked accept/recv/read calls re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(20);

fn accept_loop(listener: TcpListener, tx: mpsc::Sender<TcpStream>, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
    // dropping `tx` wakes workers blocked on recv
}

fn spawn_worker(ctx: WorkerCtx) -> JoinHandle<()> {
    std::thread::spawn(move || worker_loop(&ctx))
}

/// Supervise the worker pool: a worker that exits by panic (a bug that
/// escaped dispatch isolation, or the injected `worker.panic` fault) is
/// joined and replaced so the pool never silently shrinks. Clean exits
/// (shutdown, channel disconnect) are not respawned.
fn watchdog_loop(ctx: WorkerCtx, mut workers: Vec<Option<JoinHandle<()>>>) {
    while !ctx.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(POLL);
        for slot in workers.iter_mut() {
            let finished = slot.as_ref().is_some_and(|h| h.is_finished());
            if !finished {
                continue;
            }
            let handle = slot.take().expect("checked is_some above");
            if handle.join().is_err() && !ctx.shutdown.load(Ordering::SeqCst) {
                ctx.engine.note_worker_respawn();
                *slot = Some(spawn_worker(ctx.clone_for_respawn()));
            }
        }
    }
    for slot in workers.iter_mut().filter_map(Option::take) {
        let _ = slot.join();
    }
}

fn worker_loop(ctx: &WorkerCtx) {
    loop {
        let next = {
            // Recover from poison: a sibling worker that panicked while
            // holding this lock (satellite fix — previously `.unwrap()`
            // here turned one panic into a cascade of dead workers) left
            // the receiver itself intact, so inheriting the guard is safe.
            let guard = ctx.rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv_timeout(POLL)
        };
        match next {
            Ok(stream) => {
                // The worker fault site panics *outside* dispatch isolation
                // on purpose: it simulates a worker-killing bug and must be
                // survivable only via the watchdog respawn path.
                ctx.fault.trip(FaultSite::Worker);
                let _ = handle_conn(stream, ctx);
            }
            Err(RecvTimeoutError::Timeout) => {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

enum ReadOutcome {
    /// Buffer filled.
    Full,
    /// Clean EOF before the first byte.
    Eof,
    /// Server is shutting down.
    Shutdown,
    /// `deadline` expired before the buffer filled (slow peer).
    SlowPeer,
}

/// `read_exact` with shutdown polling: retries `WouldBlock`/`TimedOut`
/// (the socket has a short read timeout) while watching the shutdown flag
/// and, when `deadline` is set, the slow-peer budget.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    deadline: Option<Instant>,
) -> io::Result<ReadOutcome> {
    let mut got = 0;
    while got < buf.len() {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(ReadOutcome::Shutdown);
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Ok(ReadOutcome::SlowPeer);
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(ReadOutcome::Eof);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Full)
}

/// Encode an ERR frame payload (with the Busy retry hint when present).
fn err_payload(code: ErrorCode, msg: &str, retry_after_ms: Option<u64>) -> Vec<u8> {
    let bytes = msg.as_bytes();
    let mut b = Builder::new()
        .u16(code as u16)
        .u32(bytes.len() as u32)
        .bytes(bytes);
    if let Some(ms) = retry_after_ms {
        b = b.u64(ms);
    }
    b.build()
}

fn send_err(stream: &mut TcpStream, code: ErrorCode, msg: &str) -> io::Result<()> {
    write_frame(stream, op::ERR, &err_payload(code, msg, None))
}

/// Send a reply frame through the `write` fault site: a stall is served
/// in-place, a drop closes without writing, and a torn write sends a
/// truncated prefix of the real frame and then closes — exactly the
/// partial-frame garbage a crashing server would leave on the wire.
/// Returns `false` when the connection must close.
fn send_reply(
    stream: &mut TcpStream,
    fault: &FaultPlan,
    opcode: u8,
    payload: &[u8],
) -> io::Result<bool> {
    match fault.trip(FaultSite::Write) {
        Some(FaultAction::Drop) => return Ok(false),
        Some(FaultAction::Torn) => {
            let mut frame = Vec::with_capacity(5 + payload.len());
            write_frame(&mut frame, opcode, payload)?;
            let cut = (frame.len() / 2).max(1);
            stream.write_all(&frame[..cut])?;
            stream.flush()?;
            return Ok(false);
        }
        _ => {}
    }
    write_frame(stream, opcode, payload)?;
    Ok(true)
}

fn handle_conn(mut stream: TcpStream, ctx: &WorkerCtx) -> io::Result<()> {
    if ctx.fault.trip(FaultSite::Conn) == Some(FaultAction::Drop) {
        return Ok(()); // spurious connection drop before the first frame
    }
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL))?;
    if !ctx.io_timeout.is_zero() {
        stream.set_write_timeout(Some(ctx.io_timeout))?;
    }
    loop {
        if ctx.fault.trip(FaultSite::Read) == Some(FaultAction::Drop) {
            return Ok(());
        }
        // First byte of the length prefix: an idle connection may wait
        // between frames forever (only shutdown interrupts it)...
        let mut len4 = [0u8; 4];
        match read_full(&mut stream, &mut len4[..1], &ctx.shutdown, None)? {
            ReadOutcome::Full => {}
            _ => return Ok(()),
        }
        // ...but once a frame starts, the slow-peer clock is ticking: the
        // rest of the header and the whole body must land within
        // `io_timeout` or the peer is cut loose with ERR Timeout.
        let slow_peer = (!ctx.io_timeout.is_zero()).then(|| Instant::now() + ctx.io_timeout);
        match read_full(&mut stream, &mut len4[1..], &ctx.shutdown, slow_peer)? {
            ReadOutcome::Full => {}
            ReadOutcome::SlowPeer => {
                let _ = send_err(&mut stream, ErrorCode::Timeout, "slow peer: frame stalled");
                return Ok(());
            }
            _ => return Ok(()),
        }
        let len = u32::from_le_bytes(len4);
        if len == 0 || len > MAX_FRAME_LEN {
            // cannot resync the stream after a bad length: reply and close
            let code = if len > MAX_FRAME_LEN {
                ErrorCode::TooLarge
            } else {
                ErrorCode::Malformed
            };
            let _ = send_err(&mut stream, code, &format!("bad frame length {len}"));
            return Ok(());
        }
        let mut body = vec![0u8; len as usize];
        match read_full(&mut stream, &mut body, &ctx.shutdown, slow_peer)? {
            ReadOutcome::Full => {}
            ReadOutcome::SlowPeer => {
                let _ = send_err(&mut stream, ErrorCode::Timeout, "slow peer: frame stalled");
                return Ok(());
            }
            _ => return Ok(()),
        }
        let opcode = body[0];
        let payload = &body[1..];
        // Dispatch isolation: any panic that slips past the engine's own
        // guards becomes ERR Internal on this connection, not a dead worker.
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| dispatch(ctx, opcode, payload)))
            .unwrap_or_else(|_| Dispatch::Error {
                code: ErrorCode::Internal,
                msg: "request handler panicked".to_string(),
                retry_after_ms: None,
            });
        match outcome {
            Dispatch::Reply(opcode, reply) => {
                if !send_reply(&mut stream, &ctx.fault, opcode, &reply)? {
                    return Ok(());
                }
            }
            Dispatch::Error {
                code,
                msg,
                retry_after_ms,
            } => {
                let payload = err_payload(code, &msg, retry_after_ms);
                if !send_reply(&mut stream, &ctx.fault, op::ERR, &payload)? {
                    return Ok(());
                }
            }
            Dispatch::Bye => {
                let _ = send_reply(&mut stream, &ctx.fault, op::OK_BYE, &[])?;
                return Ok(());
            }
        }
    }
}

enum Dispatch {
    Reply(u8, Vec<u8>),
    Error {
        code: ErrorCode,
        msg: String,
        retry_after_ms: Option<u64>,
    },
    Bye,
}

/// A Dispatch error from a decode failure.
fn bad(code: ErrorCode, msg: impl Into<String>) -> Dispatch {
    Dispatch::Error {
        code,
        msg: msg.into(),
        retry_after_ms: None,
    }
}

/// A Dispatch error from an engine failure (carries the Busy retry hint).
fn engine_err(e: &EngineError) -> Dispatch {
    let retry_after_ms = match e {
        EngineError::Busy { retry_after_ms } => Some(*retry_after_ms),
        _ => None,
    };
    Dispatch::Error {
        code: ErrorCode::of_engine_error(e),
        msg: e.to_string(),
        retry_after_ms,
    }
}

/// The effective request deadline: the client's ask clamped to the server
/// cap; the cap alone when the client sent none. `None` only when both are
/// unset.
fn effective_deadline(client_ms: u64, cap: Duration, now: Instant) -> Option<Instant> {
    let client = (client_ms > 0).then(|| Duration::from_millis(client_ms));
    let cap = (!cap.is_zero()).then_some(cap);
    let budget = match (client, cap) {
        (Some(c), Some(k)) => Some(c.min(k)),
        (Some(c), None) => Some(c),
        (None, Some(k)) => Some(k),
        (None, None) => None,
    };
    budget.map(|b| now + b)
}

fn dispatch(ctx: &WorkerCtx, opcode: u8, payload: &[u8]) -> Dispatch {
    let engine = &ctx.engine;
    match opcode {
        op::LOAD => match parse_load(payload) {
            Ok(matrix) => match engine.load(&matrix) {
                Ok(out) => Dispatch::Reply(
                    op::OK_LOADED,
                    Builder::new()
                        .fingerprint(out.fingerprint)
                        .u64(out.n as u64)
                        .u64(out.factor_nnz as u64)
                        .u8(u8::from(out.already_cached))
                        .build(),
                ),
                Err(e) => engine_err(&e),
            },
            Err(msg) => bad(ErrorCode::Malformed, msg),
        },
        op::SOLVE => {
            let parsed = (|| {
                let mut c = Cursor::new(payload);
                let fp = c.fingerprint()?;
                let deadline_ms = c.u64()?;
                let n = c.usize()?;
                let rhs = c.f64_vec(n)?;
                // optional v3 flags byte; v2 frames omit it entirely
                let flags = if c.remaining() > 0 { c.u8()? } else { 0 };
                c.finish()?;
                if flags & !SOLVE_FLAG_CERTIFIED != 0 {
                    return Err(format!("unknown SOLVE flags 0x{flags:02x}"));
                }
                Ok::<_, String>((fp, deadline_ms, rhs, flags))
            })();
            match parsed {
                Ok((fp, deadline_ms, rhs, flags)) => {
                    let deadline =
                        effective_deadline(deadline_ms, ctx.deadline_cap, Instant::now());
                    if flags & SOLVE_FLAG_CERTIFIED != 0 {
                        match engine.solve_certified(fp, rhs, deadline) {
                            Ok(out) => Dispatch::Reply(
                                op::OK_SOLVED,
                                Builder::new()
                                    .u64(out.x.len() as u64)
                                    .f64_slice(&out.x)
                                    .u32(out.iterations)
                                    .f64(out.backward_error)
                                    .u8(u8::from(out.certified))
                                    .build(),
                            ),
                            Err(e) => engine_err(&e),
                        }
                    } else {
                        match engine.solve_deadline(fp, rhs, deadline) {
                            Ok(x) => Dispatch::Reply(
                                op::OK_SOLVED,
                                Builder::new().u64(x.len() as u64).f64_slice(&x).build(),
                            ),
                            Err(e) => engine_err(&e),
                        }
                    }
                }
                Err(msg) => bad(ErrorCode::Malformed, msg),
            }
        }
        op::STATS => {
            let s = engine.stats();
            let pairs: [(&str, u64); 23] = [
                ("hits", s.cache.hits),
                ("misses", s.cache.misses),
                ("evictions", s.cache.evictions),
                ("entries", s.cache.entries as u64),
                ("resident_bytes", s.cache.resident_bytes as u64),
                ("budget_bytes", engine.options().budget_bytes as u64),
                ("solves_ok", s.solves_ok),
                ("solves_err", s.solves_err),
                ("batches", s.batches),
                ("batched_cols", s.batched_cols),
                ("max_batch", s.max_batch as u64),
                ("max_pending", engine.options().max_pending as u64),
                ("shed", s.shed),
                ("deadline_misses", s.deadline_misses),
                ("panics_caught", s.panics_caught),
                ("exec_fallbacks", s.exec_fallbacks),
                ("nonfinite_rejected", s.nonfinite_rejected),
                ("breakdowns", s.breakdowns),
                ("worker_respawns", s.worker_respawns),
                ("faults_injected", s.faults_injected),
                ("integrity_checks", s.integrity_checks),
                ("self_heals", s.self_heals),
                ("certified_solves", s.certified_solves),
            ];
            let mut b = Builder::new().u64(pairs.len() as u64);
            for (key, val) in pairs {
                b = b.u16(key.len() as u16).bytes(key.as_bytes()).u64(val);
            }
            Dispatch::Reply(op::OK_STATS, b.build())
        }
        op::EVICT => {
            let parsed = (|| {
                let mut c = Cursor::new(payload);
                let fp = c.fingerprint()?;
                c.finish()?;
                Ok::<_, String>(fp)
            })();
            match parsed {
                Ok(fp) => Dispatch::Reply(
                    op::OK_EVICTED,
                    Builder::new().u8(u8::from(engine.evict(fp))).build(),
                ),
                Err(msg) => bad(ErrorCode::Malformed, msg),
            }
        }
        op::SHUTDOWN => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            Dispatch::Bye
        }
        other => bad(
            ErrorCode::UnknownOpcode,
            format!("unknown request opcode 0x{other:02x}"),
        ),
    }
}

fn parse_load(payload: &[u8]) -> Result<CscMatrix, String> {
    let mut c = Cursor::new(payload);
    let nrows = c.usize()?;
    let ncols = c.usize()?;
    let nnz = c.usize()?;
    // cheap sanity bound before the big allocations: the arrays must fit
    // the frame we already read
    let need = (ncols + 1)
        .checked_add(nnz.checked_mul(2).ok_or("nnz overflow")?)
        .and_then(|w| w.checked_mul(8))
        .ok_or("size overflow")?;
    if need > payload.len() {
        return Err(format!(
            "LOAD arrays need {need} bytes but payload has {}",
            payload.len()
        ));
    }
    let colptr = c.usize_vec(ncols + 1)?;
    let rowidx = c.usize_vec(nnz)?;
    let values = c.f64_vec(nnz)?;
    c.finish()?;
    CscMatrix::from_parts(nrows, ncols, colptr, rowidx, values).map_err(|e| e.to_string())
}
