//! Micro-batching of concurrent single-RHS solves into blocked solves.
//!
//! The paper's central measurement is that a triangular solve's cost is
//! dominated by per-solve overhead (pipeline fill on the T3D; dispatch and
//! factor-streaming here), so solving `k` right-hand sides in one blocked
//! `n×k` call costs far less than `k` single solves. A [`BatchLane`] turns a
//! stream of independent single-RHS requests into exactly those blocked
//! calls using a leader/follower protocol:
//!
//! 1. every request boards the currently-open batch under the lane mutex;
//! 2. the first to board becomes the *leader*: it waits until the batch is
//!    full (`max_batch`) or the batching `window` elapses, seals the batch,
//!    executes the blocked solve *outside* the lock, and publishes the
//!    per-column results;
//! 3. later arrivals (*followers*) wake the leader when they fill the batch
//!    and then sleep until their generation's results appear, claiming their
//!    own column.
//!
//! With `max_batch == 1` the leader seals immediately and the lane degrades
//! to a plain mutex-serialized solve, which is the unbatched baseline the
//! benchmark compares against.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Policy knobs for a [`BatchLane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOptions {
    /// Seal a batch as soon as it holds this many columns.
    pub max_batch: usize,
    /// Seal a non-full batch this long after its first column boards.
    pub window: Duration,
    /// How long a follower waits for its results before giving up; bounds
    /// the damage of a stuck leader (should comfortably exceed one blocked
    /// solve plus one window).
    pub wait_timeout: Duration,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            max_batch: 8,
            window: Duration::from_millis(1),
            wait_timeout: Duration::from_secs(30),
        }
    }
}

/// Why a lane request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaneError<E> {
    /// The blocked execution itself failed; every rider of the batch
    /// receives a clone of the error.
    Exec(E),
    /// The follower's wait deadline expired before results appeared.
    Timeout,
}

struct Published<E> {
    /// One slot per batch column; each rider takes its own.
    cols: Vec<Option<Vec<f64>>>,
    error: Option<E>,
    /// Riders that have not yet claimed their slot.
    remaining: usize,
}

struct LaneState<E> {
    /// Columns of the batch currently boarding.
    boarding: Vec<Vec<f64>>,
    /// Generation id of the boarding batch (bumped when sealed).
    generation: u64,
    /// Batches sealed at board time (full before the leader woke),
    /// awaiting execution by their generation's leader.
    sealed: HashMap<u64, Vec<Vec<f64>>>,
    /// Sealed-and-executed batches awaiting claims, by generation.
    results: HashMap<u64, Published<E>>,
    /// Claims abandoned by timed-out followers, by generation; subtracted
    /// when that generation publishes so its entry still drains.
    abandoned: HashMap<u64, usize>,
    /// Total batches sealed (stats).
    batches: u64,
    /// Total columns solved through sealed batches (stats).
    cols: u64,
    /// Largest batch sealed so far (stats).
    max_seen: usize,
}

/// A micro-batching rendezvous for one cached factor.
pub struct BatchLane<E> {
    opts: BatchOptions,
    state: Mutex<LaneState<E>>,
    cv: Condvar,
}

impl<E: Clone> BatchLane<E> {
    /// An empty lane with the given policy.
    pub fn new(opts: BatchOptions) -> BatchLane<E> {
        assert!(opts.max_batch >= 1, "max_batch must be at least 1");
        BatchLane {
            opts,
            state: Mutex::new(LaneState {
                boarding: Vec::new(),
                generation: 0,
                sealed: HashMap::new(),
                results: HashMap::new(),
                abandoned: HashMap::new(),
                batches: 0,
                cols: 0,
                max_seen: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// `(batches_sealed, columns_solved, largest_batch)` so far.
    pub fn stats(&self) -> (u64, u64, usize) {
        let s = self.state.lock().unwrap();
        (s.batches, s.cols, s.max_seen)
    }

    /// Board `rhs` onto the open batch, riding (or leading) the blocked
    /// solve, and return this request's solution column. `exec` maps the
    /// sealed batch columns to result columns (same order, same count) and
    /// runs on exactly one thread per batch, outside the lane lock.
    pub fn solve<F>(&self, rhs: Vec<f64>, exec: F) -> Result<Vec<f64>, LaneError<E>>
    where
        F: FnOnce(Vec<Vec<f64>>) -> Result<Vec<Vec<f64>>, E>,
    {
        let mut s = self.state.lock().unwrap();
        let my_gen = s.generation;
        let my_idx = s.boarding.len();
        s.boarding.push(rhs);
        if s.boarding.len() >= self.opts.max_batch {
            // Whoever fills the batch seals it at board time: later arrivals
            // start the next generation, so a batch never exceeds
            // `max_batch` and every rider's column index stays stable.
            Self::seal(&mut s);
            self.cv.notify_all();
        }

        if my_idx == 0 {
            // Leader: hold the batch open until full or the window closes,
            // then execute it.
            let deadline = Instant::now() + self.opts.window;
            while s.generation == my_gen {
                let now = Instant::now();
                if now >= deadline {
                    Self::seal(&mut s);
                    break;
                }
                let (next, _) = self.cv.wait_timeout(s, deadline - now).unwrap();
                s = next;
            }
            let batch = s
                .sealed
                .remove(&my_gen)
                .expect("sealed batch awaits its leader");
            let k = batch.len();
            drop(s);

            let outcome = exec(batch);
            let mut s = self.state.lock().unwrap();
            let mut published = match outcome {
                Ok(cols) => {
                    assert_eq!(cols.len(), k, "exec must return one column per input");
                    Published {
                        cols: cols.into_iter().map(Some).collect(),
                        error: None,
                        remaining: k,
                    }
                }
                Err(e) => Published {
                    cols: Vec::new(),
                    error: Some(e),
                    remaining: k,
                },
            };
            let mine = Self::claim(&mut published, 0);
            if let Some(gone) = s.abandoned.remove(&my_gen) {
                published.remaining -= gone.min(published.remaining);
            }
            if published.remaining > 0 {
                s.results.insert(my_gen, published);
            }
            drop(s);
            self.cv.notify_all();
            mine
        } else {
            // Follower: sleep until our generation's results appear.
            let deadline = Instant::now() + self.opts.wait_timeout;
            loop {
                if let Some(published) = s.results.get_mut(&my_gen) {
                    let mine = Self::claim(published, my_idx);
                    if published.remaining == 0 {
                        s.results.remove(&my_gen);
                    }
                    return mine;
                }
                let now = Instant::now();
                if now >= deadline {
                    // Abandon the claim so the batch's bookkeeping still
                    // drains if the results do arrive later.
                    *s.abandoned.entry(my_gen).or_insert(0) += 1;
                    return Err(LaneError::Timeout);
                }
                let (next, _) = self.cv.wait_timeout(s, deadline - now).unwrap();
                s = next;
            }
        }
    }

    /// Move the boarding batch into `sealed` under its generation id and
    /// open the next generation. Caller holds the lock.
    fn seal(s: &mut LaneState<E>) {
        let batch = std::mem::take(&mut s.boarding);
        let k = batch.len();
        debug_assert!(k > 0, "sealing an empty batch");
        s.sealed.insert(s.generation, batch);
        s.generation += 1;
        s.batches += 1;
        s.cols += k as u64;
        s.max_seen = s.max_seen.max(k);
    }

    fn claim<E2: Clone>(p: &mut Published<E2>, idx: usize) -> Result<Vec<f64>, LaneError<E2>> {
        p.remaining -= 1;
        match &p.error {
            Some(e) => Err(LaneError::Exec(e.clone())),
            None => Ok(p.cols[idx].take().expect("column claimed twice")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn opts(max_batch: usize, window_ms: u64) -> BatchOptions {
        BatchOptions {
            max_batch,
            window: Duration::from_millis(window_ms),
            wait_timeout: Duration::from_secs(5),
        }
    }

    /// exec that negates every entry and counts invocations.
    fn negate(
        calls: &Arc<AtomicU64>,
    ) -> impl Fn(Vec<Vec<f64>>) -> Result<Vec<Vec<f64>>, String> + '_ {
        move |batch| {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(batch
                .into_iter()
                .map(|c| c.into_iter().map(|v| -v).collect())
                .collect())
        }
    }

    #[test]
    fn single_rider_executes_immediately_with_batch_one() {
        let lane: BatchLane<String> = BatchLane::new(opts(1, 50));
        let calls = Arc::new(AtomicU64::new(0));
        let t0 = Instant::now();
        let out = lane.solve(vec![1.0, 2.0], negate(&calls)).unwrap();
        assert!(t0.elapsed() < Duration::from_millis(40), "no window wait");
        assert_eq!(out, vec![-1.0, -2.0]);
        assert_eq!(lane.stats(), (1, 1, 1));
    }

    #[test]
    fn concurrent_riders_share_batches_and_get_own_columns() {
        let lane: Arc<BatchLane<String>> = Arc::new(BatchLane::new(opts(4, 200)));
        let calls = Arc::new(AtomicU64::new(0));
        let n = 16;
        let outs: Vec<(f64, Vec<f64>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let lane = Arc::clone(&lane);
                    let calls = Arc::clone(&calls);
                    scope.spawn(move || {
                        let v = i as f64 + 1.0;
                        let out = lane.solve(vec![v, 2.0 * v], negate(&calls)).unwrap();
                        (v, out)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (v, out) in outs {
            assert_eq!(out, vec![-v, -2.0 * v], "rider got someone else's column");
        }
        let (batches, cols, max_seen) = lane.stats();
        assert_eq!(cols, n as u64);
        assert!(batches < n as u64, "some requests must have been batched");
        assert!((2..=4).contains(&max_seen));
        assert_eq!(calls.load(Ordering::SeqCst), batches);
    }

    #[test]
    fn window_deadline_seals_partial_batches() {
        let lane: BatchLane<String> = BatchLane::new(opts(64, 5));
        let calls = Arc::new(AtomicU64::new(0));
        let t0 = Instant::now();
        let out = lane.solve(vec![3.0], negate(&calls)).unwrap();
        assert_eq!(out, vec![-3.0]);
        assert!(
            t0.elapsed() >= Duration::from_millis(4),
            "leader should have held the window open"
        );
        assert_eq!(lane.stats(), (1, 1, 1));
    }

    #[test]
    fn exec_error_reaches_every_rider() {
        let lane: Arc<BatchLane<String>> = Arc::new(BatchLane::new(opts(4, 100)));
        let errs: Vec<LaneError<String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let lane = Arc::clone(&lane);
                    scope.spawn(move || {
                        lane.solve(vec![1.0], |_| Err("boom".to_string()))
                            .unwrap_err()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for e in errs {
            assert_eq!(e, LaneError::Exec("boom".to_string()));
        }
    }
}
