//! Micro-batching of concurrent single-RHS solves into blocked solves.
//!
//! The paper's central measurement is that a triangular solve's cost is
//! dominated by per-solve overhead (pipeline fill on the T3D; dispatch and
//! factor-streaming here), so solving `k` right-hand sides in one blocked
//! `n×k` call costs far less than `k` single solves. A [`BatchLane`] turns a
//! stream of independent single-RHS requests into exactly those blocked
//! calls using a leader/follower protocol:
//!
//! 1. every request boards the currently-open batch under the lane mutex;
//! 2. the first to board becomes the *leader*: it waits until the batch is
//!    full (`max_batch`) or the batching `window` elapses, seals the batch,
//!    executes the blocked solve *outside* the lock, and publishes the
//!    per-column results;
//! 3. later arrivals (*followers*) wake the leader when they fill the batch
//!    and then sleep until their generation's results appear, claiming their
//!    own column.
//!
//! With `max_batch == 1` the leader seals immediately and the lane degrades
//! to a plain mutex-serialized solve, which is the unbatched baseline the
//! benchmark compares against.
//!
//! Failure is a first-class input here (DESIGN.md §11): each boarder may
//! carry a *deadline*, and a boarder whose deadline has already expired by
//! the time its batch is sealed is **expelled** — it receives
//! [`LaneError::Deadline`] and its column is excluded from the blocked
//! solve, so one stuck or abandoned request cannot poison the columns of
//! the followers that boarded behind it. Lane locks recover from poison
//! (the protected state is rebuilt wholesale on every transition, so a
//! panicking rider cannot leave it half-written), which keeps one
//! panicked worker from cascading into every later request on the lane.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Lock a mutex, recovering from poison: lane state is rebuilt wholesale
/// at every transition, so observing a poisoned guard is safe.
fn lock_lane<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Policy knobs for a [`BatchLane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOptions {
    /// Seal a batch as soon as it holds this many columns.
    pub max_batch: usize,
    /// Seal a non-full batch this long after its first column boards.
    pub window: Duration,
    /// How long a follower waits for its results before giving up; bounds
    /// the damage of a stuck leader (should comfortably exceed one blocked
    /// solve plus one window).
    pub wait_timeout: Duration,
}

impl Default for BatchOptions {
    fn default() -> BatchOptions {
        BatchOptions {
            max_batch: 8,
            window: Duration::from_millis(1),
            wait_timeout: Duration::from_secs(30),
        }
    }
}

/// Why a lane request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaneError<E> {
    /// The blocked execution itself failed; every rider of the batch
    /// receives a clone of the error.
    Exec(E),
    /// The follower's wait deadline expired before results appeared.
    Timeout,
    /// The request's own deadline expired before its column was solved
    /// (expelled at seal time, or while waiting for results).
    Deadline,
}

/// One boarded request: its RHS column and optional deadline.
struct Boarder {
    rhs: Vec<f64>,
    deadline: Option<Instant>,
}

struct Published<E> {
    /// One slot per batch column; each rider takes its own (a `Result`, so
    /// expelled boarders get their structured error by index while their
    /// batch-mates get columns).
    slots: Vec<Option<Result<Vec<f64>, LaneError<E>>>>,
    /// Riders that have not yet claimed their slot.
    remaining: usize,
}

struct LaneState<E> {
    /// Columns of the batch currently boarding.
    boarding: Vec<Boarder>,
    /// Generation id of the boarding batch (bumped when sealed).
    generation: u64,
    /// Batches sealed at board time (full before the leader woke),
    /// awaiting execution by their generation's leader.
    sealed: HashMap<u64, Vec<Boarder>>,
    /// Sealed-and-executed batches awaiting claims, by generation.
    results: HashMap<u64, Published<E>>,
    /// Claims abandoned by timed-out followers, by generation; subtracted
    /// when that generation publishes so its entry still drains.
    abandoned: HashMap<u64, usize>,
    /// Total batches sealed (stats).
    batches: u64,
    /// Total columns solved through sealed batches (stats).
    cols: u64,
    /// Columns expelled at seal time because their deadline had already
    /// passed (stats).
    expelled: u64,
    /// Largest batch sealed so far (stats).
    max_seen: usize,
}

/// A micro-batching rendezvous for one cached factor.
pub struct BatchLane<E> {
    opts: BatchOptions,
    state: Mutex<LaneState<E>>,
    cv: Condvar,
}

impl<E: Clone> BatchLane<E> {
    /// An empty lane with the given policy.
    pub fn new(opts: BatchOptions) -> BatchLane<E> {
        assert!(opts.max_batch >= 1, "max_batch must be at least 1");
        BatchLane {
            opts,
            state: Mutex::new(LaneState {
                boarding: Vec::new(),
                generation: 0,
                sealed: HashMap::new(),
                results: HashMap::new(),
                abandoned: HashMap::new(),
                batches: 0,
                cols: 0,
                expelled: 0,
                max_seen: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// `(batches_sealed, columns_solved, largest_batch)` so far.
    pub fn stats(&self) -> (u64, u64, usize) {
        let s = lock_lane(&self.state);
        (s.batches, s.cols, s.max_seen)
    }

    /// Columns expelled at seal time for expired deadlines.
    pub fn expelled(&self) -> u64 {
        lock_lane(&self.state).expelled
    }

    /// True when the lane holds no in-flight state: nothing boarding, no
    /// sealed batch awaiting its leader, no unclaimed results, and no
    /// abandoned-claim bookkeeping. The chaos soak asserts this after
    /// draining every client — a false here is a leaked column.
    pub fn is_quiescent(&self) -> bool {
        let s = lock_lane(&self.state);
        s.boarding.is_empty()
            && s.sealed.is_empty()
            && s.results.is_empty()
            && s.abandoned.is_empty()
    }

    /// Board `rhs` onto the open batch, riding (or leading) the blocked
    /// solve, and return this request's solution column. `exec` maps the
    /// sealed batch columns to result columns (same order, same count) and
    /// runs on exactly one thread per batch, outside the lane lock.
    ///
    /// `deadline`, if given, bounds this request end to end: a boarder
    /// whose deadline passes before its batch executes is expelled with
    /// [`LaneError::Deadline`] instead of riding (or stalling) the batch.
    pub fn solve<F>(
        &self,
        rhs: Vec<f64>,
        deadline: Option<Instant>,
        exec: F,
    ) -> Result<Vec<f64>, LaneError<E>>
    where
        F: FnOnce(Vec<Vec<f64>>) -> Result<Vec<Vec<f64>>, E>,
    {
        let mut s = lock_lane(&self.state);
        let my_gen = s.generation;
        let my_idx = s.boarding.len();
        s.boarding.push(Boarder { rhs, deadline });
        if s.boarding.len() >= self.opts.max_batch {
            // Whoever fills the batch seals it at board time: later arrivals
            // start the next generation, so a batch never exceeds
            // `max_batch` and every rider's column index stays stable.
            Self::seal(&mut s);
            self.cv.notify_all();
        }

        if my_idx == 0 {
            // Leader: hold the batch open until full or the window closes
            // (or our own deadline arrives, whichever is first), then
            // execute it.
            let mut window_end = Instant::now() + self.opts.window;
            if let Some(d) = deadline {
                window_end = window_end.min(d);
            }
            while s.generation == my_gen {
                let now = Instant::now();
                if now >= window_end {
                    Self::seal(&mut s);
                    break;
                }
                let (next, _) = self
                    .cv
                    .wait_timeout(s, window_end - now)
                    .unwrap_or_else(|e| e.into_inner());
                s = next;
            }
            let batch = s
                .sealed
                .remove(&my_gen)
                .expect("sealed batch awaits its leader");
            let k = batch.len();
            // Expel boarders whose deadline already passed: they get a
            // structured Deadline error and their column never reaches the
            // solver, so a stalled boarder cannot hold up the live ones.
            let now = Instant::now();
            let mut live_cols = Vec::with_capacity(k);
            let mut live_idx = Vec::with_capacity(k);
            let mut slots: Vec<Option<Result<Vec<f64>, LaneError<E>>>> = Vec::with_capacity(k);
            for (idx, b) in batch.into_iter().enumerate() {
                if b.deadline.is_some_and(|d| now >= d) {
                    slots.push(Some(Err(LaneError::Deadline)));
                } else {
                    live_idx.push(idx);
                    live_cols.push(b.rhs);
                    slots.push(None);
                }
            }
            let n_expelled = (k - live_cols.len()) as u64;
            s.expelled += n_expelled;
            drop(s);

            let outcome = if live_cols.is_empty() {
                Ok(Vec::new())
            } else {
                exec(live_cols)
            };
            let mut s = lock_lane(&self.state);
            match outcome {
                Ok(cols) => {
                    assert_eq!(
                        cols.len(),
                        live_idx.len(),
                        "exec must return one column per input"
                    );
                    for (idx, col) in live_idx.into_iter().zip(cols) {
                        slots[idx] = Some(Ok(col));
                    }
                }
                Err(e) => {
                    for idx in live_idx {
                        slots[idx] = Some(Err(LaneError::Exec(e.clone())));
                    }
                }
            }
            let mut published = Published {
                slots,
                remaining: k,
            };
            let mine = Self::claim(&mut published, 0);
            if let Some(gone) = s.abandoned.remove(&my_gen) {
                published.remaining -= gone.min(published.remaining);
            }
            if published.remaining > 0 {
                s.results.insert(my_gen, published);
            }
            drop(s);
            self.cv.notify_all();
            mine
        } else {
            // Follower: sleep until our generation's results appear, our
            // own deadline passes, or the lane-wide wait timeout trips.
            let wait_end = Instant::now() + self.opts.wait_timeout;
            let give_up = deadline.map_or(wait_end, |d| d.min(wait_end));
            loop {
                if let Some(published) = s.results.get_mut(&my_gen) {
                    let mine = Self::claim(published, my_idx);
                    if published.remaining == 0 {
                        s.results.remove(&my_gen);
                    }
                    return mine;
                }
                let now = Instant::now();
                if now >= give_up {
                    // Abandon the claim so the batch's bookkeeping still
                    // drains if the results do arrive later.
                    *s.abandoned.entry(my_gen).or_insert(0) += 1;
                    return Err(if deadline.is_some_and(|d| now >= d) {
                        LaneError::Deadline
                    } else {
                        LaneError::Timeout
                    });
                }
                let (next, _) = self
                    .cv
                    .wait_timeout(s, give_up - now)
                    .unwrap_or_else(|e| e.into_inner());
                s = next;
            }
        }
    }

    /// Move the boarding batch into `sealed` under its generation id and
    /// open the next generation. Caller holds the lock.
    fn seal(s: &mut LaneState<E>) {
        let batch = std::mem::take(&mut s.boarding);
        let k = batch.len();
        debug_assert!(k > 0, "sealing an empty batch");
        s.sealed.insert(s.generation, batch);
        s.generation += 1;
        s.batches += 1;
        s.cols += k as u64;
        s.max_seen = s.max_seen.max(k);
    }

    fn claim<E2: Clone>(p: &mut Published<E2>, idx: usize) -> Result<Vec<f64>, LaneError<E2>> {
        p.remaining -= 1;
        p.slots[idx].take().expect("column claimed twice")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn opts(max_batch: usize, window_ms: u64) -> BatchOptions {
        BatchOptions {
            max_batch,
            window: Duration::from_millis(window_ms),
            wait_timeout: Duration::from_secs(5),
        }
    }

    /// exec that negates every entry and counts invocations.
    fn negate(
        calls: &Arc<AtomicU64>,
    ) -> impl Fn(Vec<Vec<f64>>) -> Result<Vec<Vec<f64>>, String> + '_ {
        move |batch| {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(batch
                .into_iter()
                .map(|c| c.into_iter().map(|v| -v).collect())
                .collect())
        }
    }

    #[test]
    fn single_rider_executes_immediately_with_batch_one() {
        let lane: BatchLane<String> = BatchLane::new(opts(1, 50));
        let calls = Arc::new(AtomicU64::new(0));
        let t0 = Instant::now();
        let out = lane.solve(vec![1.0, 2.0], None, negate(&calls)).unwrap();
        assert!(t0.elapsed() < Duration::from_millis(40), "no window wait");
        assert_eq!(out, vec![-1.0, -2.0]);
        assert_eq!(lane.stats(), (1, 1, 1));
        assert!(lane.is_quiescent());
    }

    #[test]
    fn concurrent_riders_share_batches_and_get_own_columns() {
        let lane: Arc<BatchLane<String>> = Arc::new(BatchLane::new(opts(4, 200)));
        let calls = Arc::new(AtomicU64::new(0));
        let n = 16;
        let outs: Vec<(f64, Vec<f64>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let lane = Arc::clone(&lane);
                    let calls = Arc::clone(&calls);
                    scope.spawn(move || {
                        let v = i as f64 + 1.0;
                        let out = lane.solve(vec![v, 2.0 * v], None, negate(&calls)).unwrap();
                        (v, out)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (v, out) in outs {
            assert_eq!(out, vec![-v, -2.0 * v], "rider got someone else's column");
        }
        let (batches, cols, max_seen) = lane.stats();
        assert_eq!(cols, n as u64);
        assert!(batches < n as u64, "some requests must have been batched");
        assert!((2..=4).contains(&max_seen));
        assert_eq!(calls.load(Ordering::SeqCst), batches);
        assert!(lane.is_quiescent());
    }

    #[test]
    fn window_deadline_seals_partial_batches() {
        let lane: BatchLane<String> = BatchLane::new(opts(64, 5));
        let calls = Arc::new(AtomicU64::new(0));
        let t0 = Instant::now();
        let out = lane.solve(vec![3.0], None, negate(&calls)).unwrap();
        assert_eq!(out, vec![-3.0]);
        assert!(
            t0.elapsed() >= Duration::from_millis(4),
            "leader should have held the window open"
        );
        assert_eq!(lane.stats(), (1, 1, 1));
    }

    #[test]
    fn exec_error_reaches_every_rider() {
        let lane: Arc<BatchLane<String>> = Arc::new(BatchLane::new(opts(4, 100)));
        let errs: Vec<LaneError<String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let lane = Arc::clone(&lane);
                    scope.spawn(move || {
                        lane.solve(vec![1.0], None, |_| Err("boom".to_string()))
                            .unwrap_err()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for e in errs {
            assert_eq!(e, LaneError::Exec("boom".to_string()));
        }
        assert!(lane.is_quiescent());
    }

    #[test]
    fn expired_boarder_is_expelled_not_solved() {
        // A leader whose deadline is already behind it: sealed immediately
        // (deadline caps the window), expelled before exec runs.
        let lane: BatchLane<String> = BatchLane::new(opts(8, 200));
        let calls = Arc::new(AtomicU64::new(0));
        let past = Instant::now() - Duration::from_millis(5);
        let err = lane
            .solve(vec![1.0], Some(past), negate(&calls))
            .unwrap_err();
        assert_eq!(err, LaneError::Deadline);
        assert_eq!(
            calls.load(Ordering::SeqCst),
            0,
            "expelled column not solved"
        );
        assert_eq!(lane.expelled(), 1);
        assert!(lane.is_quiescent());
    }

    #[test]
    fn expelled_boarder_does_not_stall_live_followers() {
        // Two riders: one already expired at board time, one live. The live
        // one must get its correct column; the expired one a Deadline error.
        let lane: Arc<BatchLane<String>> = Arc::new(BatchLane::new(opts(2, 150)));
        let calls = Arc::new(AtomicU64::new(0));
        let (dead, live) = std::thread::scope(|scope| {
            let l1 = Arc::clone(&lane);
            let c1 = Arc::clone(&calls);
            let dead = scope.spawn(move || {
                let past = Instant::now() - Duration::from_millis(5);
                l1.solve(vec![7.0], Some(past), negate(&c1))
            });
            // ensure the expired rider boards first and becomes leader
            std::thread::sleep(Duration::from_millis(20));
            let l2 = Arc::clone(&lane);
            let c2 = Arc::clone(&calls);
            let live = scope.spawn(move || l2.solve(vec![2.0], None, negate(&c2)));
            (dead.join().unwrap(), live.join().unwrap())
        });
        assert_eq!(dead.unwrap_err(), LaneError::Deadline);
        assert_eq!(live.unwrap(), vec![-2.0]);
        assert_eq!(lane.expelled(), 1);
        assert!(lane.is_quiescent());
    }

    #[test]
    fn follower_deadline_yields_deadline_not_timeout() {
        // The leader's exec stalls past the follower's deadline; the
        // follower must come back with Deadline, and the lane must still
        // drain once the slow batch publishes.
        let lane: Arc<BatchLane<String>> = Arc::new(BatchLane::new(opts(2, 100)));
        let (slow, fast) = std::thread::scope(|scope| {
            let l1 = Arc::clone(&lane);
            let slow = scope.spawn(move || {
                l1.solve(vec![1.0], None, |batch| {
                    std::thread::sleep(Duration::from_millis(80));
                    Ok(batch)
                })
            });
            std::thread::sleep(Duration::from_millis(10));
            let l2 = Arc::clone(&lane);
            let fast = scope.spawn(move || {
                let d = Instant::now() + Duration::from_millis(20);
                l2.solve(vec![2.0], Some(d), Ok)
            });
            (slow.join().unwrap(), fast.join().unwrap())
        });
        assert!(slow.is_ok());
        assert_eq!(fast.unwrap_err(), LaneError::Deadline);
        assert!(lane.is_quiescent(), "abandoned claim must drain");
    }
}
