//! Content-hash fingerprints identifying a matrix across the wire.
//!
//! The cache key must be a pure function of the matrix *content* (structure
//! and values), so that a client that regenerates or reloads the same matrix
//! lands on the same cached factor without any session state. We hash the
//! CSC arrays with two independent FNV-1a lanes (different offset bases and
//! an extra per-word mix on the second lane), giving a 128-bit fingerprint;
//! accidental collisions are then beyond realistic workloads, and the hash
//! is std-only and deterministic across platforms (values are hashed by
//! their IEEE-754 bit patterns).

use std::fmt;

use trisolv_matrix::CscMatrix;

const FNV_OFFSET_A: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_OFFSET_B: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 128-bit content hash of a CSC matrix (structure + values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64, pub u64);

impl Fingerprint {
    /// Fingerprint of a matrix: dimensions, column pointers, row indices and
    /// the bit patterns of the values, folded through two FNV-1a lanes.
    pub fn of_matrix(m: &CscMatrix) -> Fingerprint {
        let mut h = Hasher::new();
        h.word(m.nrows() as u64);
        h.word(m.ncols() as u64);
        h.word(m.nnz() as u64);
        for &p in m.colptr() {
            h.word(p as u64);
        }
        for &i in m.rowidx() {
            h.word(i as u64);
        }
        for &v in m.values() {
            h.word(v.to_bits());
        }
        Fingerprint(h.a, h.b)
    }

    /// Fingerprint of the raw CSC arrays as they travel in a `LOAD` frame
    /// (same digest as [`Fingerprint::of_matrix`] on the built matrix).
    pub fn of_parts(
        nrows: usize,
        ncols: usize,
        colptr: &[usize],
        rowidx: &[usize],
        values: &[f64],
    ) -> Fingerprint {
        let mut h = Hasher::new();
        h.word(nrows as u64);
        h.word(ncols as u64);
        h.word(values.len() as u64);
        for &p in colptr {
            h.word(p as u64);
        }
        for &i in rowidx {
            h.word(i as u64);
        }
        for &v in values {
            h.word(v.to_bits());
        }
        Fingerprint(h.a, h.b)
    }

    /// Checksum of a sequence of `f64` slices by IEEE-754 bit pattern,
    /// through the same two FNV-1a lanes. Used as the factor-integrity
    /// checksum: the cache digests a factor's value blocks at insert and
    /// re-digests on a cadence to detect silent corruption.
    pub fn of_value_slices<'a, I>(slices: I) -> Fingerprint
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut h = Hasher::new();
        let mut total = 0u64;
        for s in slices {
            total += s.len() as u64;
            for &v in s {
                h.word(v.to_bits());
            }
        }
        // fold the length in so prefix-identical block lists differ
        h.word(total);
        Fingerprint(h.a, h.b)
    }

    /// `f32` counterpart of [`Fingerprint::of_value_slices`]: digests the
    /// stored `f32` bit patterns directly. Widening to `f64` first would
    /// work too (the widening is exact), but digesting the resident bits
    /// keeps the integrity check honest about what is actually in memory.
    pub fn of_value_slices_f32<'a, I>(slices: I) -> Fingerprint
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut h = Hasher::new();
        let mut total = 0u64;
        for s in slices {
            total += s.len() as u64;
            for &v in s {
                h.word(u64::from(v.to_bits()));
            }
        }
        // fold the length in so prefix-identical block lists differ
        h.word(total);
        Fingerprint(h.a, h.b)
    }

    /// Checksum of raw bytes through the same two FNV-1a lanes, folding the
    /// length in. Whole 8-byte words are hashed as little-endian `u64`s, a
    /// zero-padded tail word covers the remainder. This is the snapshot
    /// trailer checksum of the on-disk factor store: any truncation,
    /// extension, or flipped bit in the payload changes it.
    pub fn of_bytes(bytes: &[u8]) -> Fingerprint {
        let mut h = Hasher::new();
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            h.word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            h.word(u64::from_le_bytes(last));
        }
        h.word(bytes.len() as u64);
        Fingerprint(h.a, h.b)
    }

    /// [`Fingerprint::of_bytes`] seeded with one extra leading word. This
    /// is the protocol-v4 frame checksum: `tag` carries the opcode so a
    /// flipped opcode byte changes the digest even though the opcode
    /// travels outside the checksummed payload region.
    pub fn of_tagged_bytes(tag: u64, bytes: &[u8]) -> Fingerprint {
        let mut h = Hasher::new();
        h.word(tag);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            h.word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            h.word(u64::from_le_bytes(last));
        }
        h.word(bytes.len() as u64);
        Fingerprint(h.a, h.b)
    }

    /// The 16-byte wire encoding (big-endian lanes, lane 0 first).
    pub fn to_bytes(self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&self.0.to_be_bytes());
        b[8..].copy_from_slice(&self.1.to_be_bytes());
        b
    }

    /// Decode the wire encoding produced by [`Fingerprint::to_bytes`].
    pub fn from_bytes(b: [u8; 16]) -> Fingerprint {
        Fingerprint(
            u64::from_be_bytes(b[..8].try_into().unwrap()),
            u64::from_be_bytes(b[8..].try_into().unwrap()),
        )
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0, self.1)
    }
}

struct Hasher {
    a: u64,
    b: u64,
}

impl Hasher {
    fn new() -> Hasher {
        Hasher {
            a: FNV_OFFSET_A,
            b: FNV_OFFSET_B,
        }
    }

    #[inline]
    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        // second lane: mix whole words with rotation so the two lanes are
        // not trivially correlated
        self.b = (self.b ^ w.rotate_left(31)).wrapping_mul(FNV_PRIME);
        self.b ^= self.b >> 29;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_matrix::gen;

    #[test]
    fn deterministic_and_content_sensitive() {
        let a = gen::grid2d_laplacian(6, 6);
        let b = gen::grid2d_laplacian(6, 6);
        assert_eq!(Fingerprint::of_matrix(&a), Fingerprint::of_matrix(&b));
        let c = gen::grid2d_laplacian(6, 7);
        assert_ne!(Fingerprint::of_matrix(&a), Fingerprint::of_matrix(&c));
        // a value change (same structure) must also change the hash
        let mut vals = a.values().to_vec();
        vals[0] += 1.0;
        let d = CscMatrix::from_parts(
            a.nrows(),
            a.ncols(),
            a.colptr().to_vec(),
            a.rowidx().to_vec(),
            vals,
        )
        .unwrap();
        assert_ne!(Fingerprint::of_matrix(&a), Fingerprint::of_matrix(&d));
    }

    #[test]
    fn of_parts_matches_of_matrix() {
        let a = gen::random_spd(40, 5, 3);
        assert_eq!(
            Fingerprint::of_parts(a.nrows(), a.ncols(), a.colptr(), a.rowidx(), a.values()),
            Fingerprint::of_matrix(&a)
        );
    }

    #[test]
    fn value_slice_checksum_sees_single_bit_flips() {
        let a = [1.0f64, 2.0, 3.0];
        let b = [4.0f64, 5.0];
        let base = Fingerprint::of_value_slices([&a[..], &b[..]]);
        assert_eq!(base, Fingerprint::of_value_slices([&a[..], &b[..]]));
        // one flipped mantissa bit changes the digest
        let mut a2 = a;
        a2[1] = f64::from_bits(a2[1].to_bits() ^ 1);
        assert_ne!(base, Fingerprint::of_value_slices([&a2[..], &b[..]]));
        // slice boundaries don't matter, total content does — but an
        // appended zero does (length is folded in)
        let flat = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(base, Fingerprint::of_value_slices([&flat[..]]));
        let longer = [1.0f64, 2.0, 3.0, 4.0, 5.0, 0.0];
        assert_ne!(base, Fingerprint::of_value_slices([&longer[..]]));
    }

    #[test]
    fn byte_checksum_sees_truncation_extension_and_flips() {
        let data: Vec<u8> = (0..37).collect();
        let base = Fingerprint::of_bytes(&data);
        assert_eq!(base, Fingerprint::of_bytes(&data), "deterministic");
        for cut in [0, 1, 8, 17, 36] {
            assert_ne!(base, Fingerprint::of_bytes(&data[..cut]), "cut at {cut}");
        }
        let mut longer = data.clone();
        longer.push(0);
        assert_ne!(base, Fingerprint::of_bytes(&longer), "zero-extension");
        for i in [0, 7, 8, 36] {
            let mut flipped = data.clone();
            flipped[i] ^= 1;
            assert_ne!(base, Fingerprint::of_bytes(&flipped), "flip at {i}");
        }
    }

    #[test]
    fn tagged_byte_checksum_separates_tags() {
        let data: Vec<u8> = (0..23).collect();
        let a = Fingerprint::of_tagged_bytes(1, &data);
        assert_eq!(a, Fingerprint::of_tagged_bytes(1, &data), "deterministic");
        assert_ne!(a, Fingerprint::of_tagged_bytes(2, &data), "tag-sensitive");
        assert_ne!(a, Fingerprint::of_bytes(&data), "distinct from untagged");
        let mut flipped = data.clone();
        flipped[11] ^= 0x40;
        assert_ne!(a, Fingerprint::of_tagged_bytes(1, &flipped), "bit flip");
    }

    #[test]
    fn byte_round_trip_and_display() {
        let fp = Fingerprint(0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210);
        assert_eq!(Fingerprint::from_bytes(fp.to_bytes()), fp);
        assert_eq!(fp.to_string(), "0123456789abcdeffedcba9876543210");
    }
}
