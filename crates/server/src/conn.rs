//! Per-connection state machine for the event-driven front end.
//!
//! Each accepted socket gets a [`Conn`]: a nonblocking stream plus the
//! buffers and bookkeeping that used to live on a dedicated thread's stack.
//! The event loop drives it with small nonblocking steps — [`read_some`]
//! pulls available bytes, [`next_frame`] peels complete frames off the read
//! buffer (a frame split across arbitrarily many TCP segments is fine; no
//! thread ever parks mid-frame), and [`try_write`] pushes buffered reply
//! bytes until the socket pushes back.
//!
//! Pipelining: a client may send many frames without waiting for replies.
//! Requests execute concurrently across the worker pool, but replies go out
//! strictly in request order — each parsed frame takes a sequence number
//! from [`begin_request`], and [`finish`] holds out-of-order outcomes in a
//! small reorder map until their turn. The in-flight count doubles as
//! backpressure: past the pipeline cap the loop simply stops reading this
//! socket, so a flooding client blocks on TCP instead of ballooning the
//! queue.
//!
//! A connection that negotiates protocol v4 ([`set_v4`]) switches to
//! *unordered* replies: every frame carries a request ID the peer
//! correlates on, so [`finish`] skips the reorder map and flushes each
//! outcome the moment it completes. Out-of-order replies are the feature —
//! they are what lets a receiver tolerate one slow request without
//! head-of-line blocking the connection.
//!
//! [`set_v4`]: Conn::set_v4
//!
//! [`read_some`]: Conn::read_some
//! [`next_frame`]: Conn::next_frame
//! [`try_write`]: Conn::try_write
//! [`begin_request`]: Conn::begin_request
//! [`finish`]: Conn::finish

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::protocol::MAX_FRAME_LEN;

/// How a finished request leaves the connection.
#[derive(Debug)]
pub enum Outcome {
    /// Write the frame; the connection stays open.
    Reply(Vec<u8>),
    /// Write the bytes (a whole frame, or a deliberately torn prefix under
    /// fault injection), then close once the write buffer drains.
    ReplyThenClose(Vec<u8>),
    /// Close without writing anything for this request (injected
    /// `write.drop`); earlier buffered replies still flush.
    CloseSilent,
}

/// One step of the incremental frame parser.
#[derive(Debug)]
pub enum FrameStep {
    /// Not enough buffered bytes for a complete frame yet.
    Incomplete,
    /// A complete `len | opcode | payload` frame.
    Frame {
        /// The operation byte.
        opcode: u8,
        /// The payload bytes after the opcode.
        payload: Vec<u8>,
    },
    /// The length prefix is zero or over [`MAX_FRAME_LEN`]; the stream can
    /// never be re-synchronized past it.
    BadLength(u32),
}

/// Result of [`Conn::read_some`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStatus {
    /// Socket drained to `WouldBlock`; more may arrive later.
    Open,
    /// Peer closed its write half (any bytes read first are buffered).
    Eof,
}

/// Per-connection state machine: incremental frame parsing in, seq-ordered
/// reply reassembly out, with slow-peer and slow-reader deadlines.
pub struct Conn {
    /// The nonblocking socket.
    pub stream: TcpStream,
    read_buf: Vec<u8>,
    read_pos: usize,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Slow-peer budget: set while the head of the read buffer is a partial
    /// frame, cleared/reset by [`Conn::update_read_deadline`].
    pub read_deadline: Option<Instant>,
    /// Budget for the peer to accept buffered reply bytes; reset whenever a
    /// write makes progress.
    pub write_deadline: Option<Instant>,
    /// Sequence number handed to the next parsed frame.
    next_seq: u64,
    /// Sequence number whose outcome must be written next.
    next_out: u64,
    /// Outcomes that finished ahead of their turn.
    done: BTreeMap<u64, Outcome>,
    /// Frames dispatched (or error-queued) but not yet resolved into the
    /// write buffer.
    pub in_flight: usize,
    /// Peer closed its write half: no further *bytes* will arrive, but
    /// complete frames already buffered still parse and get answered.
    eof: bool,
    /// No further frames will be *parsed*: an unrecoverable framing error,
    /// a failure outcome queued by the loop, or a close-carrying outcome.
    input_dead: bool,
    /// Close as soon as the write buffer drains.
    closing: bool,
    /// Protocol v4 negotiated: frames are enveloped (request ID +
    /// checksum) and replies go out in completion order, not request order.
    v4: bool,
}

impl Conn {
    /// Wrap an accepted, already-nonblocking socket.
    pub fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            read_pos: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            read_deadline: None,
            write_deadline: None,
            next_seq: 0,
            next_out: 0,
            done: BTreeMap::new(),
            in_flight: 0,
            eof: false,
            input_dead: false,
            closing: false,
            v4: false,
        }
    }

    /// Switch this connection to protocol v4 (after a `HELLO` handshake):
    /// replies flush in completion order from now on. Only legal before
    /// any non-`HELLO` request is admitted.
    pub fn set_v4(&mut self) {
        self.v4 = true;
    }

    /// Has this connection negotiated protocol v4?
    pub fn is_v4(&self) -> bool {
        self.v4
    }

    /// How many requests have been admitted (sequence numbers handed out).
    /// The `HELLO` handshake uses this to enforce first-frame-only.
    pub fn requests_begun(&self) -> u64 {
        self.next_seq
    }

    /// Pull whatever the socket has buffered. `Err` means the transport
    /// failed and the connection should be dropped.
    pub fn read_some(&mut self) -> io::Result<ReadStatus> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(ReadStatus::Eof),
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(ReadStatus::Open),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Try to peel one complete frame off the read buffer. Peer EOF does
    /// not stop parsing — frames that arrived before the close still get
    /// served; only a dead input (framing error, queued close) does.
    pub fn next_frame(&mut self) -> FrameStep {
        if self.input_dead {
            return FrameStep::Incomplete;
        }
        let avail = &self.read_buf[self.read_pos..];
        if avail.len() < 4 {
            return FrameStep::Incomplete;
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if len == 0 || len > MAX_FRAME_LEN {
            self.input_dead = true;
            return FrameStep::BadLength(len);
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return FrameStep::Incomplete;
        }
        let opcode = avail[4];
        let payload = avail[5..total].to_vec();
        self.read_pos += total;
        FrameStep::Frame { opcode, payload }
    }

    /// Drop consumed bytes so the read buffer does not grow without bound.
    pub fn compact(&mut self) {
        if self.read_pos > 0 {
            self.read_buf.drain(..self.read_pos);
            self.read_pos = 0;
        }
    }

    /// `true` while the head of the read buffer is a *partial* frame — the
    /// only state where the peer (not our backpressure) is what we wait on.
    fn head_is_partial_frame(&self) -> bool {
        let avail = &self.read_buf[self.read_pos..];
        if avail.is_empty() {
            return false;
        }
        if avail.len() < 4 {
            return true;
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if len == 0 || len > MAX_FRAME_LEN {
            // a bad length is terminal, not slow
            return false;
        }
        avail.len() < 4 + len as usize
    }

    /// `true` while a *complete* frame heads the read buffer, waiting for a
    /// free pipeline slot to admit it.
    pub fn has_buffered_frame(&self) -> bool {
        if self.input_dead {
            return false;
        }
        let avail = &self.read_buf[self.read_pos..];
        if avail.len() < 4 {
            return false;
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]);
        // a bad length is extractable too: next_frame() must get to report
        // it so the loop can answer with ERR and close
        len == 0 || len > MAX_FRAME_LEN || avail.len() >= 4 + len as usize
    }

    /// Recompute the slow-peer deadline after a read/parse pass. The clock
    /// runs only while a partial frame heads the buffer (a complete frame
    /// held back by pipeline backpressure is *our* stall, not the peer's)
    /// and restarts whenever a frame completed this pass, giving each frame
    /// its own `io_timeout` budget like the old blocking reader.
    pub fn update_read_deadline(&mut self, io_timeout: Duration, extracted: bool) {
        if io_timeout.is_zero() || self.eof || self.input_dead || !self.head_is_partial_frame() {
            self.read_deadline = None;
        } else if extracted || self.read_deadline.is_none() {
            self.read_deadline = Some(Instant::now() + io_timeout);
        }
    }

    /// Allocate the sequence number for a newly parsed frame (or a
    /// loop-generated error that must respect reply ordering).
    pub fn begin_request(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.in_flight += 1;
        seq
    }

    /// Resolve request `seq`. In-order outcomes flow straight into the
    /// write buffer; early arrivals wait in the reorder map. On a v4
    /// connection the reorder map is bypassed entirely — the outcome
    /// flushes now, in completion order, and the peer correlates by the
    /// request ID inside the frame.
    pub fn finish(&mut self, seq: u64, outcome: Outcome) {
        self.in_flight = self.in_flight.saturating_sub(1);
        if self.v4 {
            if !self.closing {
                self.apply_outcome(outcome);
            }
            return;
        }
        self.done.insert(seq, outcome);
        while !self.closing {
            let Some(out) = self.done.remove(&self.next_out) else {
                break;
            };
            self.next_out += 1;
            self.apply_outcome(out);
        }
    }

    fn apply_outcome(&mut self, out: Outcome) {
        match out {
            Outcome::Reply(frame) => self.write_buf.extend_from_slice(&frame),
            Outcome::ReplyThenClose(frame) => {
                self.write_buf.extend_from_slice(&frame);
                self.input_dead = true;
                self.closing = true;
            }
            Outcome::CloseSilent => {
                self.input_dead = true;
                self.closing = true;
            }
        }
    }

    /// Mark the read side finished (peer EOF): stop watching the socket and
    /// stop the slow-peer clock. In-flight requests still complete and
    /// flush, and complete frames already buffered still get served.
    pub fn close_input(&mut self) {
        self.eof = true;
        self.read_deadline = None;
    }

    /// Queue an error frame and close after it flushes, preserving reply
    /// order behind any in-flight requests. Kills the input side and the
    /// slow-peer clock immediately — even while the error waits in the
    /// reorder map — so the deadline fires exactly once instead of spinning
    /// the loop at a zero poll timeout until in-flight work resolves.
    pub fn fail_and_close(&mut self, frame: Vec<u8>) {
        self.input_dead = true;
        self.read_deadline = None;
        let seq = self.begin_request();
        self.finish(seq, Outcome::ReplyThenClose(frame));
    }

    /// Append already-encoded frame bytes directly to the write buffer,
    /// bypassing the seq/reorder machinery. This is how the router's
    /// *outbound* (backend-facing) connections reuse this state machine:
    /// requests go out through `enqueue`, replies come back through
    /// [`Conn::read_some`]/[`Conn::next_frame`], and FIFO request→reply
    /// matching is the caller's job.
    pub fn enqueue(&mut self, frame: &[u8]) {
        self.write_buf.extend_from_slice(frame);
    }

    /// Push buffered reply bytes until the socket pushes back. Progress
    /// resets the write deadline; a stalled, non-empty buffer keeps it
    /// running so a peer that never reads gets cut loose.
    pub fn try_write(&mut self, io_timeout: Duration) -> io::Result<()> {
        let mut progressed = false;
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.write_pos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
            self.write_deadline = None;
        } else if !io_timeout.is_zero() && (progressed || self.write_deadline.is_none()) {
            self.write_deadline = Some(Instant::now() + io_timeout);
        }
        Ok(())
    }

    /// Should the poll set watch this socket for input?
    pub fn wants_read(&self, max_pipeline: usize) -> bool {
        !self.eof && self.can_extract(max_pipeline)
    }

    /// May another frame be parsed off the read buffer right now? Unlike
    /// [`Conn::wants_read`] this stays true after peer EOF: bytes already in
    /// userspace owe nothing to the socket.
    pub fn can_extract(&self, max_pipeline: usize) -> bool {
        !self.input_dead && self.in_flight < max_pipeline.max(1)
    }

    /// Are there reply bytes waiting for the socket?
    pub fn wants_write(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    /// Nothing left to do: all output flushed and no more input or
    /// in-flight work can produce any. After a peer EOF, buffered complete
    /// frames count as pending work — they still get served.
    pub fn finished(&self) -> bool {
        !self.wants_write()
            && (self.closing
                || (self.in_flight == 0
                    && (self.input_dead || (self.eof && !self.has_buffered_frame()))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nodelay(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    fn frame(opcode: u8, payload: &[u8]) -> Vec<u8> {
        let mut f = Vec::new();
        f.extend_from_slice(&(1 + payload.len() as u32).to_le_bytes());
        f.push(opcode);
        f.extend_from_slice(payload);
        f
    }

    fn read_until(conn: &mut Conn, want: usize) {
        let t0 = std::time::Instant::now();
        while conn.read_buf.len() - conn.read_pos < want {
            conn.read_some().unwrap();
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "peer bytes never arrived"
            );
        }
    }

    #[test]
    fn parses_frames_split_at_arbitrary_boundaries() {
        let (mut peer, server) = pair();
        let mut conn = Conn::new(server);
        let f = frame(0x02, &[7, 8, 9, 10, 11]);
        // drip the frame one byte at a time; every prefix must parse as
        // Incomplete and the final byte must complete it
        for (i, b) in f.iter().enumerate() {
            peer.write_all(&[*b]).unwrap();
            read_until(&mut conn, i + 1);
            match conn.next_frame() {
                FrameStep::Incomplete if i + 1 < f.len() => {}
                FrameStep::Frame { opcode, payload } if i + 1 == f.len() => {
                    assert_eq!(opcode, 0x02);
                    assert_eq!(payload, vec![7, 8, 9, 10, 11]);
                    return;
                }
                step => panic!("unexpected step at byte {i}: {step:?}"),
            }
        }
    }

    #[test]
    fn parses_multiple_frames_from_one_read() {
        let (mut peer, server) = pair();
        let mut conn = Conn::new(server);
        let mut bytes = frame(0x01, b"aa");
        bytes.extend_from_slice(&frame(0x02, b"bbb"));
        bytes.extend_from_slice(&frame(0x03, b""));
        peer.write_all(&bytes).unwrap();
        read_until(&mut conn, bytes.len());
        for (op, body) in [(0x01u8, &b"aa"[..]), (0x02, b"bbb"), (0x03, b"")] {
            match conn.next_frame() {
                FrameStep::Frame { opcode, payload } => {
                    assert_eq!(opcode, op);
                    assert_eq!(payload, body);
                }
                step => panic!("expected frame {op:#x}, got {step:?}"),
            }
        }
        assert!(matches!(conn.next_frame(), FrameStep::Incomplete));
        conn.compact();
        assert!(conn.read_buf.is_empty());
    }

    #[test]
    fn zero_and_oversized_lengths_are_terminal() {
        for bad in [0u32, MAX_FRAME_LEN + 1, u32::MAX] {
            let (mut peer, server) = pair();
            let mut conn = Conn::new(server);
            peer.write_all(&bad.to_le_bytes()).unwrap();
            read_until(&mut conn, 4);
            match conn.next_frame() {
                FrameStep::BadLength(len) => assert_eq!(len, bad),
                step => panic!("expected BadLength, got {step:?}"),
            }
            // the stream is unrecoverable: no further parsing
            assert!(matches!(conn.next_frame(), FrameStep::Incomplete));
            assert!(!conn.wants_read(64));
        }
    }

    #[test]
    fn out_of_order_completion_writes_in_request_order() {
        let (_peer, server) = pair();
        let mut conn = Conn::new(server);
        let s0 = conn.begin_request();
        let s1 = conn.begin_request();
        let s2 = conn.begin_request();
        assert_eq!(conn.in_flight, 3);
        conn.finish(s2, Outcome::Reply(b"C".to_vec()));
        conn.finish(s0, Outcome::Reply(b"A".to_vec()));
        assert_eq!(
            &conn.write_buf, b"A",
            "seq 1 still pending holds seq 2 back"
        );
        conn.finish(s1, Outcome::Reply(b"B".to_vec()));
        assert_eq!(&conn.write_buf, b"ABC");
        assert_eq!(conn.in_flight, 0);
        assert!(!conn.finished(), "open connection with unflushed bytes");
    }

    #[test]
    fn v4_mode_writes_in_completion_order() {
        let (_peer, server) = pair();
        let mut conn = Conn::new(server);
        assert!(!conn.is_v4());
        conn.set_v4();
        assert!(conn.is_v4());
        let s0 = conn.begin_request();
        let s1 = conn.begin_request();
        let s2 = conn.begin_request();
        assert_eq!(conn.requests_begun(), 3);
        // completion order C, A, B flushes as C, A, B — the peer
        // correlates by request ID, not arrival order
        conn.finish(s2, Outcome::Reply(b"C".to_vec()));
        assert_eq!(&conn.write_buf, b"C", "no reorder hold-back in v4");
        conn.finish(s0, Outcome::Reply(b"A".to_vec()));
        conn.finish(s1, Outcome::Reply(b"B".to_vec()));
        assert_eq!(&conn.write_buf, b"CAB");
        assert_eq!(conn.in_flight, 0);
        // a close still gates later completions
        let s3 = conn.begin_request();
        let s4 = conn.begin_request();
        conn.finish(s3, Outcome::ReplyThenClose(b"!".to_vec()));
        conn.finish(s4, Outcome::Reply(b"late".to_vec()));
        assert_eq!(&conn.write_buf, b"CAB!");
    }

    #[test]
    fn close_carrying_outcome_stops_the_connection() {
        let (_peer, server) = pair();
        let mut conn = Conn::new(server);
        let s0 = conn.begin_request();
        let s1 = conn.begin_request();
        conn.finish(s0, Outcome::ReplyThenClose(b"bye".to_vec()));
        assert!(!conn.wants_read(64), "no reads after a close is queued");
        // a late completion for a later request is silently dropped
        conn.finish(s1, Outcome::Reply(b"late".to_vec()));
        assert_eq!(&conn.write_buf, b"bye");
    }

    #[test]
    fn backpressure_with_complete_head_frame_is_not_a_slow_peer() {
        let (mut peer, server) = pair();
        let mut conn = Conn::new(server);
        let mut bytes = frame(0x02, b"x");
        bytes.extend_from_slice(&frame(0x02, b"y"));
        peer.write_all(&bytes).unwrap();
        read_until(&mut conn, bytes.len());
        let FrameStep::Frame { .. } = conn.next_frame() else {
            panic!("first frame should parse");
        };
        // second frame is complete but unparsed (as if the pipeline cap
        // hit): the slow-peer clock must NOT run
        conn.update_read_deadline(Duration::from_millis(50), true);
        assert!(conn.read_deadline.is_none());
        // now a partial third frame heads the buffer: clock runs
        conn.compact();
        let FrameStep::Frame { .. } = conn.next_frame() else {
            panic!("second frame should parse");
        };
        peer.write_all(&[9, 9]).unwrap();
        read_until(&mut conn, 2);
        conn.update_read_deadline(Duration::from_millis(50), true);
        assert!(conn.read_deadline.is_some());
    }

    #[test]
    fn write_flush_clears_deadline_and_finishes_closing_conn() {
        let (mut peer, server) = pair();
        server.set_nonblocking(true).unwrap();
        let mut conn = Conn::new(server);
        let s0 = conn.begin_request();
        conn.finish(s0, Outcome::ReplyThenClose(b"done".to_vec()));
        assert!(conn.wants_write());
        conn.try_write(Duration::from_secs(1)).unwrap();
        assert!(!conn.wants_write());
        assert!(conn.write_deadline.is_none());
        assert!(conn.finished());
        let mut got = [0u8; 4];
        peer.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"done");
    }
}
