//! Deterministic fault injection for the solve service.
//!
//! A [`FaultPlan`] is a seeded list of rules, each binding a *site* (a named
//! point in the request path), an *action* (what goes wrong there), and a
//! *gate* (how often it fires). Plans are compiled in unconditionally —
//! there is no feature flag — but an empty plan is a single `Option`
//! check on the hot path, so production configurations pay nothing.
//!
//! Spec grammar (`trisolv serve --fault-spec`): clauses separated by `;`.
//!
//! ```text
//! seed=42;solve.panic=every:7;read.stall=prob:0.05,ms:20;write.torn=every:13
//! ```
//!
//! * `seed=<u64>` seeds the probabilistic gates (defaults to 0);
//! * every other clause is `<site>.<action>=<gate>[,ms:<dur>]` where the
//!   gate is `every:<n>` (fire on every n-th arrival at the site, exactly
//!   reproducible) or `prob:<p>` (fire with probability `p` from the
//!   seeded generator), and `ms:` sets the stall duration for `stall`
//!   actions (default 10 ms).
//!
//! Sites and the actions they accept:
//!
//! | site     | where it fires                                   | actions |
//! |----------|--------------------------------------------------|---------|
//! | `conn`   | connection handed to a worker                    | `drop` |
//! | `read`   | before reading a request frame                   | `stall`, `drop`, `bitflip` |
//! | `write`  | before writing a reply frame                     | `stall`, `drop`, `torn`, `bitflip` |
//! | `solve`  | inside the blocked solve (threaded executor)     | `panic`, `stall` |
//! | `factor` | inside `LOAD` factorization                      | `panic`, `stall` |
//! | `worker` | in the worker loop, outside all panic isolation  | `panic` |
//! | `cache`  | cached-factor lookup on the solve path           | `torn` |
//! | `store`  | snapshot write in the persistence thread         | `torn`, `stall`, `bitflip` |
//!
//! `torn` at the `write` site writes a truncated frame and then drops the
//! connection, which is exactly what a peer crash mid-`writev` looks like;
//! at the `cache` site it silently flips one bit in the resident factor's
//! values (keeping the integrity checksum of the *original*), which is what
//! undetected memory corruption looks like — the engine's verify cadence
//! must catch, evict, and refactor it. `worker.panic` kills the worker
//! thread itself, exercising the supervisor's respawn path. At the `store`
//! site, `torn` leaves a truncated snapshot at the *final* file name
//! (a crash between `write` and `fsync`), `stall` sleeps before the write
//! (widening the window a SIGKILL drill aims at), and `bitflip` flips one
//! payload byte after the trailer checksum was computed (silent media
//! corruption) — the recovery scan must discard all three without panicking.
//! At the `read` site, `bitflip` flips one byte of a parsed request payload
//! before it is decoded; at the `write` site it flips one byte of an
//! encoded reply frame after its v4 checksum trailer was computed. Both
//! model wire corruption that length framing cannot see: on a negotiated
//! v4 connection the receiver's checksum rejects the frame (`ERR Corrupt`
//! server-side, a counted drop at the router), while a legacy connection
//! silently carries the damage — which is the whole argument for v4.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use trisolv_matrix::rng::Rng;

/// A named point in the request path where faults can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A freshly accepted connection reaching its worker.
    Conn,
    /// About to read a request frame from the peer.
    Read,
    /// About to write a reply frame to the peer.
    Write,
    /// Inside the blocked solve executor.
    Solve,
    /// Inside `LOAD` factorization.
    Factor,
    /// The worker loop itself (outside panic isolation).
    Worker,
    /// Cached-factor lookup on the solve path (integrity drills).
    Cache,
    /// Snapshot write in the factor-store persistence thread.
    Store,
}

impl FaultSite {
    fn parse(s: &str) -> Result<FaultSite, String> {
        Ok(match s {
            "conn" => FaultSite::Conn,
            "read" => FaultSite::Read,
            "write" => FaultSite::Write,
            "solve" => FaultSite::Solve,
            "factor" => FaultSite::Factor,
            "worker" => FaultSite::Worker,
            "cache" => FaultSite::Cache,
            "store" => FaultSite::Store,
            other => {
                return Err(format!(
                    "unknown fault site {other:?} (conn|read|write|solve|factor|worker|cache|store)"
                ))
            }
        })
    }

    fn name(self) -> &'static str {
        match self {
            FaultSite::Conn => "conn",
            FaultSite::Read => "read",
            FaultSite::Write => "write",
            FaultSite::Solve => "solve",
            FaultSite::Factor => "factor",
            FaultSite::Worker => "worker",
            FaultSite::Cache => "cache",
            FaultSite::Store => "store",
        }
    }
}

/// What goes wrong when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Sleep for the given duration (read/write stall, slow solve).
    Stall(Duration),
    /// Panic on the current thread.
    Panic,
    /// Drop the connection without a reply.
    Drop,
    /// Write a truncated frame, then drop the connection.
    Torn,
    /// Flip one payload byte after checksums were computed (silent wire or
    /// media corruption; `read`, `write`, and `store` sites).
    BitFlip,
}

impl FaultAction {
    fn kind(&self) -> &'static str {
        match self {
            FaultAction::Stall(_) => "stall",
            FaultAction::Panic => "panic",
            FaultAction::Drop => "drop",
            FaultAction::Torn => "torn",
            FaultAction::BitFlip => "bitflip",
        }
    }
}

/// How often a rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Gate {
    /// Fire on every `n`-th arrival at the site (1-based, exactly
    /// reproducible regardless of seed).
    Every(u64),
    /// Fire with this probability, drawn from the plan's seeded generator.
    Prob(f64),
}

struct Rule {
    site: FaultSite,
    action: FaultAction,
    gate: Gate,
    /// Arrivals at this rule so far (drives `Gate::Every`).
    count: AtomicU64,
}

struct PlanInner {
    rules: Vec<Rule>,
    rng: Mutex<Rng>,
    injected: AtomicU64,
}

/// A seeded, thread-safe fault-injection plan. Cloning shares the plan's
/// counters (clones see the same `every:` cadence and injection totals).
#[derive(Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<PlanInner>>,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "FaultPlan(empty)"),
            Some(p) => {
                write!(f, "FaultPlan[")?;
                for (i, r) in p.rules.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{}.{}={:?}", r.site.name(), r.action.kind(), r.gate)?;
                }
                write!(f, "]")
            }
        }
    }
}

impl FaultPlan {
    /// A plan that never injects anything (the production default).
    pub fn none() -> FaultPlan {
        FaultPlan { inner: None }
    }

    /// Whether the plan has any rules at all.
    pub fn is_empty(&self) -> bool {
        self.inner.is_none()
    }

    /// Total faults injected so far (all sites).
    pub fn injected(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |p| p.injected.load(Ordering::Relaxed))
    }

    /// Parse a `--fault-spec` string. An empty string yields the empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(FaultPlan::none());
        }
        let mut seed = 0u64;
        let mut rules = Vec::new();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause {clause:?} missing '='"))?;
            if key == "seed" {
                seed = value
                    .parse()
                    .map_err(|e| format!("bad fault seed {value:?}: {e}"))?;
                continue;
            }
            let (site_s, action_s) = key
                .split_once('.')
                .ok_or_else(|| format!("fault key {key:?} is not <site>.<action>"))?;
            let site = FaultSite::parse(site_s)?;
            let mut gate = None;
            let mut stall_ms = 10u64;
            for part in value.split(',') {
                let (k, v) = part
                    .split_once(':')
                    .ok_or_else(|| format!("fault arg {part:?} is not <key>:<value>"))?;
                match k {
                    "every" => {
                        let n: u64 = v.parse().map_err(|e| format!("bad every:{v}: {e}"))?;
                        if n == 0 {
                            return Err("every:0 never fires; omit the rule instead".to_string());
                        }
                        gate = Some(Gate::Every(n));
                    }
                    "prob" => {
                        let p: f64 = v.parse().map_err(|e| format!("bad prob:{v}: {e}"))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(format!("prob:{v} outside [0, 1]"));
                        }
                        gate = Some(Gate::Prob(p));
                    }
                    "ms" => {
                        stall_ms = v.parse().map_err(|e| format!("bad ms:{v}: {e}"))?;
                    }
                    other => return Err(format!("unknown fault arg {other:?} (every|prob|ms)")),
                }
            }
            let gate =
                gate.ok_or_else(|| format!("fault clause {clause:?} needs every: or prob:"))?;
            let action = match action_s {
                "stall" => FaultAction::Stall(Duration::from_millis(stall_ms)),
                "panic" => FaultAction::Panic,
                "drop" => FaultAction::Drop,
                "torn" => FaultAction::Torn,
                "bitflip" => FaultAction::BitFlip,
                other => {
                    return Err(format!(
                        "unknown fault action {other:?} (stall|panic|drop|torn|bitflip)"
                    ))
                }
            };
            let allowed: &[&str] = match site {
                FaultSite::Conn => &["drop"],
                FaultSite::Read => &["stall", "drop", "bitflip"],
                FaultSite::Write => &["stall", "drop", "torn", "bitflip"],
                FaultSite::Solve | FaultSite::Factor => &["panic", "stall"],
                FaultSite::Worker => &["panic"],
                FaultSite::Cache => &["torn"],
                FaultSite::Store => &["torn", "stall", "bitflip"],
            };
            if !allowed.contains(&action.kind()) {
                return Err(format!(
                    "fault action {:?} not valid at site {:?} (allowed: {})",
                    action.kind(),
                    site.name(),
                    allowed.join("|")
                ));
            }
            rules.push(Rule {
                site,
                action,
                gate,
                count: AtomicU64::new(0),
            });
        }
        if rules.is_empty() {
            return Ok(FaultPlan::none());
        }
        Ok(FaultPlan {
            inner: Some(Arc::new(PlanInner {
                rules,
                rng: Mutex::new(Rng::seed_from_u64(seed)),
                injected: AtomicU64::new(0),
            })),
        })
    }

    /// Should a fault fire at `site` right now? Returns the action to take.
    /// Costs one `Option` check when the plan is empty.
    #[inline]
    pub fn check(&self, site: FaultSite) -> Option<FaultAction> {
        let inner = self.inner.as_ref()?;
        for rule in &inner.rules {
            if rule.site != site {
                continue;
            }
            let fire = match rule.gate {
                Gate::Every(n) => (rule.count.fetch_add(1, Ordering::Relaxed) + 1) % n == 0,
                Gate::Prob(p) => {
                    let mut rng = inner.rng.lock().unwrap_or_else(|e| e.into_inner());
                    rng.bool(p)
                }
            };
            if fire {
                inner.injected.fetch_add(1, Ordering::Relaxed);
                return Some(rule.action);
            }
        }
        None
    }

    /// [`check`](FaultPlan::check), then immediately honor `Stall` (sleep)
    /// and `Panic` (panic) actions in place; `Drop`/`Torn` are returned for
    /// the caller to act on, since only it owns the connection.
    ///
    /// # Panics
    /// When a `panic` rule fires — that is the point.
    pub fn trip(&self, site: FaultSite) -> Option<FaultAction> {
        match self.check(site)? {
            FaultAction::Stall(d) => {
                std::thread::sleep(d);
                None
            }
            FaultAction::Panic => {
                panic!("injected fault: panic at site {}", site.name());
            }
            other => Some(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_specs_yield_empty_plans() {
        for spec in ["", "   ", ";;"] {
            let plan = FaultPlan::parse(spec).unwrap();
            assert!(plan.is_empty());
            assert_eq!(plan.check(FaultSite::Solve), None);
            assert_eq!(plan.injected(), 0);
        }
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn every_gate_fires_exactly_each_nth() {
        let plan = FaultPlan::parse("solve.panic=every:3").unwrap();
        let fired: Vec<bool> = (0..9)
            .map(|_| plan.check(FaultSite::Solve).is_some())
            .collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(plan.injected(), 3);
        // other sites are untouched
        assert_eq!(plan.check(FaultSite::Read), None);
    }

    #[test]
    fn prob_gate_is_seeded_and_reproducible() {
        let a = FaultPlan::parse("seed=9;read.drop=prob:0.5").unwrap();
        let b = FaultPlan::parse("seed=9;read.drop=prob:0.5").unwrap();
        let fa: Vec<bool> = (0..64)
            .map(|_| a.check(FaultSite::Read).is_some())
            .collect();
        let fb: Vec<bool> = (0..64)
            .map(|_| b.check(FaultSite::Read).is_some())
            .collect();
        assert_eq!(fa, fb, "same seed, same firing sequence");
        assert!(fa.iter().any(|&f| f) && fa.iter().any(|&f| !f));
        // prob:0 never fires, prob:1 always fires
        let never = FaultPlan::parse("read.drop=prob:0").unwrap();
        assert!((0..32).all(|_| never.check(FaultSite::Read).is_none()));
        let always = FaultPlan::parse("read.drop=prob:1").unwrap();
        assert!((0..32).all(|_| always.check(FaultSite::Read).is_some()));
    }

    #[test]
    fn stall_duration_and_action_mapping() {
        let plan =
            FaultPlan::parse("read.stall=every:1,ms:25;write.torn=every:1;conn.drop=every:1")
                .unwrap();
        assert_eq!(
            plan.check(FaultSite::Read),
            Some(FaultAction::Stall(Duration::from_millis(25)))
        );
        assert_eq!(plan.check(FaultSite::Write), Some(FaultAction::Torn));
        assert_eq!(plan.check(FaultSite::Conn), Some(FaultAction::Drop));
        let cache = FaultPlan::parse("cache.torn=every:2").unwrap();
        assert_eq!(cache.check(FaultSite::Cache), None);
        assert_eq!(cache.check(FaultSite::Cache), Some(FaultAction::Torn));
        let store = FaultPlan::parse("store.bitflip=every:1;store.torn=every:2").unwrap();
        assert_eq!(store.check(FaultSite::Store), Some(FaultAction::BitFlip));
        // wire-corruption drills: bitflip is legal at read and write
        let wire = FaultPlan::parse("read.bitflip=every:1;write.bitflip=every:1").unwrap();
        assert_eq!(wire.check(FaultSite::Read), Some(FaultAction::BitFlip));
        assert_eq!(wire.check(FaultSite::Write), Some(FaultAction::BitFlip));
    }

    #[test]
    fn trip_sleeps_stalls_and_returns_connection_actions() {
        let plan = FaultPlan::parse("read.stall=every:1,ms:5;write.drop=every:1").unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(plan.trip(FaultSite::Read), None, "stall handled in place");
        assert!(t0.elapsed() >= Duration::from_millis(4));
        assert_eq!(plan.trip(FaultSite::Write), Some(FaultAction::Drop));
    }

    #[test]
    fn trip_panics_on_panic_rules() {
        let plan = FaultPlan::parse("solve.panic=every:1").unwrap();
        let err = std::panic::catch_unwind(|| plan.trip(FaultSite::Solve)).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("injected fault"), "{msg}");
    }

    #[test]
    fn bad_specs_are_rejected_with_messages() {
        for (spec, frag) in [
            ("solve", "missing '='"),
            ("solvepanic=every:1", "not <site>.<action>"),
            ("warp.panic=every:1", "unknown fault site"),
            ("solve.melt=every:1", "unknown fault action"),
            ("solve.panic=often:1", "unknown fault arg"),
            ("solve.panic=ms:5", "needs every: or prob:"),
            ("solve.panic=every:0", "never fires"),
            ("solve.panic=prob:1.5", "outside [0, 1]"),
            ("read.panic=every:1", "not valid at site"),
            ("conn.torn=every:1", "not valid at site"),
            ("cache.panic=every:1", "not valid at site"),
            ("store.drop=every:1", "not valid at site"),
            ("solve.bitflip=every:1", "not valid at site"),
            ("seed=banana;solve.panic=every:1", "bad fault seed"),
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(err.contains(frag), "spec {spec:?}: {err}");
        }
    }

    #[test]
    fn clones_share_counters() {
        let plan = FaultPlan::parse("solve.panic=every:2").unwrap();
        let clone = plan.clone();
        assert_eq!(plan.check(FaultSite::Solve), None);
        assert_eq!(clone.check(FaultSite::Solve), Some(FaultAction::Panic));
        assert_eq!(plan.injected(), 1);
        assert_eq!(clone.injected(), 1);
    }
}
