//! LRU factor cache: keeps factorizations resident between requests.
//!
//! A cache entry bundles everything the solve path needs — the permutation
//! and numeric factor with its [`SolvePlan`] ([`SparseCholeskySolver`]),
//! the precomputed [`SubtreeSchedule`] for the engine's executor width,
//! the entry's [`BatchLane`], and a pool of reusable [`SolveWorkspace`]s —
//! behind one `Arc`, so a request holds the entry alive even if it is
//! evicted mid-solve. Eviction is strict LRU under a configurable byte
//! budget; the most recently inserted entry is always admitted (a single
//! factor larger than the budget still gets cached, it just evicts
//! everything else).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use trisolv_core::{
    SolvePlan, SolveWorkspace, SparseCholeskySolver, SparseCholeskySolverF32, SubtreeSchedule,
};
use trisolv_graph::Permutation;
use trisolv_matrix::{CscMatrix, DenseMatrix};

use crate::batch::BatchLane;
use crate::engine::EngineError;
use crate::fingerprint::Fingerprint;

/// How many idle workspaces an entry keeps for reuse.
const WORKSPACE_POOL_CAP: usize = 4;

/// Lock, recovering from poison. Cache state is a map of immutable
/// `Arc<FactorEntry>`s plus monotone counters — a panic mid-critical-section
/// cannot leave it torn, so inheriting the guard is always safe (and one
/// panicked request must not take the whole cache down with it).
fn lock_cache<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The resident numeric representation of a cached factor: the full `f64`
/// solver, or its demoted `f32` twin.
///
/// Factorization always runs in `f64`; the `F32` lane exists only as a
/// cache-insert demotion (`--precision f32|auto`). Direct solves on the
/// narrow lane stream half the factor bytes and answer at `f32` accuracy;
/// certified solves refine back to the full `f64` componentwise target
/// against the retained matrix (falling back to an `f64` refactorization
/// when refinement stagnates — see the engine's precision ladder).
#[derive(Clone)]
pub enum SolverLane {
    /// Full-precision resident factor.
    F64(SparseCholeskySolver),
    /// Demoted resident factor (half the value bytes).
    F32(SparseCholeskySolverF32),
}

impl From<SparseCholeskySolver> for SolverLane {
    fn from(s: SparseCholeskySolver) -> SolverLane {
        SolverLane::F64(s)
    }
}

impl From<SparseCholeskySolverF32> for SolverLane {
    fn from(s: SparseCholeskySolverF32) -> SolverLane {
        SolverLane::F32(s)
    }
}

impl SolverLane {
    /// Matrix order.
    pub fn n(&self) -> usize {
        match self {
            SolverLane::F64(s) => s.factor_matrix().n(),
            SolverLane::F32(s) => s.factor_matrix().n(),
        }
    }

    /// Nonzeros in the numeric factor (at or below the diagonal).
    pub fn factor_nnz(&self) -> usize {
        match self {
            SolverLane::F64(s) => s.factor_matrix().nnz(),
            SolverLane::F32(s) => s.factor_matrix().nnz(),
        }
    }

    /// Total stored factor values (Σ trapezoid height·width).
    pub fn value_count(&self) -> usize {
        match self {
            SolverLane::F64(s) => s.factor_matrix().value_count(),
            SolverLane::F32(s) => s.factor_matrix().value_count(),
        }
    }

    /// Total row-index entries across all supernode row lists — the
    /// factor's *structural* storage, one `usize` per trapezoid row (not
    /// per nonzero: the blocks themselves are dense).
    pub fn structure_rows(&self) -> usize {
        let part = match self {
            SolverLane::F64(s) => s.factor_matrix().partition(),
            SolverLane::F32(s) => s.factor_matrix().partition(),
        };
        (0..part.nsup()).map(|s| part.height(s)).sum()
    }

    /// Bytes per stored factor value: 8 for `f64`, 4 for `f32`. This is
    /// what makes the cache's byte accounting honest about demotion — a
    /// fixed budget holds roughly twice as many demoted factors.
    pub fn bytes_per_value(&self) -> usize {
        match self {
            SolverLane::F64(_) => 8,
            SolverLane::F32(_) => 4,
        }
    }

    /// `true` for the demoted lane.
    pub fn is_f32(&self) -> bool {
        matches!(self, SolverLane::F32(_))
    }

    /// Human-readable precision tag (`"f64"` / `"f32"`).
    pub fn precision_name(&self) -> &'static str {
        match self {
            SolverLane::F64(_) => "f64",
            SolverLane::F32(_) => "f32",
        }
    }

    /// The solve plan built at factor time.
    pub fn plan(&self) -> &SolvePlan {
        match self {
            SolverLane::F64(s) => s.plan(),
            SolverLane::F32(s) => s.plan(),
        }
    }

    /// The combined permutation (fill-reducing ∘ postorder).
    pub fn perm(&self) -> &Permutation {
        match self {
            SolverLane::F64(s) => s.perm(),
            SolverLane::F32(s) => s.perm(),
        }
    }

    /// Diagonal perturbations recorded by the (f64) factorization.
    pub fn perturbations(&self) -> &[(usize, f64)] {
        match self {
            SolverLane::F64(s) => s.factor_matrix().perturbations(),
            SolverLane::F32(s) => s.factor_matrix().perturbations(),
        }
    }

    /// Sequential solve on whichever lane is resident (`f64` in, `f64`
    /// out; the narrow lane converts at its boundaries).
    pub fn solve(&self, b: &DenseMatrix) -> DenseMatrix {
        match self {
            SolverLane::F64(s) => s.solve(b),
            SolverLane::F32(s) => s.solve(b),
        }
    }

    /// Digest of the resident factor's value blocks at their native
    /// width (two-lane FNV over the stored bit patterns).
    pub fn digest(&self) -> Fingerprint {
        match self {
            SolverLane::F64(s) => {
                let f = s.factor_matrix();
                Fingerprint::of_value_slices((0..f.nsup()).map(|s| f.block(s).as_slice()))
            }
            SolverLane::F32(s) => {
                let f = s.factor_matrix();
                Fingerprint::of_value_slices_f32((0..f.nsup()).map(|s| f.values(s)))
            }
        }
    }

    /// The full-precision solver, when resident.
    pub fn as_f64(&self) -> Option<&SparseCholeskySolver> {
        match self {
            SolverLane::F64(s) => Some(s),
            SolverLane::F32(_) => None,
        }
    }

    /// The demoted solver, when resident.
    pub fn as_f32(&self) -> Option<&SparseCholeskySolverF32> {
        match self {
            SolverLane::F64(_) => None,
            SolverLane::F32(s) => Some(s),
        }
    }
}

/// A resident factorization plus everything needed to serve solves on it.
pub struct FactorEntry {
    /// Content hash this entry is keyed by.
    pub fingerprint: Fingerprint,
    /// Matrix order.
    pub n: usize,
    /// The original matrix this entry was factored from — retained for
    /// iterative refinement (residuals need `A`, not `L`) and for
    /// self-healing refactorization after integrity-check failures.
    pub matrix: CscMatrix,
    /// Permutation + supernodal Cholesky factor + solve plan, in whichever
    /// precision lane this entry is resident.
    pub solver: SolverLane,
    /// Subtree-to-thread schedule precomputed for the engine's configured
    /// executor width, so batched solves never rebuild it.
    pub schedule: SubtreeSchedule,
    /// Micro-batching rendezvous for this factor's solve requests.
    pub lane: BatchLane<EngineError>,
    /// Estimated resident size, used for the eviction budget.
    pub bytes: usize,
    /// Digest of the factor's value blocks taken at construction; the
    /// integrity cadence re-digests and compares (see
    /// [`FactorEntry::verify`]).
    pub checksum: Fingerprint,
    /// Solves served by this entry (drives the verify cadence).
    solves: AtomicU64,
    workspaces: Mutex<Vec<SolveWorkspace>>,
    workspaces32: Mutex<Vec<SolveWorkspace<f32>>>,
}

impl FactorEntry {
    /// Bundle a factored solver into a cache entry, precomputing the
    /// subtree schedule for a `solver_threads`-wide executor and digesting
    /// the factor values for later integrity checks.
    pub fn new(
        fingerprint: Fingerprint,
        matrix: CscMatrix,
        solver: impl Into<SolverLane>,
        solver_threads: usize,
        lane: BatchLane<EngineError>,
    ) -> FactorEntry {
        let solver = solver.into();
        let n = solver.n();
        // Estimate charging the *stored* factor values at their native
        // width (8 B/value f64, 4 B/value f32 — demotion halves the
        // dominant term), plus supernode row lists (8 B per trapezoid row;
        // the dense blocks carry no per-nonzero indices), the retained f64
        // matrix arrays (~16 B/nnz), and plan/permutation/supernode
        // metadata (~96 B/row).
        let bytes = solver.value_count() * solver.bytes_per_value()
            + solver.structure_rows() * 8
            + matrix.nnz() * 16
            + n * 96;
        let schedule = solver.plan().subtree_schedule(solver_threads.max(1));
        let checksum = solver.digest();
        FactorEntry {
            fingerprint,
            n,
            matrix,
            solver,
            schedule,
            lane,
            bytes,
            checksum,
            solves: AtomicU64::new(0),
            workspaces: Mutex::new(Vec::new()),
            workspaces32: Mutex::new(Vec::new()),
        }
    }

    /// Re-digest the factor values and compare against the checksum taken
    /// at construction. `false` means the resident factor no longer matches
    /// what was inserted — silent corruption.
    pub fn verify(&self) -> bool {
        self.solver.digest() == self.checksum
    }

    /// Count one solve against this entry; returns the new total. The
    /// engine uses the running count to trigger periodic verification.
    pub fn note_solve(&self) -> u64 {
        self.solves.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Fault-injection hook (`cache.torn`): a clone of this entry whose
    /// factor has one value's lowest mantissa bit flipped but whose
    /// *checksum is the original* — exactly what silent in-memory
    /// corruption of a resident factor looks like to the integrity check.
    pub fn corrupted_clone(
        &self,
        solver_threads: usize,
        lane: BatchLane<EngineError>,
    ) -> FactorEntry {
        let mut solver = self.solver.clone();
        match &mut solver {
            SolverLane::F64(s) => {
                let f = s.factor_matrix_mut();
                if f.nsup() > 0 {
                    if let Some(v) = f.block_mut(0).as_mut_slice().first_mut() {
                        *v = f64::from_bits(v.to_bits() ^ 1);
                    }
                }
            }
            SolverLane::F32(s) => {
                let f = s.factor_matrix_mut();
                if f.nsup() > 0 {
                    if let Some(v) = f.values_mut(0).first_mut() {
                        *v = f32::from_bits(v.to_bits() ^ 1);
                    }
                }
            }
        }
        let mut entry = FactorEntry::new(
            self.fingerprint,
            self.matrix.clone(),
            solver,
            solver_threads,
            lane,
        );
        entry.checksum = self.checksum;
        entry
    }

    /// The solve plan built at factor time (shared with the solver).
    pub fn plan(&self) -> &SolvePlan {
        self.solver.plan()
    }

    /// Take a pooled `f64` workspace (or make a fresh one sized for
    /// `nrhs`). Workspaces auto-grow, so any pooled one fits any batch
    /// width.
    pub fn take_workspace(&self, nrhs: usize) -> SolveWorkspace {
        let pooled = lock_cache(&self.workspaces).pop();
        pooled.unwrap_or_else(|| SolveWorkspace::new(self.solver.plan(), nrhs))
    }

    /// Return an `f64` workspace to the pool (dropped if the pool is full).
    pub fn put_workspace(&self, ws: SolveWorkspace) {
        let mut pool = lock_cache(&self.workspaces);
        if pool.len() < WORKSPACE_POOL_CAP {
            pool.push(ws);
        }
    }

    /// Take a pooled `f32` workspace for the demoted lane's threaded
    /// executor (or make a fresh one sized for `nrhs`).
    pub fn take_workspace32(&self, nrhs: usize) -> SolveWorkspace<f32> {
        let pooled = lock_cache(&self.workspaces32).pop();
        pooled.unwrap_or_else(|| SolveWorkspace::new(self.solver.plan(), nrhs))
    }

    /// Return an `f32` workspace to the pool (dropped if the pool is full).
    pub fn put_workspace32(&self, ws: SolveWorkspace<f32>) {
        let mut pool = lock_cache(&self.workspaces32);
        if pool.len() < WORKSPACE_POOL_CAP {
            pool.push(ws);
        }
    }
}

/// Outcome of a cache insert: whether the entry was newly admitted, and
/// which resident entries the byte budget pushed out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Admitted {
    /// `true` if the entry was not previously resident.
    pub fresh: bool,
    /// Fingerprints evicted by the LRU policy to make room.
    pub evicted: Vec<Fingerprint>,
}

/// Counters and occupancy reported by `STATS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a resident factor.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by the LRU policy (explicit evictions not counted).
    pub evictions: u64,
    /// Resident entry count.
    pub entries: usize,
    /// Estimated resident bytes across all entries.
    pub resident_bytes: usize,
}

struct Slot {
    entry: Arc<FactorEntry>,
    last_used: u64,
}

struct CacheInner {
    map: HashMap<Fingerprint, Slot>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    resident_bytes: usize,
}

/// Thread-safe LRU cache of [`FactorEntry`]s under a byte budget.
pub struct FactorCache {
    budget_bytes: usize,
    inner: Mutex<CacheInner>,
}

impl FactorCache {
    /// An empty cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> FactorCache {
        FactorCache {
            budget_bytes,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
                resident_bytes: 0,
            }),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Look up a factor, marking it most-recently-used. Counts a hit or a
    /// miss.
    pub fn get(&self, fp: Fingerprint) -> Option<Arc<FactorEntry>> {
        let mut g = lock_cache(&self.inner);
        g.tick += 1;
        let tick = g.tick;
        match g.map.get_mut(&fp) {
            Some(slot) => {
                slot.last_used = tick;
                let entry = Arc::clone(&slot.entry);
                g.hits += 1;
                Some(entry)
            }
            None => {
                g.misses += 1;
                None
            }
        }
    }

    /// Is the factor resident? (No hit/miss accounting, no LRU touch.)
    pub fn peek(&self, fp: Fingerprint) -> Option<Arc<FactorEntry>> {
        let g = lock_cache(&self.inner);
        g.map.get(&fp).map(|s| Arc::clone(&s.entry))
    }

    /// Insert an entry (most-recently-used), then evict least-recently-used
    /// *other* entries until the estimated resident size fits the budget.
    /// The outcome reports `fresh == false` (resident entry kept) if the
    /// fingerprint was already cached, and lists every LRU victim so the
    /// persistence layer can delete their snapshots.
    pub fn insert(&self, entry: Arc<FactorEntry>) -> Admitted {
        let mut g = lock_cache(&self.inner);
        g.tick += 1;
        let tick = g.tick;
        if let Some(slot) = g.map.get_mut(&entry.fingerprint) {
            slot.last_used = tick;
            return Admitted {
                fresh: false,
                evicted: Vec::new(),
            };
        }
        g.resident_bytes += entry.bytes;
        let new_fp = entry.fingerprint;
        g.map.insert(
            new_fp,
            Slot {
                entry,
                last_used: tick,
            },
        );
        let mut evicted = Vec::new();
        while g.resident_bytes > self.budget_bytes && g.map.len() > 1 {
            let victim = g
                .map
                .iter()
                .filter(|(fp, _)| **fp != new_fp)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(fp, _)| *fp)
                .expect("len > 1 so another entry exists");
            let gone = g.map.remove(&victim).unwrap();
            g.resident_bytes -= gone.entry.bytes;
            g.evictions += 1;
            evicted.push(victim);
        }
        Admitted {
            fresh: true,
            evicted,
        }
    }

    /// Swap the resident entry for `entry.fingerprint` in place, keeping
    /// its LRU position (self-healing must not perturb eviction order).
    /// Falls back to a plain insert when the fingerprint is not resident.
    /// Returns `true` when an existing entry was replaced.
    pub fn replace(&self, entry: Arc<FactorEntry>) -> bool {
        {
            let mut g = lock_cache(&self.inner);
            if let Some(slot) = g.map.get_mut(&entry.fingerprint) {
                let old_bytes = slot.entry.bytes;
                let new_bytes = entry.bytes;
                slot.entry = entry;
                g.resident_bytes = g.resident_bytes - old_bytes + new_bytes;
                return true;
            }
        }
        self.insert(entry);
        false
    }

    /// Drop a factor explicitly. Returns whether it was resident.
    pub fn evict(&self, fp: Fingerprint) -> bool {
        let mut g = lock_cache(&self.inner);
        match g.map.remove(&fp) {
            Some(slot) => {
                g.resident_bytes -= slot.entry.bytes;
                true
            }
            None => false,
        }
    }

    /// All resident entries (unordered; no LRU touch). Used by quiescence
    /// checks that want to inspect every lane.
    pub fn entries(&self) -> Vec<Arc<FactorEntry>> {
        let g = lock_cache(&self.inner);
        g.map.values().map(|s| Arc::clone(&s.entry)).collect()
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let g = lock_cache(&self.inner);
        CacheStats {
            hits: g.hits,
            misses: g.misses,
            evictions: g.evictions,
            entries: g.map.len(),
            resident_bytes: g.resident_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchOptions;
    use trisolv_matrix::gen;

    fn entry_for(spec: &str) -> Arc<FactorEntry> {
        let a = gen::from_spec(spec).unwrap();
        let fp = Fingerprint::of_matrix(&a);
        let solver = SparseCholeskySolver::factor(&a).unwrap();
        Arc::new(FactorEntry::new(
            fp,
            a,
            solver,
            2,
            BatchLane::new(BatchOptions::default()),
        ))
    }

    #[test]
    fn hit_miss_accounting_and_peek() {
        let cache = FactorCache::new(usize::MAX);
        let e = entry_for("grid2d:6");
        let fp = e.fingerprint;
        assert!(cache.get(fp).is_none());
        assert!(cache.insert(Arc::clone(&e)).fresh);
        assert!(!cache.insert(e).fresh, "re-insert reports already cached");
        assert!(cache.get(fp).is_some());
        assert!(cache.peek(fp).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.resident_bytes > 0);
    }

    #[test]
    fn lru_eviction_under_budget() {
        let a = entry_for("grid2d:8");
        let b = entry_for("grid2d:9");
        let c = entry_for("grid2d:10");
        // Budget fits roughly two of the three entries.
        let cache = FactorCache::new(a.bytes + b.bytes + c.bytes / 2);
        cache.insert(Arc::clone(&a));
        cache.insert(Arc::clone(&b));
        // Touch `a` so `b` is the LRU victim.
        assert!(cache.get(a.fingerprint).is_some());
        let admitted = cache.insert(Arc::clone(&c));
        assert!(admitted.fresh);
        assert_eq!(admitted.evicted, vec![b.fingerprint], "victim is reported");
        assert!(
            cache.peek(a.fingerprint).is_some(),
            "recently used survives"
        );
        assert!(cache.peek(b.fingerprint).is_none(), "LRU entry evicted");
        assert!(cache.peek(c.fingerprint).is_some(), "new entry admitted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn checksum_verifies_and_detects_corruption() {
        let e = entry_for("grid2d:7");
        assert!(e.verify(), "fresh entry must verify");
        assert_eq!(e.note_solve(), 1);
        assert_eq!(e.note_solve(), 2);
        let bad = e.corrupted_clone(2, BatchLane::new(BatchOptions::default()));
        assert_eq!(bad.fingerprint, e.fingerprint);
        assert_eq!(bad.checksum, e.checksum, "corruption keeps the old digest");
        assert!(!bad.verify(), "flipped bit must be detected");
    }

    #[test]
    fn replace_swaps_in_place_keeping_lru_position() {
        let a = entry_for("grid2d:8");
        let b = entry_for("grid2d:9");
        let cache = FactorCache::new(usize::MAX);
        cache.insert(Arc::clone(&a));
        cache.insert(Arc::clone(&b));
        let bytes_before = cache.stats().resident_bytes;
        let healed = Arc::new(a.corrupted_clone(2, BatchLane::new(BatchOptions::default())));
        assert!(cache.replace(Arc::clone(&healed)));
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().resident_bytes, bytes_before);
        let got = cache.peek(a.fingerprint).unwrap();
        assert!(Arc::ptr_eq(&got, &healed), "lookup sees the replacement");
        // replacing a non-resident fingerprint degrades to insert
        let c = entry_for("grid2d:10");
        assert!(!cache.replace(Arc::clone(&c)));
        assert!(cache.peek(c.fingerprint).is_some());
    }

    #[test]
    fn oversized_entry_still_admitted() {
        let cache = FactorCache::new(1);
        let e = entry_for("grid2d:6");
        cache.insert(Arc::clone(&e));
        assert!(cache.peek(e.fingerprint).is_some());
        assert!(cache.evict(e.fingerprint));
        assert!(!cache.evict(e.fingerprint));
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().resident_bytes, 0);
    }

    fn lane_entry(a: &CscMatrix, f32_lane: bool) -> Arc<FactorEntry> {
        let fp = Fingerprint::of_matrix(a);
        let solver = SparseCholeskySolver::factor(a).unwrap();
        let lane = if f32_lane {
            SolverLane::F32(solver.demote())
        } else {
            SolverLane::F64(solver)
        };
        Arc::new(FactorEntry::new(
            fp,
            a.clone(),
            lane,
            2,
            BatchLane::new(BatchOptions::default()),
        ))
    }

    #[test]
    fn demotion_saves_exactly_four_bytes_per_stored_value() {
        let a = gen::from_spec("grid2d:24").unwrap();
        let e64 = lane_entry(&a, false);
        let e32 = lane_entry(&a, true);
        assert_eq!(e64.solver.value_count(), e32.solver.value_count());
        // Only the value width differs between the lanes' accounting: the
        // retained matrix, row lists, and per-row metadata are charged
        // identically.
        assert_eq!(e64.bytes - e32.bytes, 4 * e64.solver.value_count());
    }

    #[test]
    fn fixed_budget_holds_more_f32_factors_before_evicting() {
        // Same structure, distinct fingerprints: scaling an SPD matrix by
        // a positive constant keeps it SPD and leaves the factor shape
        // (hence the entry size) unchanged.
        let base = gen::grid3d_laplacian(12, 12, 12);
        let variants: Vec<CscMatrix> = (0..5)
            .map(|k| {
                let vals: Vec<f64> = base.values().iter().map(|v| v * (1.0 + k as f64)).collect();
                CscMatrix::from_parts(
                    base.nrows(),
                    base.ncols(),
                    base.colptr().to_vec(),
                    base.rowidx().to_vec(),
                    vals,
                )
                .unwrap()
            })
            .collect();
        let e64: Vec<_> = variants.iter().map(|a| lane_entry(a, false)).collect();
        let e32: Vec<_> = variants.iter().map(|a| lane_entry(a, true)).collect();
        let (b64, b32) = (e64[0].bytes, e32[0].bytes);
        assert!(e64.iter().all(|e| e.bytes == b64), "uniform entry size");
        assert!(e32.iter().all(|e| e.bytes == b32), "uniform entry size");

        // A budget that admits exactly two f64 residents...
        let budget = 2 * b64 + b64 / 4;
        let cache = FactorCache::new(budget);
        for e in &e64[..3] {
            cache.insert(Arc::clone(e));
        }
        assert_eq!(cache.stats().entries, 2, "third f64 insert evicts");

        // ...holds at least three f32 residents: the factor payload itself
        // halves exactly; the retained matrix and symbolic structure are
        // overhead both lanes pay, which is what keeps the entry-level
        // gain below the ideal 2x on small problems.
        let n32 = (budget / b32).min(e32.len() - 1);
        assert!(n32 >= 3, "f32 capacity gain too small: {b64} vs {b32}");
        let cache = FactorCache::new(budget);
        for e in e32.iter().take(n32) {
            cache.insert(Arc::clone(e));
        }
        assert_eq!(cache.stats().entries, n32, "all narrow entries resident");
        cache.insert(Arc::clone(&e32[n32]));
        assert_eq!(
            cache.stats().entries,
            n32,
            "one-past-capacity f32 insert finally evicts"
        );
    }
}
