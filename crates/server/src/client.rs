//! Blocking client for the solve service.
//!
//! One [`Client`] wraps one TCP connection and issues one request at a
//! time; concurrency comes from opening more connections, which is exactly
//! what feeds the server-side micro-batcher.
//!
//! Protocol v4 (opt-out via [`ClientOptions::max_version`]): clients built
//! by [`Client::connect_with`] open with a `HELLO` handshake. Against a v4
//! peer every subsequent frame carries a 64-bit request id plus a payload
//! checksum trailer; the client verifies both on every reply — an id
//! mismatch or checksum failure surfaces as [`ClientError::Protocol`],
//! which [`Client::solve_with_retry`] treats as transient across a
//! mandatory reconnect. Against an older peer the handshake is answered
//! with `ERR UnknownOpcode` and the client falls back to the legacy (v3)
//! framing on the same connection, so mixed-version fleets keep working
//! during rolling upgrades.
//!
//! Resilience (new in the hardening pass) is opt-in through
//! [`ClientOptions`]: connect/request timeouts, transparent reconnect, and
//! [`Client::solve_with_retry`], which retries transient failures —
//! `Busy` sheds (honoring the server's `retry_after_ms` hint), deadline
//! misses, and broken connections — under capped exponential backoff with
//! seeded jitter. Permanent errors (unknown fingerprint, dimension
//! mismatch, non-finite input, …) are never retried.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use trisolv_matrix::rng::Rng;
use trisolv_matrix::CscMatrix;

use crate::fingerprint::Fingerprint;
use crate::protocol::{
    op, parse_err, read_frame, unwrap_v4, wrap_v4, write_frame, Builder, Cursor, EnvelopeError,
    ErrorCode, PROTOCOL_VERSION, SOLVE_FLAG_CERTIFIED,
};

/// Client-visible failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Socket-level failure.
    Io(String),
    /// The server's bytes did not decode as a valid reply.
    Protocol(String),
    /// The server answered with a structured `ERR` frame.
    Server {
        /// Wire error code (`None` if the code was unrecognized).
        code: Option<ErrorCode>,
        /// Human-readable message from the server.
        message: String,
        /// Backoff hint from a `Busy` shed, if the server sent one.
        retry_after_ms: Option<u64>,
    },
}

impl ClientError {
    /// Whether a retry could plausibly succeed: transport failures (the
    /// peer may be back), `Busy` sheds, and deadline/timeout misses.
    /// `Protocol` errors are transient only across a *reconnect* — the
    /// stream that produced one is desynchronized and must never be
    /// reused; [`Client::solve_with_retry`] enforces that.
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Io(_) | ClientError::Protocol(_) => true,
            ClientError::Server { code, .. } => matches!(
                code,
                Some(ErrorCode::Busy)
                    | Some(ErrorCode::Deadline)
                    | Some(ErrorCode::Timeout)
                    | Some(ErrorCode::Corrupt)
            ),
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(m) => write!(f, "io error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message, .. } => {
                write!(f, "server error ({code:?}): {message}")
            }
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e.to_string())
    }
}

/// Reply to a successful `LOAD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReply {
    /// Fingerprint the factor is cached under.
    pub fingerprint: Fingerprint,
    /// Matrix order.
    pub n: usize,
    /// Nonzeros in the numeric factor.
    pub factor_nnz: usize,
    /// Whether the factor was already resident.
    pub already_cached: bool,
}

/// Reply to a successful certified `SOLVE` (protocol v3, flags bit 0): the
/// refined solution plus its refinement certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct CertifiedReply {
    /// The refined solution.
    pub x: Vec<f64>,
    /// Refinement iterations the server performed.
    pub iterations: u32,
    /// Final componentwise backward error.
    pub backward_error: f64,
    /// Whether the backward error reached the server's certification
    /// target.
    pub certified: bool,
}

/// One backend's outcome in a router's `OK_EVICTED` per-replica trailer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaEvict {
    /// The replica answered: the fingerprint was not resident there.
    NotResident,
    /// The replica answered: the factor was evicted.
    Evicted,
    /// The replica could not be reached (dead or erroring backend).
    Unreachable,
}

/// Reply to [`Client::evict_detailed`]: the aggregate flag plus, when the
/// peer is a router, the outcome on every replica of the fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictReply {
    /// Whether the factor was resident anywhere.
    pub existed: bool,
    /// Per-replica `(backend address, outcome)`; empty from a single server.
    pub per_backend: Vec<(String, ReplicaEvict)>,
}

/// Resilience knobs for [`Client::connect_with`] /
/// [`Client::solve_with_retry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientOptions {
    /// Per-attempt TCP connect budget.
    pub connect_timeout: Duration,
    /// Socket read/write timeout per request (zero disables).
    pub request_timeout: Duration,
    /// Retry attempts after the first try (0 = single-shot).
    pub retries: u32,
    /// Base backoff; attempt `k` waits ~`backoff · 2^k` with jitter.
    pub backoff: Duration,
    /// Cap on the exponential backoff.
    pub max_backoff: Duration,
    /// Seed for backoff jitter (deterministic tests; vary it per client).
    pub seed: u64,
    /// Highest protocol version to offer in the `HELLO` handshake.
    /// Below 4 the handshake is skipped entirely and the client speaks
    /// the legacy framing (pin to 3 for version-compat tests).
    pub max_version: u16,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions {
            connect_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(30),
            retries: 3,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            seed: 0,
            max_version: PROTOCOL_VERSION,
        }
    }
}

/// Retry-path counters accumulated by [`Client::solve_with_retry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryStats {
    /// Attempts re-issued after a transient failure.
    pub retried: u64,
    /// `ERR Busy` sheds observed.
    pub shed: u64,
    /// `ERR Deadline`/`ERR Timeout` misses observed.
    pub deadline_missed: u64,
    /// Connections re-established after transport failures.
    pub reconnects: u64,
}

/// A blocking connection to a solve server.
pub struct Client {
    stream: TcpStream,
    /// Address kept for reconnects (only set by [`Client::connect_with`]).
    addr: Option<String>,
    opts: ClientOptions,
    rng: Rng,
    stats: RetryStats,
    /// Protocol version negotiated on this connection (3 = legacy framing,
    /// no ids or checksums; ≥ 4 = enveloped frames).
    negotiated: u16,
    /// Next request id on a v4 connection.
    next_rid: u64,
}

impl Client {
    /// Connect once, with no timeouts, no retry machinery, and no version
    /// handshake — the connection speaks the legacy (v3) framing, which
    /// keeps this constructor suitable for raw-frame test traffic.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            addr: None,
            opts: ClientOptions {
                retries: 0,
                ..ClientOptions::default()
            },
            rng: Rng::seed_from_u64(0),
            stats: RetryStats::default(),
            negotiated: 3,
            next_rid: 1,
        })
    }

    /// Connect with resilience options: a bounded connect, socket
    /// read/write timeouts, and the address retained so
    /// [`Client::solve_with_retry`] can reconnect after transport failures.
    /// Unless [`ClientOptions::max_version`] pins the legacy protocol, the
    /// connection opens with a `HELLO` handshake and upgrades to v4 framing
    /// when the peer supports it.
    pub fn connect_with(addr: &str, opts: ClientOptions) -> io::Result<Client> {
        let stream = Self::dial(addr, &opts)?;
        let mut client = Client {
            stream,
            addr: Some(addr.to_string()),
            rng: Rng::seed_from_u64(opts.seed),
            opts,
            stats: RetryStats::default(),
            negotiated: 3,
            next_rid: 1,
        };
        client
            .hello()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(client)
    }

    /// Negotiate the protocol version on the current stream. Must be the
    /// first request on a connection. A peer that predates `HELLO` answers
    /// `ERR UnknownOpcode` and leaves the connection open — that is the
    /// downgrade signal, and the client stays on the legacy framing.
    /// Returns the negotiated version.
    pub fn hello(&mut self) -> Result<u16, ClientError> {
        if self.opts.max_version < 4 {
            self.negotiated = self.opts.max_version.min(3);
            return Ok(self.negotiated);
        }
        let payload = Builder::new().u16(self.opts.max_version).build();
        write_frame(&mut self.stream, op::HELLO, &payload)?;
        let (opcode, reply) = read_frame(&mut self.stream)?;
        match opcode {
            op::OK_HELLO => {
                let mut c = Cursor::new(&reply);
                let theirs = c.u16().map_err(ClientError::Protocol)?;
                self.negotiated = theirs.min(self.opts.max_version);
                Ok(self.negotiated)
            }
            op::ERR => match parse_err(&reply) {
                Ok((Some(ErrorCode::UnknownOpcode), _, _)) => {
                    self.negotiated = 3;
                    Ok(3)
                }
                Ok((code, message, retry_after_ms)) => Err(ClientError::Server {
                    code,
                    message,
                    retry_after_ms,
                }),
                Err(m) => Err(ClientError::Protocol(format!("undecodable ERR frame: {m}"))),
            },
            other => Err(ClientError::Protocol(format!(
                "unexpected HELLO reply opcode 0x{other:02x}"
            ))),
        }
    }

    /// Protocol version negotiated on this connection (3 until a `HELLO`
    /// upgrades it).
    pub fn negotiated_version(&self) -> u16 {
        self.negotiated
    }

    fn dial(addr: &str, opts: &ClientOptions) -> io::Result<TcpStream> {
        let mut last = None;
        for sa in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sa, opts.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    if !opts.request_timeout.is_zero() {
                        stream.set_read_timeout(Some(opts.request_timeout))?;
                        stream.set_write_timeout(Some(opts.request_timeout))?;
                    }
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            )
        }))
    }

    /// Connect, retrying every 100 ms for up to `patience` (for races where
    /// the server is still binding, e.g. the CI smoke job).
    pub fn connect_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        patience: Duration,
    ) -> io::Result<Client> {
        let deadline = Instant::now() + patience;
        loop {
            match Client::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
    }

    /// Counters accumulated by the retry path so far.
    pub fn retry_stats(&self) -> RetryStats {
        self.stats
    }

    /// Ship a matrix; the server factors and caches it.
    pub fn load(&mut self, a: &CscMatrix) -> Result<LoadReply, ClientError> {
        let payload = Builder::new()
            .u64(a.nrows() as u64)
            .u64(a.ncols() as u64)
            .u64(a.nnz() as u64)
            .usize_slice(a.colptr())
            .usize_slice(a.rowidx())
            .f64_slice(a.values())
            .build();
        let (opcode, reply) = self.round_trip(op::LOAD, &payload)?;
        Self::expect(opcode, op::OK_LOADED, &reply)?;
        let mut c = Cursor::new(&reply);
        let parsed = (|| {
            let fingerprint = c.fingerprint()?;
            let n = c.usize()?;
            let factor_nnz = c.usize()?;
            let already_cached = c.u8()? != 0;
            c.finish()?;
            Ok::<_, String>(LoadReply {
                fingerprint,
                n,
                factor_nnz,
                already_cached,
            })
        })();
        parsed.map_err(ClientError::Protocol)
    }

    /// Solve one right-hand side against a cached factor (no deadline).
    pub fn solve(&mut self, fp: Fingerprint, rhs: &[f64]) -> Result<Vec<f64>, ClientError> {
        self.solve_with_deadline(fp, rhs, 0)
    }

    /// Solve with an end-to-end deadline in milliseconds (0 = server
    /// default). Single-shot: no retries.
    pub fn solve_with_deadline(
        &mut self,
        fp: Fingerprint,
        rhs: &[f64],
        deadline_ms: u64,
    ) -> Result<Vec<f64>, ClientError> {
        let payload = Builder::new()
            .fingerprint(fp)
            .u64(deadline_ms)
            .u64(rhs.len() as u64)
            .f64_slice(rhs)
            .build();
        let (opcode, reply) = self.round_trip(op::SOLVE, &payload)?;
        Self::expect(opcode, op::OK_SOLVED, &reply)?;
        let parsed = (|| {
            let mut c = Cursor::new(&reply);
            let n = c.usize()?;
            let x = c.f64_vec(n)?;
            c.finish()?;
            Ok::<_, String>(x)
        })();
        parsed.map_err(ClientError::Protocol)
    }

    /// Solve with iterative refinement: the server refines against the
    /// retained original matrix and the reply carries the certificate
    /// (iterations, componentwise backward error, certified flag).
    /// Single-shot, optional deadline in milliseconds (0 = server default).
    pub fn solve_certified(
        &mut self,
        fp: Fingerprint,
        rhs: &[f64],
        deadline_ms: u64,
    ) -> Result<CertifiedReply, ClientError> {
        let payload = Builder::new()
            .fingerprint(fp)
            .u64(deadline_ms)
            .u64(rhs.len() as u64)
            .f64_slice(rhs)
            .u8(SOLVE_FLAG_CERTIFIED)
            .build();
        let (opcode, reply) = self.round_trip(op::SOLVE, &payload)?;
        Self::expect(opcode, op::OK_SOLVED, &reply)?;
        let parsed = (|| {
            let mut c = Cursor::new(&reply);
            let n = c.usize()?;
            let x = c.f64_vec(n)?;
            let iterations = c.u32()?;
            let backward_error = c.f64()?;
            let certified = c.u8()? != 0;
            c.finish()?;
            Ok::<_, String>(CertifiedReply {
                x,
                iterations,
                backward_error,
                certified,
            })
        })();
        parsed.map_err(ClientError::Protocol)
    }

    /// Solve with the full resilience ladder: transient failures (transport
    /// errors, `Busy` sheds, deadline misses) are retried up to
    /// `opts.retries` times under capped exponential backoff with seeded
    /// jitter; a `Busy` shed waits at least the server's `retry_after_ms`
    /// hint. Transport failures reconnect first (requires the client to
    /// have been built by [`Client::connect_with`]). A `Protocol` failure
    /// *requires* the reconnect — a desynchronized stream is never reused —
    /// and turns permanent if a fresh stream also yields an unparseable
    /// reply.
    pub fn solve_with_retry(
        &mut self,
        fp: Fingerprint,
        rhs: &[f64],
        deadline_ms: u64,
    ) -> Result<Vec<f64>, ClientError> {
        let mut attempt = 0u32;
        // Set once a Protocol error has already been answered with a fresh
        // stream: a second undecodable reply means the server itself is
        // speaking garbage, not that this connection desynchronized.
        let mut protocol_err_on_fresh_stream = false;
        loop {
            let err = match self.solve_with_deadline(fp, rhs, deadline_ms) {
                Ok(x) => return Ok(x),
                Err(e) => e,
            };
            let mut floor_ms = None;
            match &err {
                ClientError::Server {
                    code: Some(ErrorCode::Busy),
                    retry_after_ms,
                    ..
                } => {
                    self.stats.shed += 1;
                    floor_ms = *retry_after_ms;
                }
                ClientError::Server {
                    code: Some(ErrorCode::Deadline) | Some(ErrorCode::Timeout),
                    ..
                } => self.stats.deadline_missed += 1,
                // A frame damaged in transit; the connection itself is
                // still framed correctly, so a plain retry may succeed.
                ClientError::Server {
                    code: Some(ErrorCode::Corrupt),
                    ..
                } => {}
                ClientError::Io(_) | ClientError::Protocol(_) => {}
                _ => return Err(err), // permanent
            }
            if !err.is_transient() || attempt >= self.opts.retries {
                return Err(err);
            }
            match &err {
                ClientError::Protocol(_) => {
                    // The stream is desynchronized: the next frame boundary
                    // is unknowable, so retrying on it would spin against
                    // garbage bytes. The reconnect is mandatory — when it is
                    // impossible (no retained address) or a fresh stream
                    // already produced an unparseable reply, the error is
                    // permanent.
                    if protocol_err_on_fresh_stream || self.reconnect().is_err() {
                        return Err(err);
                    }
                    protocol_err_on_fresh_stream = true;
                }
                ClientError::Io(_) => {
                    // The transport failed; replace it. A failed reconnect
                    // is fine — the server may still be coming back, and
                    // the next attempt will dial again after the backoff.
                    let _ = self.reconnect();
                    protocol_err_on_fresh_stream = false;
                }
                _ => protocol_err_on_fresh_stream = false,
            }
            std::thread::sleep(self.backoff_delay(attempt, floor_ms));
            self.stats.retried += 1;
            attempt += 1;
        }
    }

    /// Replace the connection (only possible for `connect_with` clients).
    /// The fresh stream re-negotiates from scratch — a rolling upgrade may
    /// land the reconnect on a peer speaking a different version.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let addr = self
            .addr
            .clone()
            .ok_or_else(|| ClientError::Io("no address retained for reconnect".to_string()))?;
        self.stream = Self::dial(&addr, &self.opts)?;
        self.negotiated = 3;
        self.hello()?;
        self.stats.reconnects += 1;
        Ok(())
    }

    /// Capped exponential backoff with jitter in `[0.5·base, base)`,
    /// floored at the server's `retry_after_ms` hint when present.
    fn backoff_delay(&mut self, attempt: u32, floor_ms: Option<u64>) -> Duration {
        let base = self
            .opts
            .backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.opts.max_backoff);
        let jittered = base.mul_f64(self.rng.range_f64(0.5, 1.0));
        jittered.max(Duration::from_millis(floor_ms.unwrap_or(0)))
    }

    /// Fetch the engine counters as `(key, value)` pairs.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        let (opcode, reply) = self.round_trip(op::STATS, &[])?;
        Self::expect(opcode, op::OK_STATS, &reply)?;
        let parsed = (|| {
            let mut c = Cursor::new(&reply);
            let count = c.usize()?;
            let mut pairs = Vec::with_capacity(count.min(64));
            for _ in 0..count {
                let klen = c.u16()? as usize;
                let key = String::from_utf8(c.bytes(klen)?.to_vec())
                    .map_err(|_| "stats key not UTF-8".to_string())?;
                let val = c.u64()?;
                pairs.push((key, val));
            }
            c.finish()?;
            Ok::<_, String>(pairs)
        })();
        parsed.map_err(ClientError::Protocol)
    }

    /// Drop a cached factor; returns whether it was resident. Trailing
    /// bytes after the `existed` flag (a router's per-replica outcomes)
    /// are ignored; [`Client::evict_detailed`] decodes them.
    pub fn evict(&mut self, fp: Fingerprint) -> Result<bool, ClientError> {
        Ok(self.evict_detailed(fp)?.existed)
    }

    /// Drop a cached factor and decode the per-replica outcomes a router
    /// appends to `OK_EVICTED`. Against a single server the `per_backend`
    /// list is empty (the trailer only exists on fleet replies).
    pub fn evict_detailed(&mut self, fp: Fingerprint) -> Result<EvictReply, ClientError> {
        let payload = Builder::new().fingerprint(fp).build();
        let (opcode, reply) = self.round_trip(op::EVICT, &payload)?;
        Self::expect(opcode, op::OK_EVICTED, &reply)?;
        let parsed = (|| {
            let mut c = Cursor::new(&reply);
            let existed = c.u8()? != 0;
            let mut per_backend = Vec::new();
            if c.remaining() > 0 {
                let count = c.u8()? as usize;
                for _ in 0..count {
                    let alen = c.u16()? as usize;
                    let addr = String::from_utf8_lossy(c.bytes(alen)?).into_owned();
                    let status = match c.u8()? {
                        0 => ReplicaEvict::NotResident,
                        1 => ReplicaEvict::Evicted,
                        _ => ReplicaEvict::Unreachable,
                    };
                    per_backend.push((addr, status));
                }
            }
            Ok::<_, String>(EvictReply {
                existed,
                per_backend,
            })
        })();
        parsed.map_err(ClientError::Protocol)
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let (opcode, reply) = self.round_trip(op::SHUTDOWN, &[])?;
        Self::expect(opcode, op::OK_BYE, &reply)?;
        Ok(())
    }

    /// Send raw bytes on the wire (test hook for malformed traffic).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Read one raw frame off the wire (test hook).
    pub fn recv_raw(&mut self) -> io::Result<(u8, Vec<u8>)> {
        read_frame(&mut self.stream)
    }

    fn round_trip(&mut self, opcode: u8, payload: &[u8]) -> Result<(u8, Vec<u8>), ClientError> {
        if self.negotiated < 4 {
            write_frame(&mut self.stream, opcode, payload)?;
            return Ok(read_frame(&mut self.stream)?);
        }
        let rid = self.next_rid;
        self.next_rid += 1;
        let wrapped = wrap_v4(opcode, rid, payload);
        write_frame(&mut self.stream, opcode, &wrapped)?;
        let (ropc, rbody) = read_frame(&mut self.stream)?;
        match unwrap_v4(ropc, &rbody) {
            Ok((got, inner)) => {
                // ERR frames echo a best-effort id (the request may have
                // been too corrupt to trust its id field), so only success
                // replies are held to exact correlation.
                if ropc != op::ERR && got != rid {
                    return Err(ClientError::Protocol(format!(
                        "reply correlates to request {got}, expected {rid}"
                    )));
                }
                Ok((ropc, inner.to_vec()))
            }
            // Close-path errors (bad frame length, idle timeout, accept
            // shed) are emitted before or outside the per-request path and
            // stay legacy-encoded even on a v4 connection.
            Err(_) if ropc == op::ERR => Ok((ropc, rbody)),
            Err(EnvelopeError::Checksum) => Err(ClientError::Protocol(
                "reply failed its payload checksum".to_string(),
            )),
            Err(EnvelopeError::TooShort) => Err(ClientError::Protocol(
                "reply shorter than the v4 envelope".to_string(),
            )),
        }
    }

    fn expect(opcode: u8, wanted: u8, reply: &[u8]) -> Result<(), ClientError> {
        if opcode == wanted {
            return Ok(());
        }
        if opcode == op::ERR {
            return match parse_err(reply) {
                Ok((code, message, retry_after_ms)) => Err(ClientError::Server {
                    code,
                    message,
                    retry_after_ms,
                }),
                Err(m) => Err(ClientError::Protocol(format!("undecodable ERR frame: {m}"))),
            };
        }
        Err(ClientError::Protocol(format!(
            "unexpected reply opcode 0x{opcode:02x} (wanted 0x{wanted:02x})"
        )))
    }
}

/// A small idle-connection pool for one server address.
///
/// [`Client`] reconnects transparently, but every *new* `Client` dials a
/// fresh TCP connection — callers that issue short bursts of requests
/// (router fan-out helpers, fleet supervision, benches) would otherwise
/// pay a handshake per burst. [`ClientPool::get`] hands out an idle
/// connection when one is parked and dials only when the pool is empty;
/// dropping the [`PooledClient`] parks the connection again (up to
/// `max_idle`), unless [`PooledClient::discard`] marked it broken.
pub struct ClientPool {
    addr: String,
    opts: ClientOptions,
    max_idle: usize,
    idle: std::sync::Mutex<Vec<Client>>,
}

impl ClientPool {
    /// A pool for `addr`; at most `max_idle` parked connections are kept.
    pub fn new(addr: &str, opts: ClientOptions, max_idle: usize) -> ClientPool {
        ClientPool {
            addr: addr.to_string(),
            opts,
            max_idle: max_idle.max(1),
            idle: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Check out a connection: a parked idle one when available (most
    /// recently parked first — its socket is the least likely to have been
    /// idled out by the peer), a fresh dial otherwise.
    pub fn get(&self) -> io::Result<PooledClient<'_>> {
        let parked = {
            let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
            idle.pop()
        };
        let client = match parked {
            Some(c) => c,
            None => Client::connect_with(&self.addr, self.opts.clone())?,
        };
        Ok(PooledClient {
            pool: self,
            client: Some(client),
        })
    }

    /// Parked idle connections right now (test/diagnostic hook).
    pub fn idle_count(&self) -> usize {
        self.idle.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    fn park(&self, client: Client) {
        let mut idle = self.idle.lock().unwrap_or_else(|e| e.into_inner());
        if idle.len() < self.max_idle {
            idle.push(client);
        }
    }
}

/// A checked-out pool connection; derefs to [`Client`] and returns the
/// connection to the pool on drop.
pub struct PooledClient<'a> {
    pool: &'a ClientPool,
    client: Option<Client>,
}

impl PooledClient<'_> {
    /// Consume without returning the connection to the pool — call after
    /// an error that may have desynchronized or killed the stream.
    pub fn discard(mut self) {
        self.client = None;
    }
}

impl std::ops::Deref for PooledClient<'_> {
    type Target = Client;
    fn deref(&self) -> &Client {
        self.client.as_ref().expect("client present until drop")
    }
}

impl std::ops::DerefMut for PooledClient<'_> {
    fn deref_mut(&mut self) -> &mut Client {
        self.client.as_mut().expect("client present until drop")
    }
}

impl Drop for PooledClient<'_> {
    fn drop(&mut self) {
        if let Some(client) = self.client.take() {
            self.pool.park(client);
        }
    }
}
