//! Blocking client for the solve service.
//!
//! One [`Client`] wraps one TCP connection and issues one request at a
//! time (the protocol has no request ids, so pipelining is per-connection;
//! concurrency comes from opening more connections, which is exactly what
//! feeds the server-side micro-batcher).

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use trisolv_matrix::CscMatrix;

use crate::fingerprint::Fingerprint;
use crate::protocol::{op, read_frame, write_frame, Builder, Cursor, ErrorCode};

/// Client-visible failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Socket-level failure.
    Io(String),
    /// The server's bytes did not decode as a valid reply.
    Protocol(String),
    /// The server answered with a structured `ERR` frame.
    Server {
        /// Wire error code (`None` if the code was unrecognized).
        code: Option<ErrorCode>,
        /// Human-readable message from the server.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(m) => write!(f, "io error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e.to_string())
    }
}

/// Reply to a successful `LOAD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadReply {
    /// Fingerprint the factor is cached under.
    pub fingerprint: Fingerprint,
    /// Matrix order.
    pub n: usize,
    /// Nonzeros in the numeric factor.
    pub factor_nnz: usize,
    /// Whether the factor was already resident.
    pub already_cached: bool,
}

/// A blocking connection to a solve server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect once.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Connect, retrying every 100 ms for up to `patience` (for races where
    /// the server is still binding, e.g. the CI smoke job).
    pub fn connect_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        patience: Duration,
    ) -> io::Result<Client> {
        let deadline = Instant::now() + patience;
        loop {
            match Client::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
    }

    /// Ship a matrix; the server factors and caches it.
    pub fn load(&mut self, a: &CscMatrix) -> Result<LoadReply, ClientError> {
        let payload = Builder::new()
            .u64(a.nrows() as u64)
            .u64(a.ncols() as u64)
            .u64(a.nnz() as u64)
            .usize_slice(a.colptr())
            .usize_slice(a.rowidx())
            .f64_slice(a.values())
            .build();
        let (opcode, reply) = self.round_trip(op::LOAD, &payload)?;
        Self::expect(opcode, op::OK_LOADED, &reply)?;
        let mut c = Cursor::new(&reply);
        let parsed = (|| {
            let fingerprint = c.fingerprint()?;
            let n = c.usize()?;
            let factor_nnz = c.usize()?;
            let already_cached = c.u8()? != 0;
            c.finish()?;
            Ok::<_, String>(LoadReply {
                fingerprint,
                n,
                factor_nnz,
                already_cached,
            })
        })();
        parsed.map_err(ClientError::Protocol)
    }

    /// Solve one right-hand side against a cached factor.
    pub fn solve(&mut self, fp: Fingerprint, rhs: &[f64]) -> Result<Vec<f64>, ClientError> {
        let payload = Builder::new()
            .fingerprint(fp)
            .u64(rhs.len() as u64)
            .f64_slice(rhs)
            .build();
        let (opcode, reply) = self.round_trip(op::SOLVE, &payload)?;
        Self::expect(opcode, op::OK_SOLVED, &reply)?;
        let parsed = (|| {
            let mut c = Cursor::new(&reply);
            let n = c.usize()?;
            let x = c.f64_vec(n)?;
            c.finish()?;
            Ok::<_, String>(x)
        })();
        parsed.map_err(ClientError::Protocol)
    }

    /// Fetch the engine counters as `(key, value)` pairs.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        let (opcode, reply) = self.round_trip(op::STATS, &[])?;
        Self::expect(opcode, op::OK_STATS, &reply)?;
        let parsed = (|| {
            let mut c = Cursor::new(&reply);
            let count = c.usize()?;
            let mut pairs = Vec::with_capacity(count.min(64));
            for _ in 0..count {
                let klen = c.u16()? as usize;
                let key = String::from_utf8(c.bytes(klen)?.to_vec())
                    .map_err(|_| "stats key not UTF-8".to_string())?;
                let val = c.u64()?;
                pairs.push((key, val));
            }
            c.finish()?;
            Ok::<_, String>(pairs)
        })();
        parsed.map_err(ClientError::Protocol)
    }

    /// Drop a cached factor; returns whether it was resident.
    pub fn evict(&mut self, fp: Fingerprint) -> Result<bool, ClientError> {
        let payload = Builder::new().fingerprint(fp).build();
        let (opcode, reply) = self.round_trip(op::EVICT, &payload)?;
        Self::expect(opcode, op::OK_EVICTED, &reply)?;
        let mut c = Cursor::new(&reply);
        let existed = c.u8().map_err(ClientError::Protocol)? != 0;
        c.finish().map_err(ClientError::Protocol)?;
        Ok(existed)
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let (opcode, reply) = self.round_trip(op::SHUTDOWN, &[])?;
        Self::expect(opcode, op::OK_BYE, &reply)?;
        Ok(())
    }

    /// Send raw bytes on the wire (test hook for malformed traffic).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Read one raw frame off the wire (test hook).
    pub fn recv_raw(&mut self) -> io::Result<(u8, Vec<u8>)> {
        read_frame(&mut self.stream)
    }

    fn round_trip(&mut self, opcode: u8, payload: &[u8]) -> Result<(u8, Vec<u8>), ClientError> {
        write_frame(&mut self.stream, opcode, payload)?;
        Ok(read_frame(&mut self.stream)?)
    }

    fn expect(opcode: u8, wanted: u8, reply: &[u8]) -> Result<(), ClientError> {
        if opcode == wanted {
            return Ok(());
        }
        if opcode == op::ERR {
            let mut c = Cursor::new(reply);
            let parsed = (|| {
                let code = c.u16()?;
                let mlen = c.u32()? as usize;
                let msg = String::from_utf8_lossy(c.bytes(mlen)?).into_owned();
                Ok::<_, String>((code, msg))
            })();
            return match parsed {
                Ok((code, message)) => Err(ClientError::Server {
                    code: ErrorCode::from_u16(code),
                    message,
                }),
                Err(m) => Err(ClientError::Protocol(format!("undecodable ERR frame: {m}"))),
            };
        }
        Err(ClientError::Protocol(format!(
            "unexpected reply opcode 0x{opcode:02x} (wanted 0x{wanted:02x})"
        )))
    }
}
