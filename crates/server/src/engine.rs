//! The solve engine: cache + batcher + blocked executor, protocol-agnostic.
//!
//! [`Engine`] is the in-process heart of the service; the TCP front end and
//! the in-process client/benchmark harness both drive it through the same
//! four operations (`load`, `solve`, `stats`, `evict`). All failures are
//! structured [`EngineError`]s — a malformed matrix or a wrong-length RHS
//! must never panic a worker thread, and (new in the hardening pass) even a
//! *panicking executor* is converted to a structured error behind
//! `catch_unwind` rather than poisoning the lane.
//!
//! The degradation ladder (DESIGN.md §11) runs threaded → sequential →
//! shed: a threaded-executor panic falls back to the sequential executor
//! for that batch (counted in `exec_fallbacks`); a request arriving while
//! `max_pending` requests are already in flight is shed with
//! [`EngineError::Busy`] and a `retry_after_ms` hint instead of growing
//! memory without bound.

use std::collections::HashSet;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use trisolv_core::{SolveReport, SparseCholeskySolver, ThreadedSolver};
use trisolv_matrix::{CscMatrix, DenseMatrix};

use crate::batch::{BatchLane, BatchOptions, LaneError};
use crate::cache::{CacheStats, FactorCache, FactorEntry, SolverLane};
use crate::fault::{FaultAction, FaultPlan, FaultSite};
use crate::fingerprint::Fingerprint;
use crate::store::FactorStore;

/// Which executor runs the blocked solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Level-scheduled task-pool solver (`ThreadedSolver`); the default.
    #[default]
    Threaded,
    /// Sequential supernodal solver; answers are bit-identical to
    /// [`SparseCholeskySolver::solve`] on the same inputs.
    Seq,
}

impl ExecMode {
    /// Parse `"seq"` / `"threaded"`.
    pub fn parse(s: &str) -> Result<ExecMode, String> {
        match s {
            "seq" => Ok(ExecMode::Seq),
            "threaded" => Ok(ExecMode::Threaded),
            other => Err(format!("unknown exec mode {other:?} (seq|threaded)")),
        }
    }
}

/// Which precision lane newly loaded factors are cached in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrecisionMode {
    /// Full-precision resident factors; the default and the historical
    /// behavior.
    #[default]
    F64,
    /// Demote every factor to `f32` at cache insert. Direct solves run on
    /// the narrow lane; certified solves refine back to the `f64` target,
    /// refactoring in `f64` per request when refinement stagnates.
    F32,
    /// Like `F32`, but a factor whose certified solve ever needed the
    /// `f64` fallback is **promoted**: it stays `f64`-resident from then
    /// on (including across re-loads and self-heals).
    Auto,
}

impl PrecisionMode {
    /// Parse `"f64"` / `"f32"` / `"auto"`.
    pub fn parse(s: &str) -> Result<PrecisionMode, String> {
        match s {
            "f64" => Ok(PrecisionMode::F64),
            "f32" => Ok(PrecisionMode::F32),
            "auto" => Ok(PrecisionMode::Auto),
            other => Err(format!("unknown precision mode {other:?} (f64|f32|auto)")),
        }
    }

    /// Does this mode demote at insert time?
    fn demotes(self) -> bool {
        !matches!(self, PrecisionMode::F64)
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Factor-cache byte budget (estimated resident bytes).
    pub budget_bytes: usize,
    /// Micro-batching policy applied to every factor's lane.
    pub batch: BatchOptions,
    /// Executor for the blocked solves.
    pub exec: ExecMode,
    /// Admission-control high-water mark: solve requests arriving while
    /// this many are already in flight are shed with [`EngineError::Busy`].
    /// `0` disables shedding.
    pub max_pending: usize,
    /// Threads per blocked solve in the threaded executor (distinct from
    /// the front end's worker pool). `0` means
    /// `std::thread::available_parallelism`.
    pub solver_threads: usize,
    /// Factor-integrity cadence: re-digest a cached factor's values every
    /// this many solves against it and compare with the checksum taken at
    /// insert; a mismatch evicts the entry and transparently refactors from
    /// the retained matrix. `0` disables the check.
    pub verify_every: u64,
    /// Which precision lane newly loaded factors are cached in.
    pub precision: PrecisionMode,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            budget_bytes: 512 << 20,
            batch: BatchOptions::default(),
            exec: ExecMode::Threaded,
            max_pending: 1024,
            solver_threads: 0,
            verify_every: 0,
            precision: PrecisionMode::F64,
        }
    }
}

/// Structured failure of an engine operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `SOLVE`/`EVICT` referenced a fingerprint that is not resident.
    UnknownFingerprint(Fingerprint),
    /// A `SOLVE` RHS length does not match the cached factor's dimension.
    DimensionMismatch {
        /// The cached factor's matrix order.
        expected: usize,
        /// The request's RHS length.
        got: usize,
    },
    /// `LOAD` payload was not a valid lower-triangular CSC SPD matrix.
    BadMatrix(String),
    /// Numeric factorization failed (matrix not positive definite).
    NotSpd(String),
    /// A batched request timed out waiting for its results.
    Timeout,
    /// The request's deadline expired inside the service.
    DeadlineExceeded,
    /// The engine is over its pending-request high-water mark; retry after
    /// the hinted backoff.
    Busy {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The input contained NaN or infinite values (`what` names the field).
    NonFinite {
        /// Which input was non-finite (`"matrix values"` or `"rhs"`).
        what: &'static str,
    },
    /// The solve produced NaN or infinite entries (numeric breakdown of
    /// the cached factor on this input).
    NumericBreakdown,
    /// Invariant violation inside the service.
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownFingerprint(fp) => {
                write!(f, "unknown fingerprint {fp} (LOAD the matrix first)")
            }
            EngineError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "rhs length {got} does not match factor dimension {expected}"
                )
            }
            EngineError::BadMatrix(m) => write!(f, "bad matrix: {m}"),
            EngineError::NotSpd(m) => write!(f, "factorization failed: {m}"),
            EngineError::Timeout => write!(f, "request timed out in the batcher"),
            EngineError::DeadlineExceeded => write!(f, "request deadline expired in the service"),
            EngineError::Busy { retry_after_ms } => {
                write!(f, "server over capacity; retry after {retry_after_ms} ms")
            }
            EngineError::NonFinite { what } => {
                write!(f, "{what} contain NaN or infinite entries")
            }
            EngineError::NumericBreakdown => {
                write!(f, "solve produced non-finite values (numeric breakdown)")
            }
            EngineError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

/// What `load` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Content hash the matrix is now cached under.
    pub fingerprint: Fingerprint,
    /// Matrix order.
    pub n: usize,
    /// Nonzeros in the numeric factor.
    pub factor_nnz: usize,
    /// Whether the factor was already resident (no factorization ran).
    pub already_cached: bool,
}

/// Result of a certified solve: the solution plus the refinement
/// certificate carried in the v3 `SOLVE` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct CertifiedOutcome {
    /// The refined solution.
    pub x: Vec<f64>,
    /// Refinement iterations performed (0 when the first solve already met
    /// the target).
    pub iterations: u32,
    /// Final componentwise (Oettli–Prager) backward error.
    pub backward_error: f64,
    /// Whether the backward error reached the certification target.
    pub certified: bool,
}

/// Aggregated engine counters (cache + batcher + failure ladder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Cache occupancy and hit/miss/eviction counters.
    pub cache: CacheStats,
    /// Solve requests answered successfully.
    pub solves_ok: u64,
    /// Solve requests answered with an error.
    pub solves_err: u64,
    /// Blocked solves executed.
    pub batches: u64,
    /// RHS columns carried by those blocked solves.
    pub batched_cols: u64,
    /// Largest blocked solve executed.
    pub max_batch: usize,
    /// Requests shed with `Busy` by admission control.
    pub shed: u64,
    /// Requests that missed their deadline inside the service.
    pub deadline_misses: u64,
    /// Panics caught and converted to structured errors.
    pub panics_caught: u64,
    /// Threaded-executor failures served by the sequential fallback.
    pub exec_fallbacks: u64,
    /// Requests rejected for NaN/Inf inputs.
    pub nonfinite_rejected: u64,
    /// Solves that produced non-finite output (numeric breakdown).
    pub breakdowns: u64,
    /// Worker threads respawned by the front-end supervisor.
    pub worker_respawns: u64,
    /// Faults injected by the configured [`FaultPlan`].
    pub faults_injected: u64,
    /// Factor-integrity verifications run by the `verify_every` cadence.
    pub integrity_checks: u64,
    /// Corrupted cached factors detected, evicted, and refactored.
    pub self_heals: u64,
    /// Certified solves (iterative refinement) answered successfully.
    pub certified_solves: u64,
    /// Connections currently in service (gauge, not a counter).
    pub connections_open: u64,
    /// Connections ever admitted into service.
    pub connections_total: u64,
    /// Frames parsed while earlier requests on the same connection were
    /// still in flight (pipelining depth signal).
    pub frames_pipelined: u64,
    /// `LOAD`s answered from the resident cache without refactorization
    /// (checksum verified, full pipeline skipped).
    pub load_hits: u64,
    /// Snapshot files committed by the persistence write-behind thread.
    pub persist_writes: u64,
    /// Snapshots loaded by the startup recovery scan.
    pub persist_recovered: u64,
    /// Snapshot files the recovery scan unlinked (torn/corrupt/stale).
    pub persist_dropped: u64,
    /// Solves (direct or certified) served on an `f32`-resident factor.
    pub f32_solves: u64,
    /// Certified solves whose `f32` refinement stagnated and were
    /// transparently re-answered by an `f64` refactorization.
    pub precision_fallbacks: u64,
    /// Factors demoted to `f32` at cache-insert time.
    pub demoted_factors: u64,
    /// v4 frames rejected by the payload-checksum trailer (wire
    /// corruption caught before the request was parsed).
    pub crc_rejects: u64,
}

/// Factor-caching, micro-batching solve engine.
pub struct Engine {
    opts: EngineOptions,
    cache: FactorCache,
    fault: FaultPlan,
    store: Option<Arc<FactorStore>>,
    pending: AtomicUsize,
    load_hits: AtomicU64,
    solves_ok: AtomicU64,
    solves_err: AtomicU64,
    shed: AtomicU64,
    deadline_misses: AtomicU64,
    panics_caught: AtomicU64,
    exec_fallbacks: AtomicU64,
    nonfinite_rejected: AtomicU64,
    breakdowns: AtomicU64,
    worker_respawns: AtomicU64,
    batches: AtomicU64,
    batched_cols: AtomicU64,
    max_batch: AtomicUsize,
    integrity_checks: AtomicU64,
    self_heals: AtomicU64,
    certified_solves: AtomicU64,
    conns_open: AtomicU64,
    conns_total: AtomicU64,
    frames_pipelined: AtomicU64,
    f32_solves: AtomicU64,
    precision_fallbacks: AtomicU64,
    demoted_factors: AtomicU64,
    crc_rejects: AtomicU64,
    /// Fingerprints promoted to permanent `f64` residency by the `auto`
    /// precision mode (their certified solves needed the fallback).
    promoted: Mutex<HashSet<Fingerprint>>,
}

/// RAII in-flight counter for admission control.
struct PendingGuard<'a>(&'a AtomicUsize);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Engine {
    /// A fresh engine with the given configuration and no fault injection.
    pub fn new(opts: EngineOptions) -> Engine {
        Engine::with_fault(opts, FaultPlan::none())
    }

    /// A fresh engine that trips the given fault plan at its `solve` and
    /// `factor` sites.
    pub fn with_fault(opts: EngineOptions, fault: FaultPlan) -> Engine {
        Engine::with_store(opts, fault, None)
    }

    /// A fresh engine backed by an optional crash-consistent factor store.
    /// When a store is given, its recovery scan has already classified the
    /// on-disk snapshots; every survivor is inserted into the cache here, so
    /// the engine starts warm — without re-running symbolic analysis *or*
    /// numeric factorization (only the solve plan and subtree schedule are
    /// recomputed, which DESIGN.md §12 guarantees is bit-identical).
    pub fn with_store(
        opts: EngineOptions,
        fault: FaultPlan,
        store: Option<Arc<FactorStore>>,
    ) -> Engine {
        let eng = Engine {
            opts,
            cache: FactorCache::new(opts.budget_bytes),
            fault,
            store,
            pending: AtomicUsize::new(0),
            load_hits: AtomicU64::new(0),
            solves_ok: AtomicU64::new(0),
            solves_err: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            exec_fallbacks: AtomicU64::new(0),
            nonfinite_rejected: AtomicU64::new(0),
            breakdowns: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_cols: AtomicU64::new(0),
            max_batch: AtomicUsize::new(0),
            integrity_checks: AtomicU64::new(0),
            self_heals: AtomicU64::new(0),
            certified_solves: AtomicU64::new(0),
            conns_open: AtomicU64::new(0),
            conns_total: AtomicU64::new(0),
            frames_pipelined: AtomicU64::new(0),
            f32_solves: AtomicU64::new(0),
            precision_fallbacks: AtomicU64::new(0),
            demoted_factors: AtomicU64::new(0),
            crc_rejects: AtomicU64::new(0),
            promoted: Mutex::new(HashSet::new()),
        };
        if let Some(store) = eng.store.clone() {
            // Warm restart: every snapshot that survived the recovery scan
            // becomes a resident cache entry. The entry's integrity checksum
            // is re-digested from the rebuilt factor, which the scan already
            // verified equals the persisted one.
            let threads = eng.solver_threads();
            for rec in store.recover() {
                let entry = Arc::new(FactorEntry::new(
                    rec.fingerprint,
                    rec.matrix,
                    rec.solver,
                    threads,
                    BatchLane::new(eng.opts.batch),
                ));
                // A cache budget tighter than the disk budget can evict
                // while warming; keep disk and RAM coherent.
                for victim in eng.cache.insert(entry).evicted {
                    store.delete(victim);
                }
            }
        }
        eng
    }

    /// The engine configuration.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// The fault plan this engine trips (empty in production).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// Record a worker-thread respawn (called by the front-end supervisor
    /// so the count lands in `STATS`).
    pub fn note_worker_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection admitted into service by the front end.
    pub fn note_conn_open(&self) {
        self.conns_open.fetch_add(1, Ordering::Relaxed);
        self.conns_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a served connection closing. Must pair with
    /// [`Engine::note_conn_open`]; the open gauge saturates at zero rather
    /// than wrapping if a caller ever mispairs them.
    pub fn note_conn_closed(&self) {
        let _ = self
            .conns_open
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// Record frames admitted while earlier requests on the same
    /// connection were still in flight.
    pub fn note_frames_pipelined(&self, n: u64) {
        self.frames_pipelined.fetch_add(n, Ordering::Relaxed);
    }

    /// Record a v4 frame rejected by its payload checksum (called by the
    /// front end so wire corruption lands in `STATS`).
    pub fn note_crc_reject(&self) {
        self.crc_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// The backoff hint attached to `Busy` responses: two batching windows,
    /// floored at 1 ms — long enough for an in-flight batch to drain.
    pub fn retry_after_ms(&self) -> u64 {
        (self.opts.batch.window.as_millis() as u64 * 2).max(1)
    }

    /// The resolved threaded-executor width: the configured
    /// `solver_threads`, or `available_parallelism` when it is `0`.
    pub fn solver_threads(&self) -> usize {
        if self.opts.solver_threads == 0 {
            trisolv_core::default_threads()
        } else {
            self.opts.solver_threads
        }
    }

    /// The residency lane for a freshly factored matrix. `f32` and `auto`
    /// modes demote at insert time — except for fingerprints a prior
    /// certified-solve fallback has promoted to permanent `f64` residency.
    fn insert_lane(&self, fp: Fingerprint, solver: SparseCholeskySolver) -> SolverLane {
        if self.opts.precision.demotes() && !self.is_promoted(fp) {
            self.demoted_factors.fetch_add(1, Ordering::Relaxed);
            SolverLane::F32(solver.demote())
        } else {
            SolverLane::F64(solver)
        }
    }

    fn is_promoted(&self, fp: Fingerprint) -> bool {
        self.promoted.lock().unwrap().contains(&fp)
    }

    /// Precision fallback: a certified solve on an `f32`-resident factor
    /// stagnated short of its certificate. Refactor in `f64` from the
    /// retained matrix, swap the full-precision entry in (keeping the LRU
    /// position), and — in `auto` mode — pin the fingerprint so later
    /// re-loads never demote it again.
    fn promote(&self, bad: &FactorEntry) -> Result<Arc<FactorEntry>, EngineError> {
        let rebuilt = panic::catch_unwind(AssertUnwindSafe(|| {
            SparseCholeskySolver::factor(&bad.matrix)
                .map_err(|e| EngineError::NotSpd(e.to_string()))
        }));
        let solver = match rebuilt {
            Ok(Ok(solver)) => solver,
            Ok(Err(e)) => return Err(e),
            Err(payload) => {
                self.panics_caught.fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::Internal(format!(
                    "precision-fallback refactorization panicked: {}",
                    panic_message(&payload)
                )));
            }
        };
        let entry = Arc::new(FactorEntry::new(
            bad.fingerprint,
            bad.matrix.clone(),
            solver,
            self.solver_threads(),
            BatchLane::new(self.opts.batch),
        ));
        self.cache.replace(Arc::clone(&entry));
        if self.opts.precision == PrecisionMode::Auto {
            self.promoted.lock().unwrap().insert(bad.fingerprint);
        }
        self.precision_fallbacks.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &self.store {
            // the on-disk snapshot still holds the f32 payload; re-snapshot
            // the promoted factor so a restart keeps full precision
            store.save(Arc::clone(&entry));
        }
        Ok(entry)
    }

    /// Factor `a` and cache it under its content hash (idempotent: a
    /// resident matrix is not re-factored).
    pub fn load(&self, a: &CscMatrix) -> Result<LoadOutcome, EngineError> {
        if !a.values().iter().all(|v| v.is_finite()) {
            self.nonfinite_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::NonFinite {
                what: "matrix values",
            });
        }
        let fingerprint = Fingerprint::of_matrix(a);
        if let Some(entry) = self.cache.peek(fingerprint) {
            // Fast path — and what makes router rejoin replay cheap: verify
            // the resident factor's checksum instead of re-running symbolic
            // analysis + numeric factorization. A failed check self-heals
            // before replying, so the OK still vouches for a good factor.
            let entry = if entry.verify() {
                entry
            } else {
                self.heal(&entry)?
            };
            self.load_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(LoadOutcome {
                fingerprint,
                n: entry.n,
                factor_nnz: entry.solver.factor_nnz(),
                already_cached: true,
            });
        }
        // Factorization runs behind catch_unwind: a panicking kernel (or an
        // injected factor fault) becomes ERR Internal, not a dead worker.
        let built = panic::catch_unwind(AssertUnwindSafe(|| {
            self.fault.trip(FaultSite::Factor);
            SparseCholeskySolver::factor(a).map_err(|e| EngineError::NotSpd(e.to_string()))
        }));
        let solver = match built {
            Ok(Ok(solver)) => solver,
            Ok(Err(e)) => return Err(e),
            Err(payload) => {
                self.panics_caught.fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::Internal(format!(
                    "factorization panicked: {}",
                    panic_message(&payload)
                )));
            }
        };
        let factor_nnz = solver.factor_matrix().nnz();
        let lane = self.insert_lane(fingerprint, solver);
        let entry = Arc::new(FactorEntry::new(
            fingerprint,
            a.clone(),
            lane,
            self.solver_threads(),
            BatchLane::new(self.opts.batch),
        ));
        let n = entry.n;
        let admitted = self.cache.insert(Arc::clone(&entry));
        if let Some(store) = &self.store {
            if admitted.fresh {
                // write-behind: an Arc clone and a channel send; the disk
                // work happens on the store's writer thread
                store.save(entry);
            }
            for victim in &admitted.evicted {
                store.delete(*victim);
            }
        }
        Ok(LoadOutcome {
            fingerprint,
            n,
            factor_nnz,
            already_cached: !admitted.fresh,
        })
    }

    /// Solve `A·x = rhs` against the cached factor for `fp` with no
    /// deadline. Concurrent calls with the same fingerprint share blocked
    /// solves via the entry's [`BatchLane`].
    pub fn solve(&self, fp: Fingerprint, rhs: Vec<f64>) -> Result<Vec<f64>, EngineError> {
        self.solve_deadline(fp, rhs, None)
    }

    /// Solve with an optional end-to-end deadline. A request that cannot
    /// produce its answer by `deadline` comes back with
    /// [`EngineError::DeadlineExceeded`] instead of stalling its batch.
    pub fn solve_deadline(
        &self,
        fp: Fingerprint,
        rhs: Vec<f64>,
        deadline: Option<Instant>,
    ) -> Result<Vec<f64>, EngineError> {
        let out = self.solve_inner(fp, rhs, deadline);
        match &out {
            Ok(_) => {
                self.solves_ok.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => self.note_solve_error(e),
        }
        out
    }

    /// Solve `A·x = rhs` with iterative refinement and return the solution
    /// together with its certificate (iterations, componentwise backward
    /// error, certified flag). Refinement is a per-request loop — each
    /// iterate depends on the previous residual — so it bypasses the batch
    /// lane and runs sequentially behind `catch_unwind`.
    pub fn solve_certified(
        &self,
        fp: Fingerprint,
        rhs: Vec<f64>,
        deadline: Option<Instant>,
    ) -> Result<CertifiedOutcome, EngineError> {
        let out = self.solve_certified_inner(fp, rhs, deadline);
        match &out {
            Ok(_) => {
                self.solves_ok.fetch_add(1, Ordering::Relaxed);
                self.certified_solves.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => self.note_solve_error(e),
        }
        out
    }

    /// Bump the per-cause failure counters for one failed solve.
    fn note_solve_error(&self, e: &EngineError) {
        match e {
            EngineError::Busy { .. } => self.shed.fetch_add(1, Ordering::Relaxed),
            EngineError::DeadlineExceeded => self.deadline_misses.fetch_add(1, Ordering::Relaxed),
            EngineError::NonFinite { .. } => {
                self.nonfinite_rejected.fetch_add(1, Ordering::Relaxed)
            }
            EngineError::NumericBreakdown => self.breakdowns.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        };
        self.solves_err.fetch_add(1, Ordering::Relaxed);
    }

    fn solve_inner(
        &self,
        fp: Fingerprint,
        rhs: Vec<f64>,
        deadline: Option<Instant>,
    ) -> Result<Vec<f64>, EngineError> {
        // Admission control first: shedding must be cheap precisely when
        // the server is drowning.
        let in_flight = self.pending.fetch_add(1, Ordering::AcqRel);
        let _guard = PendingGuard(&self.pending);
        if self.opts.max_pending > 0 && in_flight >= self.opts.max_pending {
            return Err(EngineError::Busy {
                retry_after_ms: self.retry_after_ms(),
            });
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(EngineError::DeadlineExceeded);
        }
        if !rhs.iter().all(|v| v.is_finite()) {
            return Err(EngineError::NonFinite { what: "rhs" });
        }
        let entry = self.checked_entry(fp)?;
        if rhs.len() != entry.n {
            return Err(EngineError::DimensionMismatch {
                expected: entry.n,
                got: rhs.len(),
            });
        }
        let exec_entry = Arc::clone(&entry);
        entry
            .lane
            .solve(rhs, deadline, move |batch| self.execute(&exec_entry, batch))
            .map_err(|e| match e {
                LaneError::Exec(inner) => inner,
                LaneError::Timeout => EngineError::Timeout,
                LaneError::Deadline => EngineError::DeadlineExceeded,
            })
    }

    fn solve_certified_inner(
        &self,
        fp: Fingerprint,
        rhs: Vec<f64>,
        deadline: Option<Instant>,
    ) -> Result<CertifiedOutcome, EngineError> {
        let in_flight = self.pending.fetch_add(1, Ordering::AcqRel);
        let _guard = PendingGuard(&self.pending);
        if self.opts.max_pending > 0 && in_flight >= self.opts.max_pending {
            return Err(EngineError::Busy {
                retry_after_ms: self.retry_after_ms(),
            });
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(EngineError::DeadlineExceeded);
        }
        if !rhs.iter().all(|v| v.is_finite()) {
            return Err(EngineError::NonFinite { what: "rhs" });
        }
        let entry = self.checked_entry(fp)?;
        if rhs.len() != entry.n {
            return Err(EngineError::DimensionMismatch {
                expected: entry.n,
                got: rhs.len(),
            });
        }
        let n = entry.n;
        // Lane dispatch behind one catch_unwind shape: the f64 lane runs
        // classic refinement, the f32 lane runs the mixed-precision driver
        // (f32 correction solves, f64 residuals against the retained
        // matrix).
        let run_refine = |e: &FactorEntry| -> Result<(DenseMatrix, SolveReport), EngineError> {
            let refined = panic::catch_unwind(AssertUnwindSafe(|| {
                let mut b = DenseMatrix::zeros(n, 1);
                b.col_mut(0).copy_from_slice(&rhs);
                let opts = trisolv_core::RefineOptions::default();
                match &e.solver {
                    SolverLane::F64(s) => trisolv_core::refine::refine(s, &e.matrix, &b, &opts),
                    SolverLane::F32(s) => {
                        trisolv_core::refine::refine_mixed(s, &e.matrix, &b, &opts)
                    }
                }
            }));
            match refined {
                Ok(Ok(pair)) => Ok(pair),
                Ok(Err(e)) => Err(EngineError::Internal(format!("refinement failed: {e}"))),
                Err(payload) => {
                    self.panics_caught.fetch_add(1, Ordering::Relaxed);
                    Err(EngineError::Internal(format!(
                        "certified solve panicked: {}",
                        panic_message(&payload)
                    )))
                }
            }
        };
        let was_f32 = entry.solver.is_f32();
        let (x, report) = run_refine(&entry)?;
        let (x, report) = if was_f32 && !report.certified {
            // The narrow factor cannot carry refinement to the certificate
            // (κ(A)·ε_f32 ≳ 1). Fall back: refactor in f64 and re-answer.
            // Counted, transparent, never an error.
            let promoted = self.promote(&entry)?;
            run_refine(&promoted)?
        } else {
            if was_f32 {
                self.f32_solves.fetch_add(1, Ordering::Relaxed);
            }
            (x, report)
        };
        // The refinement loop ran to completion; a deadline that expired
        // while it was running still counts as a miss.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(EngineError::DeadlineExceeded);
        }
        let xcol = x.col(0).to_vec();
        if !xcol.iter().all(|v| v.is_finite()) {
            return Err(EngineError::NumericBreakdown);
        }
        Ok(CertifiedOutcome {
            x: xcol,
            iterations: report.iterations as u32,
            backward_error: report.backward_error,
            certified: report.certified,
        })
    }

    /// Cache lookup plus the integrity ladder: trip the `cache.torn` fault
    /// (which silently corrupts the resident factor while keeping its
    /// original checksum), then on the configured cadence re-digest the
    /// factor values and self-heal on mismatch.
    fn checked_entry(&self, fp: Fingerprint) -> Result<Arc<FactorEntry>, EngineError> {
        let mut entry = self
            .cache
            .get(fp)
            .ok_or(EngineError::UnknownFingerprint(fp))?;
        if self.fault.trip(FaultSite::Cache) == Some(FaultAction::Torn) {
            let bad = Arc::new(
                entry.corrupted_clone(self.solver_threads(), BatchLane::new(self.opts.batch)),
            );
            self.cache.replace(Arc::clone(&bad));
            entry = bad;
        }
        let cadence = self.opts.verify_every;
        if cadence > 0 && entry.note_solve() % cadence == 0 {
            self.integrity_checks.fetch_add(1, Ordering::Relaxed);
            if !entry.verify() {
                entry = self.heal(&entry)?;
            }
        }
        Ok(entry)
    }

    /// Self-healing: the resident factor for `bad.fingerprint` failed its
    /// integrity check. Refactor from the retained original matrix — the
    /// factorization pipeline is deterministic, so the rebuilt factor is
    /// bit-identical to the one originally inserted — and swap it in
    /// without perturbing the entry's LRU position.
    fn heal(&self, bad: &FactorEntry) -> Result<Arc<FactorEntry>, EngineError> {
        let rebuilt = panic::catch_unwind(AssertUnwindSafe(|| {
            SparseCholeskySolver::factor(&bad.matrix)
                .map_err(|e| EngineError::NotSpd(e.to_string()))
        }));
        let solver = match rebuilt {
            Ok(Ok(solver)) => solver,
            Ok(Err(e)) => return Err(e),
            Err(payload) => {
                self.panics_caught.fetch_add(1, Ordering::Relaxed);
                return Err(EngineError::Internal(format!(
                    "self-heal refactorization panicked: {}",
                    panic_message(&payload)
                )));
            }
        };
        // Heal back into the lane the entry occupied: a corrupted f32
        // resident comes back as a freshly demoted copy of the (bit-wise
        // reproducible) f64 refactorization.
        let lane = if bad.solver.is_f32() {
            SolverLane::F32(solver.demote())
        } else {
            SolverLane::F64(solver)
        };
        let entry = Arc::new(FactorEntry::new(
            bad.fingerprint,
            bad.matrix.clone(),
            lane,
            self.solver_threads(),
            BatchLane::new(self.opts.batch),
        ));
        self.cache.replace(Arc::clone(&entry));
        self.self_heals.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &self.store {
            // the on-disk snapshot may be the corrupted copy (or missing);
            // re-snapshot the healed factor
            store.save(Arc::clone(&entry));
        }
        Ok(entry)
    }

    /// Run one blocked solve for a sealed batch (leader thread only).
    /// A panic in the threaded executor (including injected `solve.panic`
    /// faults) is caught and the batch re-runs on the sequential executor;
    /// only a second panic surfaces as `ERR Internal`.
    fn execute(
        &self,
        entry: &FactorEntry,
        batch: Vec<Vec<f64>>,
    ) -> Result<Vec<Vec<f64>>, EngineError> {
        let k = batch.len();
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_cols.fetch_add(k as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(k, Ordering::Relaxed);
        let cols = match self.opts.exec {
            ExecMode::Seq => self.execute_seq_caught(entry, &batch)?,
            ExecMode::Threaded => {
                let attempt = panic::catch_unwind(AssertUnwindSafe(|| {
                    self.fault.trip(FaultSite::Solve);
                    self.execute_threaded(entry, &batch)
                }));
                match attempt {
                    Ok(cols) => cols,
                    Err(_) => {
                        // Degradation ladder: threaded panicked → answer
                        // this batch on the sequential executor instead of
                        // failing every rider.
                        self.panics_caught.fetch_add(1, Ordering::Relaxed);
                        self.exec_fallbacks.fetch_add(1, Ordering::Relaxed);
                        self.execute_seq_caught(entry, &batch)?
                    }
                }
            }
        };
        if cols.iter().any(|c| !c.iter().all(|v| v.is_finite())) {
            return Err(EngineError::NumericBreakdown);
        }
        if entry.solver.is_f32() {
            self.f32_solves.fetch_add(k as u64, Ordering::Relaxed);
        }
        Ok(cols)
    }

    /// The sequential executor behind `catch_unwind`: the last rung of the
    /// ladder before a structured internal error.
    fn execute_seq_caught(
        &self,
        entry: &FactorEntry,
        batch: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, EngineError> {
        let n = entry.n;
        let k = batch.len();
        panic::catch_unwind(AssertUnwindSafe(|| {
            let mut b = DenseMatrix::zeros(n, k);
            for (c, col) in batch.iter().enumerate() {
                b.col_mut(c).copy_from_slice(col);
            }
            let x = entry.solver.solve(&b);
            (0..k).map(|c| x.col(c).to_vec()).collect::<Vec<_>>()
        }))
        .map_err(|payload| {
            self.panics_caught.fetch_add(1, Ordering::Relaxed);
            EngineError::Internal(format!(
                "sequential solve panicked: {}",
                panic_message(&payload)
            ))
        })
    }

    /// The threaded blocked solve (may panic; callers catch).
    fn execute_threaded(&self, entry: &FactorEntry, batch: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let n = entry.n;
        let k = batch.len();
        // Permute each column into the factor's index space
        // (pb[perm(i)] = b[i]), exactly as `solver.solve` does.
        let perm = entry.solver.perm();
        let mut pb = DenseMatrix::zeros(n, k);
        for (c, col) in batch.iter().enumerate() {
            let dst = pb.col_mut(c);
            for i in 0..n {
                dst[perm.apply(i)] = col[i];
            }
        }
        let px = match &entry.solver {
            SolverLane::F64(s) => {
                let solver = ThreadedSolver::with_plan_schedule(
                    s.factor_matrix(),
                    s.plan(),
                    &entry.schedule,
                );
                let mut ws = entry.take_workspace(k);
                let px = solver.forward_backward_with(&pb, &mut ws);
                entry.put_workspace(ws);
                px
            }
            SolverLane::F32(s) => {
                let solver = ThreadedSolver::with_plan_schedule(
                    s.factor_matrix(),
                    s.plan(),
                    &entry.schedule,
                );
                let mut ws = entry.take_workspace32(k);
                let px = solver.forward_backward_with(&pb, &mut ws);
                entry.put_workspace32(ws);
                px
            }
        };
        // Unpermute into fresh output columns.
        let mut out = vec![vec![0.0f64; n]; k];
        for (c, col) in out.iter_mut().enumerate() {
            let src = px.col(c);
            for (i, v) in col.iter_mut().enumerate() {
                *v = src[perm.apply(i)];
            }
        }
        out
    }

    /// Drop a cached factor (and its on-disk snapshot, when persistence is
    /// on). Returns whether it was resident.
    pub fn evict(&self, fp: Fingerprint) -> bool {
        if let Some(store) = &self.store {
            store.delete(fp);
        }
        self.cache.evict(fp)
    }

    /// The persistence store, when configured.
    pub fn store(&self) -> Option<&Arc<FactorStore>> {
        self.store.as_ref()
    }

    /// Block until every queued snapshot write/delete has been applied.
    /// Called on graceful shutdown so a SIGTERM cannot strand a pending
    /// snapshot. No-op (`true`) without a store.
    pub fn flush_store(&self, timeout: Duration) -> bool {
        match &self.store {
            Some(store) => store.flush(timeout),
            None => true,
        }
    }

    /// True when every resident lane holds no in-flight state (no boarding
    /// columns, sealed batches, unclaimed results, or abandoned claims).
    /// The chaos soak asserts this after draining all clients.
    pub fn lanes_quiescent(&self) -> bool {
        self.cache.entries().iter().all(|e| e.lane.is_quiescent())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache: self.cache.stats(),
            solves_ok: self.solves_ok.load(Ordering::Relaxed),
            solves_err: self.solves_err.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_cols: self.batched_cols.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            exec_fallbacks: self.exec_fallbacks.load(Ordering::Relaxed),
            nonfinite_rejected: self.nonfinite_rejected.load(Ordering::Relaxed),
            breakdowns: self.breakdowns.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            faults_injected: self.fault.injected(),
            integrity_checks: self.integrity_checks.load(Ordering::Relaxed),
            self_heals: self.self_heals.load(Ordering::Relaxed),
            certified_solves: self.certified_solves.load(Ordering::Relaxed),
            connections_open: self.conns_open.load(Ordering::Relaxed),
            connections_total: self.conns_total.load(Ordering::Relaxed),
            frames_pipelined: self.frames_pipelined.load(Ordering::Relaxed),
            load_hits: self.load_hits.load(Ordering::Relaxed),
            persist_writes: self.store.as_ref().map_or(0, |s| s.writes()),
            persist_recovered: self.store.as_ref().map_or(0, |s| s.recovered_count()),
            persist_dropped: self.store.as_ref().map_or(0, |s| s.dropped_count()),
            f32_solves: self.f32_solves.load(Ordering::Relaxed),
            precision_fallbacks: self.precision_fallbacks.load(Ordering::Relaxed),
            demoted_factors: self.demoted_factors.load(Ordering::Relaxed),
            crc_rejects: self.crc_rejects.load(Ordering::Relaxed),
        }
    }

    /// The batching window currently configured (used by the front end to
    /// derive per-request socket timeouts).
    pub fn batch_window(&self) -> Duration {
        self.opts.batch.window
    }
}

/// Best-effort human-readable panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_matrix::gen;

    fn engine(exec: ExecMode, max_batch: usize) -> Engine {
        Engine::new(EngineOptions {
            exec,
            batch: BatchOptions {
                max_batch,
                window: Duration::from_millis(2),
                wait_timeout: Duration::from_secs(10),
            },
            ..EngineOptions::default()
        })
    }

    #[test]
    fn load_solve_round_trip_both_modes() {
        for exec in [ExecMode::Seq, ExecMode::Threaded] {
            let eng = engine(exec, 4);
            let a = gen::grid2d_laplacian(8, 8);
            let out = eng.load(&a).unwrap();
            assert!(!out.already_cached);
            assert_eq!(out.n, 64);
            let again = eng.load(&a).unwrap();
            assert!(again.already_cached);
            assert_eq!(again.fingerprint, out.fingerprint);

            let b = gen::random_rhs(64, 1, 9);
            let x = eng.solve(out.fingerprint, b.col(0).to_vec()).unwrap();
            // residual against the original matrix
            let mut xm = DenseMatrix::zeros(64, 1);
            xm.col_mut(0).copy_from_slice(&x);
            let ax = a.spmv_sym_lower(&xm).unwrap();
            assert!(ax.max_abs_diff(&b).unwrap() < 1e-10, "{exec:?}");
            let s = eng.stats();
            assert_eq!(s.solves_ok, 1);
            assert_eq!(s.batches, 1);
            assert!(eng.lanes_quiescent());
        }
    }

    #[test]
    fn dimension_mismatch_is_structured() {
        let eng = engine(ExecMode::Threaded, 4);
        let a = gen::grid2d_laplacian(6, 6);
        let fp = eng.load(&a).unwrap().fingerprint;
        let err = eng.solve(fp, vec![1.0; 35]).unwrap_err();
        assert_eq!(
            err,
            EngineError::DimensionMismatch {
                expected: 36,
                got: 35
            }
        );
        let err = eng.solve(fp, Vec::new()).unwrap_err();
        assert_eq!(
            err,
            EngineError::DimensionMismatch {
                expected: 36,
                got: 0
            }
        );
        assert_eq!(eng.stats().solves_err, 2);
    }

    #[test]
    fn unknown_fingerprint_and_evict() {
        let eng = engine(ExecMode::Threaded, 1);
        let fp = Fingerprint(1, 2);
        assert_eq!(
            eng.solve(fp, vec![0.0]).unwrap_err(),
            EngineError::UnknownFingerprint(fp)
        );
        let a = gen::grid2d_laplacian(5, 5);
        let loaded = eng.load(&a).unwrap();
        assert!(eng.evict(loaded.fingerprint));
        assert!(!eng.evict(loaded.fingerprint));
        assert!(matches!(
            eng.solve(loaded.fingerprint, vec![0.0; 25]).unwrap_err(),
            EngineError::UnknownFingerprint(_)
        ));
    }

    #[test]
    fn non_spd_matrix_is_rejected() {
        // -identity is symmetric but not positive definite
        let n = 8;
        let colptr: Vec<usize> = (0..=n).collect();
        let rowidx: Vec<usize> = (0..n).collect();
        let a = CscMatrix::from_parts(n, n, colptr, rowidx, vec![-1.0; n]).unwrap();
        let eng = engine(ExecMode::Threaded, 1);
        assert!(matches!(eng.load(&a).unwrap_err(), EngineError::NotSpd(_)));
    }

    #[test]
    fn nonfinite_inputs_rejected_at_the_boundary() {
        let eng = engine(ExecMode::Threaded, 1);
        // NaN in the matrix values
        let n = 4;
        let colptr: Vec<usize> = (0..=n).collect();
        let rowidx: Vec<usize> = (0..n).collect();
        let mut vals = vec![2.0; n];
        vals[2] = f64::NAN;
        let a = CscMatrix::from_parts(n, n, colptr, rowidx, vals).unwrap();
        assert_eq!(
            eng.load(&a).unwrap_err(),
            EngineError::NonFinite {
                what: "matrix values"
            }
        );
        // Inf in the RHS
        let good = gen::grid2d_laplacian(4, 4);
        let fp = eng.load(&good).unwrap().fingerprint;
        let mut rhs = vec![1.0; 16];
        rhs[7] = f64::INFINITY;
        assert_eq!(
            eng.solve(fp, rhs).unwrap_err(),
            EngineError::NonFinite { what: "rhs" }
        );
        let s = eng.stats();
        assert_eq!(s.nonfinite_rejected, 2);
    }

    #[test]
    fn numeric_breakdown_is_detected_in_the_output() {
        // Subnormal diagonal: factorization succeeds (sqrt of a positive
        // subnormal is a normal float) but x = b/a overflows to +inf.
        let n = 2;
        let colptr: Vec<usize> = (0..=n).collect();
        let rowidx: Vec<usize> = (0..n).collect();
        let a = CscMatrix::from_parts(n, n, colptr, rowidx, vec![1e-310; n]).unwrap();
        for exec in [ExecMode::Seq, ExecMode::Threaded] {
            let eng = engine(exec, 1);
            let fp = eng.load(&a).unwrap().fingerprint;
            let err = eng.solve(fp, vec![1.0; n]).unwrap_err();
            assert_eq!(err, EngineError::NumericBreakdown, "{exec:?}");
            assert_eq!(eng.stats().breakdowns, 1);
        }
    }

    #[test]
    fn admission_control_sheds_over_the_high_water_mark() {
        let eng = Engine::new(EngineOptions {
            exec: ExecMode::Seq,
            max_pending: 2,
            batch: BatchOptions {
                max_batch: 1,
                window: Duration::from_millis(1),
                wait_timeout: Duration::from_secs(5),
            },
            ..EngineOptions::default()
        });
        // Saturate the pending counter by hand (as if 2 requests were
        // parked in the batcher), then observe the third being shed.
        eng.pending.store(2, Ordering::SeqCst);
        let a = gen::grid2d_laplacian(4, 4);
        let fp = {
            // load is not admission-controlled
            eng.load(&a).unwrap().fingerprint
        };
        let err = eng.solve(fp, vec![1.0; 16]).unwrap_err();
        match err {
            EngineError::Busy { retry_after_ms } => assert!(retry_after_ms >= 1),
            other => panic!("expected Busy, got {other:?}"),
        }
        assert_eq!(eng.stats().shed, 1);
        // Back under the mark, the same request succeeds.
        eng.pending.store(0, Ordering::SeqCst);
        assert!(eng.solve(fp, vec![1.0; 16]).is_ok());
    }

    #[test]
    fn expired_deadline_is_rejected_before_boarding() {
        let eng = engine(ExecMode::Seq, 4);
        let a = gen::grid2d_laplacian(4, 4);
        let fp = eng.load(&a).unwrap().fingerprint;
        let past = Instant::now() - Duration::from_millis(1);
        let err = eng
            .solve_deadline(fp, vec![1.0; 16], Some(past))
            .unwrap_err();
        assert_eq!(err, EngineError::DeadlineExceeded);
        assert_eq!(eng.stats().deadline_misses, 1);
        // a generous deadline sails through
        let future = Instant::now() + Duration::from_secs(30);
        assert!(eng.solve_deadline(fp, vec![1.0; 16], Some(future)).is_ok());
    }

    #[test]
    fn injected_solve_panic_falls_back_to_seq() {
        let fault = FaultPlan::parse("solve.panic=every:1").unwrap();
        let eng = Engine::with_fault(
            EngineOptions {
                exec: ExecMode::Threaded,
                batch: BatchOptions {
                    max_batch: 1,
                    window: Duration::from_millis(1),
                    wait_timeout: Duration::from_secs(5),
                },
                ..EngineOptions::default()
            },
            fault,
        );
        let a = gen::grid2d_laplacian(6, 6);
        let fp = eng.load(&a).unwrap().fingerprint;
        let reference = SparseCholeskySolver::factor(&a).unwrap();
        let b = gen::random_rhs(36, 1, 3);
        // every solve panics in the threaded branch; the seq fallback must
        // answer bit-identically to the reference sequential solver
        let x = eng.solve(fp, b.col(0).to_vec()).unwrap();
        assert_eq!(x.as_slice(), reference.solve(&b).col(0));
        let s = eng.stats();
        assert_eq!(s.solves_ok, 1);
        assert!(s.panics_caught >= 1);
        assert_eq!(s.exec_fallbacks, 1);
        assert!(s.faults_injected >= 1);
    }

    #[test]
    fn certified_solve_reports_backward_error() {
        let eng = engine(ExecMode::Threaded, 4);
        let a = gen::grid2d_laplacian(8, 8);
        let fp = eng.load(&a).unwrap().fingerprint;
        let b = gen::random_rhs(64, 1, 17);
        let out = eng.solve_certified(fp, b.col(0).to_vec(), None).unwrap();
        assert!(out.certified, "well-conditioned solve must certify");
        assert!(out.backward_error <= 1e-10, "{}", out.backward_error);
        assert_eq!(out.x.len(), 64);
        let s = eng.stats();
        assert_eq!(s.certified_solves, 1);
        assert_eq!(s.solves_ok, 1);
        // structured errors still apply on the certified path
        let err = eng.solve_certified(fp, vec![1.0; 63], None).unwrap_err();
        assert!(matches!(err, EngineError::DimensionMismatch { .. }));
        let err = eng
            .solve_certified(Fingerprint(7, 7), vec![0.0; 64], None)
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownFingerprint(_)));
        assert_eq!(eng.stats().certified_solves, 1);
    }

    #[test]
    fn corrupted_cached_factor_is_detected_and_healed() {
        // Fault: corrupt the resident factor on the 2nd cache lookup.
        // Cadence: verify on every solve. The corrupted solve must be
        // detected, healed, and answered bit-identically to a fresh
        // sequential solver on the same inputs.
        let fault = FaultPlan::parse("cache.torn=every:2").unwrap();
        let eng = Engine::with_fault(
            EngineOptions {
                exec: ExecMode::Threaded,
                verify_every: 1,
                batch: BatchOptions {
                    max_batch: 1,
                    window: Duration::from_millis(1),
                    wait_timeout: Duration::from_secs(5),
                },
                ..EngineOptions::default()
            },
            fault,
        );
        let a = gen::grid2d_laplacian(9, 9);
        let fp = eng.load(&a).unwrap().fingerprint;
        let reference = SparseCholeskySolver::factor(&a).unwrap();
        let b = gen::random_rhs(81, 1, 21);
        let expect = reference.solve(&b).col(0).to_vec();

        let clean = eng.solve(fp, b.col(0).to_vec()).unwrap();
        assert_eq!(clean, expect, "uncorrupted solve is bit-identical");
        let healed = eng.solve(fp, b.col(0).to_vec()).unwrap();
        assert_eq!(healed, expect, "self-healed solve is bit-identical");
        let s = eng.stats();
        assert_eq!(s.self_heals, 1, "exactly one heal: {s:?}");
        assert!(s.integrity_checks >= 2);
        assert!(s.faults_injected >= 1);
        assert_eq!(s.solves_ok, 2);
        // After the heal, the resident entry verifies again.
        let entry = eng.cache.peek(fp).unwrap();
        assert!(entry.verify());
    }

    #[test]
    fn verify_cadence_zero_skips_integrity_checks() {
        // With the cadence disabled, even a corrupted factor goes unnoticed
        // (and un-healed) — the check must cost nothing when off.
        let fault = FaultPlan::parse("cache.torn=every:1").unwrap();
        let eng = Engine::with_fault(
            EngineOptions {
                exec: ExecMode::Seq,
                verify_every: 0,
                batch: BatchOptions {
                    max_batch: 1,
                    window: Duration::from_millis(1),
                    wait_timeout: Duration::from_secs(5),
                },
                ..EngineOptions::default()
            },
            fault,
        );
        let a = gen::grid2d_laplacian(5, 5);
        let fp = eng.load(&a).unwrap().fingerprint;
        let b = gen::random_rhs(25, 1, 4);
        eng.solve(fp, b.col(0).to_vec()).unwrap();
        let s = eng.stats();
        assert_eq!(s.integrity_checks, 0);
        assert_eq!(s.self_heals, 0);
        assert!(!eng.cache.peek(fp).unwrap().verify(), "corruption persists");
    }

    #[test]
    fn injected_factor_panic_is_structured() {
        let fault = FaultPlan::parse("factor.panic=every:1").unwrap();
        let eng = Engine::with_fault(EngineOptions::default(), fault);
        let a = gen::grid2d_laplacian(5, 5);
        let err = eng.load(&a).unwrap_err();
        assert!(
            matches!(&err, EngineError::Internal(m) if m.contains("panicked")),
            "{err:?}"
        );
        assert_eq!(eng.stats().panics_caught, 1);
    }

    fn precision_engine(exec: ExecMode, precision: PrecisionMode) -> Engine {
        Engine::new(EngineOptions {
            exec,
            precision,
            batch: BatchOptions {
                max_batch: 2,
                window: Duration::from_millis(1),
                wait_timeout: Duration::from_secs(10),
            },
            ..EngineOptions::default()
        })
    }

    #[test]
    fn f32_mode_demotes_at_insert_and_serves_plain_solves() {
        for exec in [ExecMode::Seq, ExecMode::Threaded] {
            let eng = precision_engine(exec, PrecisionMode::F32);
            let a = gen::grid2d_laplacian(10, 10);
            let fp = eng.load(&a).unwrap().fingerprint;
            let entry = eng.cache.peek(fp).unwrap();
            assert!(entry.solver.is_f32(), "{exec:?}");
            assert!(entry.verify(), "f32 digest matches at insert");
            let b = gen::random_rhs(100, 1, 11);
            let x = eng.solve(fp, b.col(0).to_vec()).unwrap();
            let mut xm = DenseMatrix::zeros(100, 1);
            xm.col_mut(0).copy_from_slice(&x);
            let ax = a.spmv_sym_lower(&xm).unwrap();
            // a direct f32 solve carries f32 accuracy, nothing better
            let resid = ax.max_abs_diff(&b).unwrap() / b.norm_max().max(1.0);
            assert!(resid < 1e-3, "{exec:?}: {resid:e}");
            let s = eng.stats();
            assert_eq!(s.demoted_factors, 1, "{exec:?}");
            assert_eq!(s.f32_solves, 1, "{exec:?}");
            assert_eq!(s.precision_fallbacks, 0, "{exec:?}");
        }
    }

    #[test]
    fn f32_certified_solve_certifies_well_conditioned_systems() {
        let eng = precision_engine(ExecMode::Threaded, PrecisionMode::F32);
        let a = gen::grid2d_laplacian(10, 10);
        let fp = eng.load(&a).unwrap().fingerprint;
        let b = gen::random_rhs(100, 1, 5);
        let out = eng.solve_certified(fp, b.col(0).to_vec(), None).unwrap();
        assert!(out.certified);
        assert!(out.backward_error <= 1e-10, "{:e}", out.backward_error);
        let s = eng.stats();
        assert_eq!(s.precision_fallbacks, 0);
        assert_eq!(s.f32_solves, 1);
        assert!(eng.cache.peek(fp).unwrap().solver.is_f32(), "stays narrow");
    }

    #[test]
    fn auto_mode_fallback_promotes_the_fingerprint_permanently() {
        let eng = precision_engine(ExecMode::Threaded, PrecisionMode::Auto);
        // Near-singular: smallest eigenvalue 1e-12, so κ(A)·ε_f32 ≫ 1 and
        // the narrow lane must stagnate; f64 refinement still converges.
        let a = gen::rank_deficient_grid(12, 12, 1e-12);
        let fp = eng.load(&a).unwrap().fingerprint;
        assert_eq!(eng.stats().demoted_factors, 1);
        assert!(eng.cache.peek(fp).unwrap().solver.is_f32());
        let b = gen::random_rhs(144, 1, 5);
        let out = eng.solve_certified(fp, b.col(0).to_vec(), None).unwrap();
        assert!(out.certified, "the fallback answer must still certify");
        let s = eng.stats();
        assert_eq!(s.precision_fallbacks, 1);
        assert_eq!(
            s.f32_solves, 0,
            "the abandoned f32 attempt is not a solve served"
        );
        assert!(
            !eng.cache.peek(fp).unwrap().solver.is_f32(),
            "the resident entry was promoted to f64"
        );
        // A promoted fingerprint never demotes again, even through evict +
        // re-load...
        assert!(eng.evict(fp));
        let again = eng.load(&a).unwrap();
        assert!(!again.already_cached);
        assert_eq!(eng.stats().demoted_factors, 1, "no second demotion");
        assert!(!eng.cache.peek(fp).unwrap().solver.is_f32());
        // ...and its certified solves no longer need the fallback.
        let out2 = eng.solve_certified(fp, b.col(0).to_vec(), None).unwrap();
        assert!(out2.certified);
        assert_eq!(eng.stats().precision_fallbacks, 1);
    }

    #[test]
    fn f32_mode_without_auto_demotes_again_after_fallback_eviction() {
        // Forced-f32 mode answers the hard system correctly through the
        // fallback, but does not pin the fingerprint: residency policy is
        // the user's call, correctness is not.
        let eng = precision_engine(ExecMode::Threaded, PrecisionMode::F32);
        let a = gen::rank_deficient_grid(12, 12, 1e-12);
        let fp = eng.load(&a).unwrap().fingerprint;
        let b = gen::random_rhs(144, 1, 5);
        let out = eng.solve_certified(fp, b.col(0).to_vec(), None).unwrap();
        assert!(out.certified);
        assert_eq!(eng.stats().precision_fallbacks, 1);
        assert!(eng.evict(fp));
        eng.load(&a).unwrap();
        assert_eq!(eng.stats().demoted_factors, 2, "f32 mode demotes again");
        assert!(eng.cache.peek(fp).unwrap().solver.is_f32());
    }

    #[test]
    fn corrupted_f32_factor_heals_back_into_the_narrow_lane() {
        let fault = FaultPlan::parse("cache.torn=every:2").unwrap();
        let eng = Engine::with_fault(
            EngineOptions {
                exec: ExecMode::Threaded,
                precision: PrecisionMode::F32,
                verify_every: 1,
                batch: BatchOptions {
                    max_batch: 1,
                    window: Duration::from_millis(1),
                    wait_timeout: Duration::from_secs(5),
                },
                ..EngineOptions::default()
            },
            fault,
        );
        let a = gen::grid2d_laplacian(9, 9);
        let fp = eng.load(&a).unwrap().fingerprint;
        // reference: a fresh f64 factor demoted the same way
        let expect = {
            let solver32 = SparseCholeskySolver::factor(&a).unwrap().demote();
            let b = gen::random_rhs(81, 1, 21);
            solver32.solve(&b).col(0).to_vec()
        };
        let b = gen::random_rhs(81, 1, 21);
        let clean = eng.solve(fp, b.col(0).to_vec()).unwrap();
        assert_eq!(clean, expect, "uncorrupted f32 solve is bit-identical");
        let healed = eng.solve(fp, b.col(0).to_vec()).unwrap();
        assert_eq!(healed, expect, "healed f32 solve is bit-identical");
        let s = eng.stats();
        assert_eq!(s.self_heals, 1);
        let entry = eng.cache.peek(fp).unwrap();
        assert!(entry.solver.is_f32(), "heal preserved the resident lane");
        assert!(entry.verify());
    }
}
