//! The solve engine: cache + batcher + blocked executor, protocol-agnostic.
//!
//! [`Engine`] is the in-process heart of the service; the TCP front end and
//! the in-process client/benchmark harness both drive it through the same
//! four operations (`load`, `solve`, `stats`, `evict`). All failures are
//! structured [`EngineError`]s — a malformed matrix or a wrong-length RHS
//! must never panic a worker thread.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use trisolv_core::{SolvePlan, SparseCholeskySolver, ThreadedSolver};
use trisolv_matrix::{CscMatrix, DenseMatrix};

use crate::batch::{BatchLane, BatchOptions, LaneError};
use crate::cache::{CacheStats, FactorCache, FactorEntry};
use crate::fingerprint::Fingerprint;

/// Which executor runs the blocked solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Level-scheduled task-pool solver (`ThreadedSolver`); the default.
    #[default]
    Threaded,
    /// Sequential supernodal solver; answers are bit-identical to
    /// [`SparseCholeskySolver::solve`] on the same inputs.
    Seq,
}

impl ExecMode {
    /// Parse `"seq"` / `"threaded"`.
    pub fn parse(s: &str) -> Result<ExecMode, String> {
        match s {
            "seq" => Ok(ExecMode::Seq),
            "threaded" => Ok(ExecMode::Threaded),
            other => Err(format!("unknown exec mode {other:?} (seq|threaded)")),
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOptions {
    /// Factor-cache byte budget (estimated resident bytes).
    pub budget_bytes: usize,
    /// Micro-batching policy applied to every factor's lane.
    pub batch: BatchOptions,
    /// Executor for the blocked solves.
    pub exec: ExecMode,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            budget_bytes: 512 << 20,
            batch: BatchOptions::default(),
            exec: ExecMode::Threaded,
        }
    }
}

/// Structured failure of an engine operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `SOLVE`/`EVICT` referenced a fingerprint that is not resident.
    UnknownFingerprint(Fingerprint),
    /// A `SOLVE` RHS length does not match the cached factor's dimension.
    DimensionMismatch {
        /// The cached factor's matrix order.
        expected: usize,
        /// The request's RHS length.
        got: usize,
    },
    /// `LOAD` payload was not a valid lower-triangular CSC SPD matrix.
    BadMatrix(String),
    /// Numeric factorization failed (matrix not positive definite).
    NotSpd(String),
    /// A batched request timed out waiting for its results.
    Timeout,
    /// Invariant violation inside the service.
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownFingerprint(fp) => {
                write!(f, "unknown fingerprint {fp} (LOAD the matrix first)")
            }
            EngineError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "rhs length {got} does not match factor dimension {expected}"
                )
            }
            EngineError::BadMatrix(m) => write!(f, "bad matrix: {m}"),
            EngineError::NotSpd(m) => write!(f, "factorization failed: {m}"),
            EngineError::Timeout => write!(f, "request timed out in the batcher"),
            EngineError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

/// What `load` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Content hash the matrix is now cached under.
    pub fingerprint: Fingerprint,
    /// Matrix order.
    pub n: usize,
    /// Nonzeros in the numeric factor.
    pub factor_nnz: usize,
    /// Whether the factor was already resident (no factorization ran).
    pub already_cached: bool,
}

/// Aggregated engine counters (cache + batcher).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Cache occupancy and hit/miss/eviction counters.
    pub cache: CacheStats,
    /// Solve requests answered successfully.
    pub solves_ok: u64,
    /// Solve requests answered with an error.
    pub solves_err: u64,
    /// Blocked solves executed.
    pub batches: u64,
    /// RHS columns carried by those blocked solves.
    pub batched_cols: u64,
    /// Largest blocked solve executed.
    pub max_batch: usize,
}

/// Factor-caching, micro-batching solve engine.
pub struct Engine {
    opts: EngineOptions,
    cache: FactorCache,
    solves_ok: AtomicU64,
    solves_err: AtomicU64,
    batches: AtomicU64,
    batched_cols: AtomicU64,
    max_batch: AtomicUsize,
}

impl Engine {
    /// A fresh engine with the given configuration.
    pub fn new(opts: EngineOptions) -> Engine {
        Engine {
            opts,
            cache: FactorCache::new(opts.budget_bytes),
            solves_ok: AtomicU64::new(0),
            solves_err: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_cols: AtomicU64::new(0),
            max_batch: AtomicUsize::new(0),
        }
    }

    /// The engine configuration.
    pub fn options(&self) -> &EngineOptions {
        &self.opts
    }

    /// Factor `a` and cache it under its content hash (idempotent: a
    /// resident matrix is not re-factored).
    pub fn load(&self, a: &CscMatrix) -> Result<LoadOutcome, EngineError> {
        let fingerprint = Fingerprint::of_matrix(a);
        if let Some(entry) = self.cache.peek(fingerprint) {
            return Ok(LoadOutcome {
                fingerprint,
                n: entry.n,
                factor_nnz: entry.solver.factor_matrix().nnz(),
                already_cached: true,
            });
        }
        let solver =
            SparseCholeskySolver::factor(a).map_err(|e| EngineError::NotSpd(e.to_string()))?;
        let plan = SolvePlan::new(solver.factor_matrix().partition())
            .map_err(|e| EngineError::Internal(format!("plan construction failed: {e}")))?;
        let factor_nnz = solver.factor_matrix().nnz();
        let entry = Arc::new(FactorEntry::new(
            fingerprint,
            solver,
            plan,
            BatchLane::new(self.opts.batch),
        ));
        let n = entry.n;
        let inserted = self.cache.insert(entry);
        Ok(LoadOutcome {
            fingerprint,
            n,
            factor_nnz,
            already_cached: !inserted,
        })
    }

    /// Solve `A·x = rhs` against the cached factor for `fp`. Concurrent
    /// calls with the same fingerprint share blocked solves via the entry's
    /// [`BatchLane`].
    pub fn solve(&self, fp: Fingerprint, rhs: Vec<f64>) -> Result<Vec<f64>, EngineError> {
        let out = self.solve_inner(fp, rhs);
        match &out {
            Ok(_) => self.solves_ok.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.solves_err.fetch_add(1, Ordering::Relaxed),
        };
        out
    }

    fn solve_inner(&self, fp: Fingerprint, rhs: Vec<f64>) -> Result<Vec<f64>, EngineError> {
        let entry = self
            .cache
            .get(fp)
            .ok_or(EngineError::UnknownFingerprint(fp))?;
        if rhs.len() != entry.n {
            return Err(EngineError::DimensionMismatch {
                expected: entry.n,
                got: rhs.len(),
            });
        }
        let exec_entry = Arc::clone(&entry);
        entry
            .lane
            .solve(rhs, move |batch| self.execute(&exec_entry, batch))
            .map_err(|e| match e {
                LaneError::Exec(inner) => inner,
                LaneError::Timeout => EngineError::Timeout,
            })
    }

    /// Run one blocked solve for a sealed batch (leader thread only).
    fn execute(
        &self,
        entry: &FactorEntry,
        batch: Vec<Vec<f64>>,
    ) -> Result<Vec<Vec<f64>>, EngineError> {
        let n = entry.n;
        let k = batch.len();
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_cols.fetch_add(k as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(k, Ordering::Relaxed);
        match self.opts.exec {
            ExecMode::Seq => {
                let mut b = DenseMatrix::zeros(n, k);
                for (c, col) in batch.iter().enumerate() {
                    b.col_mut(c).copy_from_slice(col);
                }
                let x = entry.solver.solve(&b);
                Ok((0..k).map(|c| x.col(c).to_vec()).collect())
            }
            ExecMode::Threaded => {
                // Permute each column into the factor's index space
                // (pb[perm(i)] = b[i]), exactly as `solver.solve` does.
                let perm = entry.solver.perm();
                let mut pb = DenseMatrix::zeros(n, k);
                for (c, col) in batch.iter().enumerate() {
                    let dst = pb.col_mut(c);
                    for i in 0..n {
                        dst[perm.apply(i)] = col[i];
                    }
                }
                let solver = ThreadedSolver::with_plan(entry.solver.factor_matrix(), &entry.plan);
                let mut ws = entry.take_workspace(k);
                let px = solver.forward_backward_with(&pb, &mut ws);
                entry.put_workspace(ws);
                // Unpermute straight into the per-request columns; the
                // boarded RHS vectors are recycled as the output buffers.
                let mut batch = batch;
                for (c, col) in batch.iter_mut().enumerate() {
                    let src = px.col(c);
                    for (i, v) in col.iter_mut().enumerate() {
                        *v = src[perm.apply(i)];
                    }
                }
                Ok(batch)
            }
        }
    }

    /// Drop a cached factor. Returns whether it was resident.
    pub fn evict(&self, fp: Fingerprint) -> bool {
        self.cache.evict(fp)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache: self.cache.stats(),
            solves_ok: self.solves_ok.load(Ordering::Relaxed),
            solves_err: self.solves_err.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_cols: self.batched_cols.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
        }
    }

    /// The batching window currently configured (used by the front end to
    /// derive per-request socket timeouts).
    pub fn batch_window(&self) -> Duration {
        self.opts.batch.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trisolv_matrix::gen;

    fn engine(exec: ExecMode, max_batch: usize) -> Engine {
        Engine::new(EngineOptions {
            exec,
            batch: BatchOptions {
                max_batch,
                window: Duration::from_millis(2),
                wait_timeout: Duration::from_secs(10),
            },
            ..EngineOptions::default()
        })
    }

    #[test]
    fn load_solve_round_trip_both_modes() {
        for exec in [ExecMode::Seq, ExecMode::Threaded] {
            let eng = engine(exec, 4);
            let a = gen::grid2d_laplacian(8, 8);
            let out = eng.load(&a).unwrap();
            assert!(!out.already_cached);
            assert_eq!(out.n, 64);
            let again = eng.load(&a).unwrap();
            assert!(again.already_cached);
            assert_eq!(again.fingerprint, out.fingerprint);

            let b = gen::random_rhs(64, 1, 9);
            let x = eng.solve(out.fingerprint, b.col(0).to_vec()).unwrap();
            // residual against the original matrix
            let mut xm = DenseMatrix::zeros(64, 1);
            xm.col_mut(0).copy_from_slice(&x);
            let ax = a.spmv_sym_lower(&xm).unwrap();
            assert!(ax.max_abs_diff(&b).unwrap() < 1e-10, "{exec:?}");
            let s = eng.stats();
            assert_eq!(s.solves_ok, 1);
            assert_eq!(s.batches, 1);
        }
    }

    #[test]
    fn dimension_mismatch_is_structured() {
        let eng = engine(ExecMode::Threaded, 4);
        let a = gen::grid2d_laplacian(6, 6);
        let fp = eng.load(&a).unwrap().fingerprint;
        let err = eng.solve(fp, vec![1.0; 35]).unwrap_err();
        assert_eq!(
            err,
            EngineError::DimensionMismatch {
                expected: 36,
                got: 35
            }
        );
        let err = eng.solve(fp, Vec::new()).unwrap_err();
        assert_eq!(
            err,
            EngineError::DimensionMismatch {
                expected: 36,
                got: 0
            }
        );
        assert_eq!(eng.stats().solves_err, 2);
    }

    #[test]
    fn unknown_fingerprint_and_evict() {
        let eng = engine(ExecMode::Threaded, 1);
        let fp = Fingerprint(1, 2);
        assert_eq!(
            eng.solve(fp, vec![0.0]).unwrap_err(),
            EngineError::UnknownFingerprint(fp)
        );
        let a = gen::grid2d_laplacian(5, 5);
        let loaded = eng.load(&a).unwrap();
        assert!(eng.evict(loaded.fingerprint));
        assert!(!eng.evict(loaded.fingerprint));
        assert!(matches!(
            eng.solve(loaded.fingerprint, vec![0.0; 25]).unwrap_err(),
            EngineError::UnknownFingerprint(_)
        ));
    }

    #[test]
    fn non_spd_matrix_is_rejected() {
        // -identity is symmetric but not positive definite
        let n = 8;
        let colptr: Vec<usize> = (0..=n).collect();
        let rowidx: Vec<usize> = (0..n).collect();
        let a = CscMatrix::from_parts(n, n, colptr, rowidx, vec![-1.0; n]).unwrap();
        let eng = engine(ExecMode::Threaded, 1);
        assert!(matches!(eng.load(&a).unwrap_err(), EngineError::NotSpd(_)));
    }
}
