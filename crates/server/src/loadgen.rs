//! Closed-loop load generator for the solve service.
//!
//! Spawns `clients` threads, each with its own connection, issuing
//! single-RHS `SOLVE` requests back-to-back for a fixed duration and
//! recording per-request latency. The aggregate report (requests/sec,
//! p50/p99) is what `bench_server` sweeps across batch configurations to
//! reproduce the paper's multi-RHS amortization curve, and what the CI
//! smoke job asserts on.

use std::time::{Duration, Instant};

use trisolv_matrix::rng::Rng;

use crate::client::{Client, ClientError};
use crate::fingerprint::Fingerprint;

/// Load-generation parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadGenOptions {
    /// Server address.
    pub addr: String,
    /// Fingerprint of the (already loaded) factor to solve against.
    pub fingerprint: Fingerprint,
    /// RHS length (the factor's matrix order).
    pub n: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// How long to keep issuing requests.
    pub duration: Duration,
    /// Seed for the per-client RHS generators.
    pub seed: u64,
}

/// Aggregate results of one load-generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadGenReport {
    /// Requests answered successfully.
    pub requests: u64,
    /// Requests that failed (transport or server error).
    pub errors: u64,
    /// Wall-clock time actually spent issuing requests.
    pub elapsed: Duration,
    /// Successful requests per second.
    pub throughput_rps: f64,
    /// Median latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
}

/// Percentile by nearest-rank on a sorted slice (`q` in `[0, 1]`).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run the closed loop and aggregate latencies across all clients.
///
/// Each client connects (with retry, so the server may still be starting),
/// then solves random right-hand sides until the deadline. Per-request
/// latency is measured client-side, so it includes the batching window —
/// the trade the batcher makes (a little latency for a lot of throughput)
/// is visible in the report rather than hidden.
pub fn run_load(opts: &LoadGenOptions) -> Result<LoadGenReport, ClientError> {
    /// Per-client outcome: (requests ok, requests errored, latencies in µs).
    type ClientOutcome = Result<(u64, u64, Vec<f64>), ClientError>;
    let started = Instant::now();
    let deadline = started + opts.duration;
    let results: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients.max(1))
            .map(|c| {
                let addr = opts.addr.clone();
                let fp = opts.fingerprint;
                let n = opts.n;
                let seed = opts.seed.wrapping_add(c as u64);
                scope.spawn(move || client_loop(&addr, fp, n, seed, deadline))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();

    let mut requests = 0u64;
    let mut errors = 0u64;
    let mut latencies: Vec<f64> = Vec::new();
    let mut first_err: Option<ClientError> = None;
    for r in results {
        match r {
            Ok((ok, err, lats)) => {
                requests += ok;
                errors += err;
                latencies.extend(lats);
            }
            Err(e) => {
                errors += 1;
                first_err.get_or_insert(e);
            }
        }
    }
    if requests == 0 {
        if let Some(e) = first_err {
            return Err(e);
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = if latencies.is_empty() {
        f64::NAN
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    Ok(LoadGenReport {
        requests,
        errors,
        elapsed,
        throughput_rps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        mean_us: mean,
    })
}

fn client_loop(
    addr: &str,
    fp: Fingerprint,
    n: usize,
    seed: u64,
    deadline: Instant,
) -> Result<(u64, u64, Vec<f64>), ClientError> {
    let mut client = Client::connect_retry(addr, Duration::from_secs(5))?;
    let mut rng = Rng::seed_from_u64(seed);
    let mut rhs = vec![0.0f64; n];
    let mut ok = 0u64;
    let mut err = 0u64;
    let mut latencies = Vec::new();
    while Instant::now() < deadline {
        // cheap per-request perturbation: refresh a few entries
        for _ in 0..4 {
            let i = rng.range_usize(0, n);
            rhs[i] = rng.range_f64(-1.0, 1.0);
        }
        let t0 = Instant::now();
        match client.solve(fp, &rhs) {
            Ok(_) => {
                ok += 1;
                latencies.push(t0.elapsed().as_secs_f64() * 1e6);
            }
            Err(ClientError::Io(m)) => {
                // transport gone (e.g. server shut down mid-run): stop
                err += 1;
                let _ = m;
                break;
            }
            Err(_) => err += 1,
        }
    }
    Ok((ok, err, latencies))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 51.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert!(percentile(&[], 0.5).is_nan());
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }
}
