//! Closed-loop load generator for the solve service.
//!
//! Spawns `clients` threads, each with its own connection, issuing
//! single-RHS `SOLVE` requests back-to-back for a fixed duration and
//! recording per-request latency. The aggregate report (requests/sec,
//! p50/p99) is what `bench_server` sweeps across batch configurations to
//! reproduce the paper's multi-RHS amortization curve, and what the CI
//! smoke job asserts on.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use trisolv_matrix::rng::Rng;

use crate::client::{Client, ClientError, ClientOptions, RetryStats};
use crate::fingerprint::Fingerprint;

/// Load-generation parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadGenOptions {
    /// Server address.
    pub addr: String,
    /// Fingerprint of the (already loaded) factor to solve against.
    pub fingerprint: Fingerprint,
    /// RHS length (the factor's matrix order).
    pub n: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// How long to keep issuing requests.
    pub duration: Duration,
    /// Seed for the per-client RHS generators.
    pub seed: u64,
    /// Per-request deadline in milliseconds (0 = server default).
    pub deadline_ms: u64,
    /// Client resilience knobs (timeouts, retries, backoff); each client
    /// derives its jitter seed from `seed` plus its index.
    pub client: ClientOptions,
    /// Extra connections opened before the run and held idle for its whole
    /// duration — the mostly-idle fan-in the event-driven front end exists
    /// to absorb. They send no requests; the report records how many
    /// actually opened.
    pub idle_conns: usize,
}

/// Aggregate results of one load-generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadGenReport {
    /// Requests answered successfully.
    pub requests: u64,
    /// Requests that failed (transport or server error).
    pub errors: u64,
    /// Wall-clock time actually spent issuing requests.
    pub elapsed: Duration,
    /// Successful requests per second.
    pub throughput_rps: f64,
    /// Median latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: f64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Retry-path counters summed over all clients (sheds observed,
    /// attempts retried, deadline misses, reconnects).
    pub retry: RetryStats,
    /// Idle connections actually opened and held for the run (may be less
    /// than asked if the server or fd limits pushed back).
    pub idle_conns: u64,
}

/// Percentile by nearest-rank on a sorted slice (`q` in `[0, 1]`).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run the closed loop and aggregate latencies across all clients.
///
/// Each client connects (with retry, so the server may still be starting),
/// then solves random right-hand sides until the deadline. Per-request
/// latency is measured client-side, so it includes the batching window —
/// the trade the batcher makes (a little latency for a lot of throughput)
/// is visible in the report rather than hidden.
pub fn run_load(opts: &LoadGenOptions) -> Result<LoadGenReport, ClientError> {
    /// Per-client outcome: (requests ok, requests errored, latencies in µs,
    /// retry counters).
    type ClientOutcome = Result<(u64, u64, Vec<f64>, RetryStats), ClientError>;
    // Idle fan-in first, so the active clients below run against a server
    // that is already holding the requested connection count. Shortfalls
    // (fd limits, connection caps) are recorded, not fatal.
    let mut idle: Vec<TcpStream> = Vec::with_capacity(opts.idle_conns);
    for _ in 0..opts.idle_conns {
        match TcpStream::connect(&opts.addr) {
            Ok(s) => idle.push(s),
            Err(_) => break,
        }
    }
    let idle_conns = idle.len() as u64;
    let started = Instant::now();
    let deadline = started + opts.duration;
    let results: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients.max(1))
            .map(|c| {
                let addr = opts.addr.clone();
                let fp = opts.fingerprint;
                let n = opts.n;
                let seed = opts.seed.wrapping_add(c as u64);
                let deadline_ms = opts.deadline_ms;
                let copts = ClientOptions {
                    seed: opts.client.seed.wrapping_add(c as u64),
                    ..opts.client.clone()
                };
                scope.spawn(move || client_loop(&addr, fp, n, seed, deadline, deadline_ms, copts))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();
    drop(idle); // held through the whole active window

    let mut requests = 0u64;
    let mut errors = 0u64;
    let mut latencies: Vec<f64> = Vec::new();
    let mut retry = RetryStats::default();
    let mut first_err: Option<ClientError> = None;
    for r in results {
        match r {
            Ok((ok, err, lats, rs)) => {
                requests += ok;
                errors += err;
                latencies.extend(lats);
                retry.retried += rs.retried;
                retry.shed += rs.shed;
                retry.deadline_missed += rs.deadline_missed;
                retry.reconnects += rs.reconnects;
            }
            Err(e) => {
                errors += 1;
                first_err.get_or_insert(e);
            }
        }
    }
    if requests == 0 {
        if let Some(e) = first_err {
            return Err(e);
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = if latencies.is_empty() {
        f64::NAN
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    Ok(LoadGenReport {
        requests,
        errors,
        elapsed,
        throughput_rps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        mean_us: mean,
        retry,
        idle_conns,
    })
}

fn client_loop(
    addr: &str,
    fp: Fingerprint,
    n: usize,
    seed: u64,
    deadline: Instant,
    deadline_ms: u64,
    copts: ClientOptions,
) -> Result<(u64, u64, Vec<f64>, RetryStats), ClientError> {
    // connect_with retains the address, so the retry path can reconnect
    // when the server drops or tears a connection mid-run
    let connect_patience = Instant::now() + Duration::from_secs(5);
    let mut client = loop {
        match Client::connect_with(addr, copts.clone()) {
            Ok(c) => break c,
            Err(e) => {
                if Instant::now() >= connect_patience {
                    return Err(e.into());
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    };
    let mut rng = Rng::seed_from_u64(seed);
    let mut rhs = vec![0.0f64; n];
    let mut ok = 0u64;
    let mut err = 0u64;
    let mut latencies = Vec::new();
    while Instant::now() < deadline {
        // cheap per-request perturbation: refresh a few entries
        for _ in 0..4 {
            let i = rng.range_usize(0, n);
            rhs[i] = rng.range_f64(-1.0, 1.0);
        }
        let t0 = Instant::now();
        match client.solve_with_retry(fp, &rhs, deadline_ms) {
            Ok(_) => {
                ok += 1;
                latencies.push(t0.elapsed().as_secs_f64() * 1e6);
            }
            Err(e) if !e.is_transient() => {
                // permanent server error: nothing a closed loop can do
                err += 1;
                break;
            }
            Err(_) => err += 1, // transient but retries exhausted
        }
    }
    Ok((ok, err, latencies, client.retry_stats()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 51.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert!(percentile(&[], 0.5).is_nan());
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }
}
