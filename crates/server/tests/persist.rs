//! Durability tests for the crash-consistent factor store: snapshot
//! round-trips, the torn-file table (every section boundary ±1), fault
//! injection at the `store` site, byte-budget eviction, and deletion.
//!
//! The contract under test (DESIGN.md §16): recovery loads exactly the
//! snapshots whose trailer checksum verifies, unlinks everything else with
//! a counted reason, and never panics on any file content whatsoever.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use trisolv_core::SparseCholeskySolver;
use trisolv_matrix::gen;
use trisolv_server::batch::{BatchLane, BatchOptions};
use trisolv_server::store::{
    decode_snapshot, encode_snapshot, section_boundaries, DropReason, FactorStore, StoreOptions,
    PRECISION_F64, SNAPSHOT_MAGIC,
};
use trisolv_server::{FactorEntry, FaultPlan, Fingerprint, SolverLane};

fn entry_for(spec: &str) -> Arc<FactorEntry> {
    let a = gen::from_spec(spec).unwrap();
    let fp = Fingerprint::of_matrix(&a);
    let solver = SparseCholeskySolver::factor(&a).unwrap();
    Arc::new(FactorEntry::new(
        fp,
        a,
        solver,
        2,
        BatchLane::new(BatchOptions::default()),
    ))
}

fn f32_entry_for(spec: &str) -> Arc<FactorEntry> {
    let a = gen::from_spec(spec).unwrap();
    let fp = Fingerprint::of_matrix(&a);
    let solver = SparseCholeskySolver::factor(&a).unwrap().demote();
    Arc::new(FactorEntry::new(
        fp,
        a,
        SolverLane::F32(solver),
        2,
        BatchLane::new(BatchOptions::default()),
    ))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("trisolv-persist-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The reason `decode_snapshot` refused `bytes` (panics if it decoded).
fn drop_reason(bytes: &[u8], fp: Fingerprint) -> DropReason {
    match decode_snapshot(bytes, fp) {
        Err(r) => r,
        Ok(_) => panic!("snapshot decoded but a drop was expected"),
    }
}

fn snapshot_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|d| d.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".factor"))
        .collect();
    names.sort();
    names
}

#[test]
fn snapshot_round_trips_through_save_and_recover() {
    let dir = temp_dir("roundtrip");
    let entry = entry_for("grid2d:9");
    let fp = entry.fingerprint;
    let b = gen::random_rhs(entry.n, 3, 11);
    let want = entry.solver.solve(&b);
    {
        let store = FactorStore::open(StoreOptions::new(&dir), FaultPlan::default()).unwrap();
        store.save(Arc::clone(&entry));
        assert!(store.flush(Duration::from_secs(10)));
        assert_eq!(store.writes(), 1);
    }
    assert_eq!(snapshot_files(&dir), vec![format!("{fp}.factor")]);

    // a fresh store (a "restarted server") recovers it, bit-identical
    let store = FactorStore::open(StoreOptions::new(&dir), FaultPlan::default()).unwrap();
    let recovered = store.recover();
    assert_eq!(store.recovered_count(), 1);
    assert_eq!(store.dropped_count(), 0);
    assert_eq!(recovered.len(), 1);
    let rec = &recovered[0];
    assert_eq!(rec.fingerprint, fp);
    assert_eq!(rec.checksum, entry.checksum);
    assert_eq!(rec.matrix, entry.matrix);
    let got = rec.solver.solve(&b);
    assert_eq!(got, want, "recovered factor must solve bit-identically");
}

#[test]
fn torn_file_table_drops_every_truncation_without_panicking() {
    let entry = entry_for("grid2d:7");
    let fp = entry.fingerprint;
    let bytes = encode_snapshot(&entry);
    assert!(
        decode_snapshot(&bytes, fp).is_ok(),
        "pristine image decodes"
    );

    let marks = section_boundaries(&bytes);
    assert!(marks.len() >= 5, "all sections were walked: {marks:?}");
    assert_eq!(*marks.last().unwrap(), bytes.len());
    for &m in &marks {
        for cut in [m.saturating_sub(1), m, m + 1] {
            if cut >= bytes.len() {
                continue; // not a truncation
            }
            let err = drop_reason(&bytes[..cut], fp);
            assert!(
                matches!(err, DropReason::Torn | DropReason::Corrupt),
                "cut at {cut}: {err:?}"
            );
        }
    }

    // the empty file (crash before any write hit the disk)
    assert_eq!(drop_reason(&[], fp), DropReason::Torn);

    // a single flipped payload byte: the trailer checksum catches it
    for off in [6, bytes.len() / 2, bytes.len() - 17] {
        let mut flipped = bytes.clone();
        flipped[off] ^= 0x01;
        assert_eq!(drop_reason(&flipped, fp), DropReason::Torn, "flip at {off}");
    }

    // a version from the future is stale, not corrupt
    let mut future = bytes.clone();
    future[4] = 0xff;
    assert_eq!(drop_reason(&future, fp), DropReason::Stale);

    // wrong magic
    let mut magic = bytes.clone();
    magic[0] = b'X';
    assert_eq!(drop_reason(&magic, fp), DropReason::Corrupt);

    // a valid snapshot under the wrong name must not be trusted
    let other = entry_for("grid2d:8");
    assert_eq!(drop_reason(&bytes, other.fingerprint), DropReason::Corrupt);
}

#[test]
fn recovery_scan_unlinks_bad_files_and_keeps_good_ones() {
    let dir = temp_dir("scan");
    let good = entry_for("grid2d:8");
    let bytes = encode_snapshot(&good);
    fs::write(dir.join(format!("{}.factor", good.fingerprint)), &bytes).unwrap();

    // torn copy of a different entry, under its real name
    let torn_entry = entry_for("grid2d:6");
    let torn_bytes = encode_snapshot(&torn_entry);
    fs::write(
        dir.join(format!("{}.factor", torn_entry.fingerprint)),
        &torn_bytes[..torn_bytes.len() * 2 / 3],
    )
    .unwrap();
    // orphaned tmp debris, an empty snapshot, and an untrusted name
    fs::write(
        dir.join("0123456789abcdef0123456789abcdef.factor.tmp"),
        b"x",
    )
    .unwrap();
    fs::write(dir.join("00000000000000000000000000000000.factor"), b"").unwrap();
    fs::write(dir.join("not-a-fingerprint.factor"), b"junk").unwrap();

    let store = FactorStore::open(StoreOptions::new(&dir), FaultPlan::default()).unwrap();
    let recovered = store.recover();
    assert_eq!(recovered.len(), 1);
    assert_eq!(recovered[0].fingerprint, good.fingerprint);
    assert_eq!(store.recovered_count(), 1);
    assert_eq!(store.dropped_count(), 4, "torn + tmp + empty + bad name");
    assert_eq!(
        snapshot_files(&dir),
        vec![format!("{}.factor", good.fingerprint)],
        "everything else was unlinked"
    );
}

#[test]
fn injected_store_faults_are_caught_at_recovery() {
    // store.torn leaves a truncated file under the final name (a simulated
    // crash between write and fsync); store.bitflip flips a payload byte
    // after the trailer was computed (silent corruption). Both must be
    // dropped by the next recovery scan.
    for (spec, tag) in [
        ("store.torn=every:1", "torn"),
        ("store.bitflip=every:1", "flip"),
    ] {
        let dir = temp_dir(&format!("fault-{tag}"));
        let entry = entry_for("grid2d:7");
        {
            let store = FactorStore::open(StoreOptions::new(&dir), FaultPlan::parse(spec).unwrap())
                .unwrap();
            store.save(Arc::clone(&entry));
            assert!(store.flush(Duration::from_secs(10)));
        }
        assert_eq!(snapshot_files(&dir).len(), 1, "{tag}: file landed");
        let store = FactorStore::open(StoreOptions::new(&dir), FaultPlan::default()).unwrap();
        assert!(store.recover().is_empty(), "{tag}: snapshot must not load");
        assert_eq!(store.dropped_count(), 1, "{tag}");
        assert!(snapshot_files(&dir).is_empty(), "{tag}: bad file unlinked");
    }
}

#[test]
fn byte_budget_evicts_oldest_snapshot_first() {
    let dir = temp_dir("budget");
    let a = entry_for("grid2d:6");
    let b = entry_for("grid2d:7");
    let c = entry_for("grid2d:8");
    // room for the two newest snapshots but not all three
    let mut opts = StoreOptions::new(&dir);
    opts.budget_bytes = (encode_snapshot(&b).len() + encode_snapshot(&c).len()) as u64 + 64;
    {
        let store = FactorStore::open(opts.clone(), FaultPlan::default()).unwrap();
        for e in [&a, &b, &c] {
            store.save(Arc::clone(e));
        }
        assert!(store.flush(Duration::from_secs(10)));
        assert_eq!(store.writes(), 3, "eviction happens after the write");
    }
    let files = snapshot_files(&dir);
    assert!(
        !files.contains(&format!("{}.factor", a.fingerprint)),
        "oldest evicted: {files:?}"
    );
    assert!(files.contains(&format!("{}.factor", c.fingerprint)));

    // recovery enforces the same budget and keeps the newest survivors
    let store = FactorStore::open(opts, FaultPlan::default()).unwrap();
    let fps: Vec<Fingerprint> = store.recover().iter().map(|r| r.fingerprint).collect();
    assert!(fps.contains(&c.fingerprint));
    assert!(!fps.contains(&a.fingerprint));
}

#[test]
fn f32_snapshot_round_trips_in_the_narrow_lane() {
    let dir = temp_dir("f32-roundtrip");
    let entry = f32_entry_for("grid2d:9");
    let fp = entry.fingerprint;
    let b = gen::random_rhs(entry.n, 3, 13);
    let want = entry.solver.solve(&b);

    // a demoted factor snapshots at its resident width: half the value
    // bytes of the same entry stored in f64
    let narrow = encode_snapshot(&entry);
    let wide = encode_snapshot(&entry_for("grid2d:9"));
    assert!(
        narrow.len() < wide.len(),
        "f32 snapshot ({}) must be smaller than f64 ({})",
        narrow.len(),
        wide.len()
    );

    {
        let store = FactorStore::open(StoreOptions::new(&dir), FaultPlan::default()).unwrap();
        store.save(Arc::clone(&entry));
        assert!(store.flush(Duration::from_secs(10)));
    }
    let store = FactorStore::open(StoreOptions::new(&dir), FaultPlan::default()).unwrap();
    let recovered = store.recover();
    assert_eq!(recovered.len(), 1);
    let rec = &recovered[0];
    assert_eq!(rec.fingerprint, fp);
    assert!(rec.solver.is_f32(), "precision lane survives the restart");
    assert_eq!(rec.checksum, entry.checksum);
    let got = rec.solver.solve(&b);
    assert_eq!(got, want, "recovered f32 factor must solve bit-identically");

    // the torn-file contract holds for the narrow layout too
    let marks = section_boundaries(&narrow);
    assert_eq!(*marks.last().unwrap(), narrow.len());
    for &m in &marks {
        if m < narrow.len() {
            assert!(matches!(
                drop_reason(&narrow[..m], fp),
                DropReason::Torn | DropReason::Corrupt
            ));
        }
    }
}

/// Byte offset of the version-2 precision-tag byte inside a snapshot image:
/// 6-byte header, then fingerprint (16) + regularize (1) + beta (8).
const TAG_OFFSET: usize = 6 + 16 + 1 + 8;

/// Rebuild a snapshot image with `mutate` applied to the payload and a
/// freshly computed trailer, so only the mutation (not the checksum)
/// decides the verdict.
fn resealed(bytes: &[u8], version: u16, mutate: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let mut payload = bytes[6..bytes.len() - 16].to_vec();
    mutate(&mut payload);
    let trailer = Fingerprint::of_bytes(&payload).to_bytes();
    let mut out = Vec::with_capacity(6 + payload.len() + 16);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&trailer);
    out
}

#[test]
fn version_one_snapshot_still_recovers_as_f64() {
    // A version-1 file is exactly the version-2 layout minus the precision
    // tag; synthesize one from a real f64 snapshot and demand full recovery
    // — files an older server wrote must keep loading forever.
    let dir = temp_dir("v1");
    let entry = entry_for("grid2d:8");
    let fp = entry.fingerprint;
    let bytes = encode_snapshot(&entry);
    assert_eq!(
        bytes[TAG_OFFSET], PRECISION_F64,
        "tag sits where documented"
    );
    let v1 = resealed(&bytes, 1, |payload| {
        payload.remove(TAG_OFFSET - 6);
    });

    let rec = decode_snapshot(&v1, fp).expect("version-1 image decodes");
    assert!(!rec.solver.is_f32(), "tagless snapshots are f64");
    let b = gen::random_rhs(entry.n, 2, 5);
    assert_eq!(rec.solver.solve(&b), entry.solver.solve(&b));

    // and through the full store scan, not just the codec
    std::fs::write(dir.join(format!("{fp}.factor")), &v1).unwrap();
    let store = FactorStore::open(StoreOptions::new(&dir), FaultPlan::default()).unwrap();
    let recovered = store.recover();
    assert_eq!(store.recovered_count(), 1);
    assert_eq!(store.dropped_count(), 0);
    assert_eq!(recovered[0].fingerprint, fp);
}

#[test]
fn unknown_precision_tag_is_corrupt_and_future_version_is_stale() {
    let entry = entry_for("grid2d:7");
    let fp = entry.fingerprint;
    let bytes = encode_snapshot(&entry);

    // a tag this server never writes, under a valid trailer: the writer is
    // inconsistent, not the disk
    let bad_tag = resealed(&bytes, 2, |payload| {
        payload[TAG_OFFSET - 6] = 7;
    });
    assert_eq!(drop_reason(&bad_tag, fp), DropReason::Corrupt);

    // version 3 exactly (not just 0xff..): stale, never parsed
    let mut v3 = bytes.clone();
    v3[4..6].copy_from_slice(&3u16.to_le_bytes());
    assert_eq!(drop_reason(&v3, fp), DropReason::Stale);

    // version 0 was never produced by any writer
    let mut v0 = bytes;
    v0[4..6].copy_from_slice(&0u16.to_le_bytes());
    assert_eq!(drop_reason(&v0, fp), DropReason::Stale);
}

#[test]
fn delete_unlinks_the_snapshot() {
    let dir = temp_dir("delete");
    let entry = entry_for("grid2d:6");
    let store = FactorStore::open(StoreOptions::new(&dir), FaultPlan::default()).unwrap();
    store.save(Arc::clone(&entry));
    assert!(store.flush(Duration::from_secs(10)));
    assert_eq!(snapshot_files(&dir).len(), 1);
    store.delete(entry.fingerprint);
    assert!(store.flush(Duration::from_secs(10)));
    assert!(snapshot_files(&dir).is_empty());
    assert!(store.recover().is_empty());
}
