//! Chaos/soak tests: the solve service under a seeded fault plan.
//!
//! Acceptance for the hardening PR: with faults injected at every site the
//! service must neither hang nor corrupt an answer — every `OK` response is
//! bit-identical to the sequential `SparseCholeskySolver::solve` on the same
//! inputs, every failure is a structured error the client retries through,
//! and after the storm the batch lanes are quiescent (no leaked columns).
//! All randomness is seeded, so a failure replays.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use trisolv_core::SparseCholeskySolver;
use trisolv_matrix::{gen, rng::Rng, CscMatrix, DenseMatrix};
use trisolv_server::protocol::ErrorCode;
use trisolv_server::{
    BatchOptions, Client, ClientError, ClientOptions, EngineOptions, ExecMode, FaultPlan, Server,
    ServerOptions,
};

/// Aborts the whole test process if the guarded scope is still running when
/// the budget elapses — "no hangs" is part of the contract under test, and a
/// wedged soak must fail loudly rather than eat the CI timeout.
struct Watchdog {
    done: Arc<AtomicBool>,
}

impl Watchdog {
    fn arm(label: &'static str, budget: Duration) -> Watchdog {
        let done = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&done);
        std::thread::spawn(move || {
            let start = std::time::Instant::now();
            while start.elapsed() < budget {
                if flag.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            eprintln!("watchdog: {label} exceeded {budget:?}; aborting");
            std::process::abort();
        });
        Watchdog { done }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Release);
    }
}

fn chaos_server(exec: ExecMode, fault: &str) -> trisolv_server::RunningServer {
    Server::spawn(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        engine: EngineOptions {
            exec,
            batch: BatchOptions {
                max_batch: 4,
                window: Duration::from_millis(1),
                wait_timeout: Duration::from_secs(10),
            },
            ..EngineOptions::default()
        },
        fault: FaultPlan::parse(fault).unwrap(),
        ..ServerOptions::default()
    })
    .unwrap()
}

fn resilient_opts(seed: u64) -> ClientOptions {
    ClientOptions {
        connect_timeout: Duration::from_secs(5),
        request_timeout: Duration::from_secs(5),
        retries: 25,
        backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(20),
        seed,
        ..ClientOptions::default()
    }
}

/// Tentpole soak: torn frames, connection drops, slow reads and worker
/// panics all at once, against the bit-exact sequential executor. Every
/// request must eventually succeed through the retry ladder, every answer
/// must be bit-identical to the reference solver, no lane may leak a
/// column, and the watchdog must have respawned at least one worker.
#[test]
fn soak_survives_transport_and_worker_faults() {
    let _dog = Watchdog::arm("seq soak", Duration::from_secs(90));
    let server = chaos_server(
        ExecMode::Seq,
        "seed=1;write.torn=every:13;conn.drop=every:9;read.stall=every:11,ms:2;worker.panic=every:7",
    );
    let addr = server.local_addr().to_string();

    let n = 64;
    let a = gen::random_spd(n, 5, 42);
    let reference = SparseCholeskySolver::factor(&a).unwrap();
    // Loading can itself be hit by connection faults: retry it.
    let fp = {
        let mut c = Client::connect_with(&addr, resilient_opts(999)).unwrap();
        let mut fp = None;
        for _ in 0..20 {
            match c.load(&a) {
                Ok(r) => {
                    fp = Some(r.fingerprint);
                    break;
                }
                Err(e) if e.is_transient() => {
                    std::thread::sleep(Duration::from_millis(5));
                    let mut again = Client::connect_with(&addr, resilient_opts(999)).unwrap();
                    std::mem::swap(&mut c, &mut again);
                }
                Err(e) => panic!("load failed permanently: {e}"),
            }
        }
        fp.expect("LOAD never survived the fault plan")
    };

    let nclients = 6u64;
    let rounds = 30u64;
    std::thread::scope(|scope| {
        for c in 0..nclients {
            let addr = addr.clone();
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect_with(&addr, resilient_opts(c)).unwrap();
                let mut rng = Rng::seed_from_u64(7000 + c);
                for r in 0..rounds {
                    let mut b = DenseMatrix::zeros(n, 1);
                    for v in b.col_mut(0) {
                        *v = rng.range_f64(-1.0, 1.0);
                    }
                    let x = client
                        .solve_with_retry(fp, b.col(0), 0)
                        .unwrap_or_else(|e| panic!("client {c} round {r}: {e}"));
                    assert_eq!(
                        x.as_slice(),
                        reference.solve(&b).col(0),
                        "client {c} round {r}: OK answer not bit-identical under faults"
                    );
                }
            });
        }
    });

    let stats = server.engine().stats();
    // A torn or dropped reply re-runs a solve that already succeeded
    // server-side, so the counter is at-least, not exactly, the request
    // count — duplicate solves are the price of at-least-once retry.
    assert!(
        stats.solves_ok >= nclients * rounds,
        "every request must eventually succeed: {stats:?}"
    );
    assert!(
        stats.faults_injected > 0,
        "the fault plan never fired: {stats:?}"
    );
    assert!(
        stats.worker_respawns > 0,
        "worker.panic=every:7 should have killed (and respawned) a worker: {stats:?}"
    );
    assert!(
        server.engine().lanes_quiescent(),
        "a batch lane leaked in-flight state after the soak"
    );
    server.join();
}

/// Panic isolation in the executor: with `solve.panic` firing every third
/// batch the threaded executor dies repeatedly; each dead batch must be
/// re-answered by the sequential fallback (transparent to clients, counted
/// in `exec_fallbacks`) and answers stay within threaded accuracy.
#[test]
fn injected_solve_panics_degrade_to_seq_fallback() {
    let _dog = Watchdog::arm("threaded fallback soak", Duration::from_secs(60));
    let server = chaos_server(ExecMode::Threaded, "seed=2;solve.panic=every:3");
    let addr = server.local_addr().to_string();

    let n = 48;
    let a = gen::random_spd(n, 4, 17);
    let reference = SparseCholeskySolver::factor(&a).unwrap();
    let fp = Client::connect(&addr)
        .unwrap()
        .load(&a)
        .unwrap()
        .fingerprint;

    std::thread::scope(|scope| {
        for c in 0..4u64 {
            let addr = addr.clone();
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect_with(&addr, resilient_opts(100 + c)).unwrap();
                let mut rng = Rng::seed_from_u64(8000 + c);
                for _ in 0..10 {
                    let mut b = DenseMatrix::zeros(n, 1);
                    for v in b.col_mut(0) {
                        *v = rng.range_f64(-1.0, 1.0);
                    }
                    let x = client.solve_with_retry(fp, b.col(0), 0).unwrap();
                    let expect = reference.solve(&b);
                    let maxdiff = x
                        .iter()
                        .zip(expect.col(0))
                        .map(|(p, q)| (p - q).abs())
                        .fold(0.0f64, f64::max);
                    assert!(
                        maxdiff < 1e-12,
                        "answer drifted through fallback: {maxdiff:e}"
                    );
                }
            });
        }
    });

    let stats = server.engine().stats();
    assert_eq!(stats.solves_ok, 40, "{stats:?}");
    assert!(
        stats.panics_caught > 0 && stats.exec_fallbacks > 0,
        "solve.panic=every:3 should have forced seq fallbacks: {stats:?}"
    );
    assert!(server.engine().lanes_quiescent());
    server.join();
}

/// Admission control over the wire: with `max_pending = 1` and a stalled
/// executor, a second concurrent request is shed with `ERR Busy` carrying a
/// `retry_after_ms` hint — and a retrying client rides through the shed.
#[test]
fn busy_shed_carries_retry_hint_and_is_retryable() {
    let _dog = Watchdog::arm("busy shed", Duration::from_secs(60));
    let server = Server::spawn(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        engine: EngineOptions {
            exec: ExecMode::Threaded,
            max_pending: 1,
            batch: BatchOptions {
                max_batch: 1,
                window: Duration::from_micros(100),
                wait_timeout: Duration::from_secs(10),
            },
            ..EngineOptions::default()
        },
        fault: FaultPlan::parse("seed=3;solve.stall=every:1,ms:400").unwrap(),
        ..ServerOptions::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    let a = gen::grid2d_laplacian(6, 6);
    let mut client = Client::connect(&addr).unwrap();
    let fp = client.load(&a).unwrap().fingerprint;
    let b = gen::random_rhs(36, 1, 3);

    std::thread::scope(|scope| {
        let addr = &addr;
        let rhs = b.col(0);
        // Occupy the single admission slot with a solve stalled for 400 ms.
        scope.spawn(move || {
            let mut hog = Client::connect(addr).unwrap();
            hog.solve(fp, rhs).unwrap();
        });
        std::thread::sleep(Duration::from_millis(100));

        // Single-shot client: shed with a structured Busy + retry hint.
        let err = client.solve(fp, b.col(0)).unwrap_err();
        match err {
            ClientError::Server {
                code,
                retry_after_ms,
                ..
            } => {
                assert_eq!(code, Some(ErrorCode::Busy));
                assert!(
                    retry_after_ms.is_some_and(|ms| ms >= 1),
                    "Busy must carry a retry_after_ms hint"
                );
            }
            other => panic!("expected ERR Busy, got {other:?}"),
        }

        // Retrying client: backs off past the stall and succeeds.
        let mut patient = Client::connect_with(addr, resilient_opts(11)).unwrap();
        patient.solve_with_retry(fp, b.col(0), 0).unwrap();
        assert!(
            patient.retry_stats().shed >= 1 || patient.retry_stats().retried >= 1,
            "the patient client should have ridden through at least one shed"
        );
    });

    assert!(server.engine().stats().shed >= 1);
    server.join();
}

/// Deadline propagation: a 1 ms client deadline cannot survive a 50 ms
/// batch window, so the boarder is expelled at seal time with `ERR
/// Deadline` — it must not stall the lane or get a late answer.
#[test]
fn expired_deadline_is_expelled_with_structured_error() {
    let _dog = Watchdog::arm("deadline expiry", Duration::from_secs(60));
    let server = Server::spawn(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        engine: EngineOptions {
            exec: ExecMode::Seq,
            batch: BatchOptions {
                max_batch: 8,
                window: Duration::from_millis(50),
                wait_timeout: Duration::from_secs(10),
            },
            ..EngineOptions::default()
        },
        ..ServerOptions::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    let a = gen::grid2d_laplacian(6, 6);
    let mut client = Client::connect(&addr).unwrap();
    let fp = client.load(&a).unwrap().fingerprint;
    let b = gen::random_rhs(36, 1, 5);

    let err = client.solve_with_deadline(fp, b.col(0), 1).unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: Some(ErrorCode::Deadline),
                ..
            }
        ),
        "expected ERR Deadline, got {err:?}"
    );
    assert_eq!(server.engine().stats().deadline_misses, 1);
    // The lane shed the expired column cleanly; a sane deadline still works.
    assert_eq!(
        client
            .solve_with_deadline(fp, b.col(0), 5_000)
            .unwrap()
            .len(),
        36
    );
    assert!(server.engine().lanes_quiescent());
    server.join();
}

/// Input hygiene over the wire: non-finite matrices and right-hand sides
/// are rejected with `ERR NonFinite` before touching the numeric kernels.
#[test]
fn non_finite_inputs_are_rejected() {
    let _dog = Watchdog::arm("non-finite rejection", Duration::from_secs(60));
    let server = Server::spawn(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerOptions::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let a = gen::grid2d_laplacian(5, 5);
    let fp = client.load(&a).unwrap().fingerprint;

    let nan_matrix =
        CscMatrix::from_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, f64::NAN]).unwrap();
    let err = client.load(&nan_matrix).unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: Some(ErrorCode::NonFinite),
                ..
            }
        ),
        "NaN matrix must be rejected: {err:?}"
    );

    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut rhs = vec![1.0; 25];
        rhs[7] = bad;
        let err = client.solve(fp, &rhs).unwrap_err();
        assert!(
            matches!(
                err,
                ClientError::Server {
                    code: Some(ErrorCode::NonFinite),
                    ..
                }
            ),
            "rhs containing {bad} must be rejected: {err:?}"
        );
    }
    assert_eq!(server.engine().stats().nonfinite_rejected, 4);
    // The connection is still healthy.
    assert_eq!(client.solve(fp, &[1.0; 25]).unwrap().len(), 25);
    server.join();
}

/// Output hygiene: a factor so ill-scaled that the triangular solve
/// overflows must come back as `ERR NumericBreakdown`, not as a vector of
/// infinities the client would happily use.
#[test]
fn overflowing_solve_reports_numeric_breakdown() {
    let _dog = Watchdog::arm("numeric breakdown", Duration::from_secs(60));
    let server = Server::spawn(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..ServerOptions::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // diag(1e-310): positive definite, factors fine, but x = b / 1e-310
    // overflows to infinity for any O(1) right-hand side.
    let n = 3;
    let tiny =
        CscMatrix::from_parts(n, n, (0..=n).collect(), (0..n).collect(), vec![1e-310; n]).unwrap();
    let fp = client.load(&tiny).unwrap().fingerprint;
    let err = client.solve(fp, &vec![1.0; n]).unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: Some(ErrorCode::NumericBreakdown),
                ..
            }
        ),
        "overflowed solve must be flagged: {err:?}"
    );
    assert_eq!(server.engine().stats().breakdowns, 1);
    assert!(server.engine().lanes_quiescent());
    server.join();
}
