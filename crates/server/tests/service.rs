//! End-to-end tests of the solve service over real loopback TCP.

use std::time::Duration;

use trisolv_core::SparseCholeskySolver;
use trisolv_matrix::{gen, rng::Rng, DenseMatrix};
use trisolv_server::{protocol, protocol::op, protocol::ErrorCode};
use trisolv_server::{
    BatchOptions, Client, ClientError, Engine, EngineOptions, ExecMode, Fingerprint, Server,
    ServerOptions,
};

fn server_opts(exec: ExecMode, max_batch: usize, workers: usize) -> ServerOptions {
    ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers,
        engine: EngineOptions {
            exec,
            batch: BatchOptions {
                max_batch,
                window: Duration::from_millis(2),
                wait_timeout: Duration::from_secs(20),
            },
            ..EngineOptions::default()
        },
        ..ServerOptions::default()
    }
}

#[test]
fn tcp_round_trip_load_solve_stats_evict() {
    let server = Server::spawn(server_opts(ExecMode::Threaded, 4, 8)).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let a = gen::grid2d_laplacian(10, 10);
    let loaded = client.load(&a).unwrap();
    assert_eq!(loaded.n, 100);
    assert!(!loaded.already_cached);
    assert_eq!(loaded.fingerprint, Fingerprint::of_matrix(&a));
    assert!(client.load(&a).unwrap().already_cached);

    let b = gen::random_rhs(100, 1, 5);
    let x = client.solve(loaded.fingerprint, b.col(0)).unwrap();
    let mut xm = DenseMatrix::zeros(100, 1);
    xm.col_mut(0).copy_from_slice(&x);
    let ax = a.spmv_sym_lower(&xm).unwrap();
    assert!(ax.max_abs_diff(&b).unwrap() < 1e-10);

    let stats = client.stats().unwrap();
    let get = |k: &str| {
        stats
            .iter()
            .find(|(key, _)| key == k)
            .unwrap_or_else(|| panic!("missing stat {k}"))
            .1
    };
    assert_eq!(get("entries"), 1);
    assert_eq!(get("solves_ok"), 1);
    assert!(get("resident_bytes") > 0);
    // cache-occupancy gauges (router placement inputs) mirror the legacy keys
    assert_eq!(get("cache_entries"), get("entries"));
    assert_eq!(get("cache_bytes"), get("resident_bytes"));
    assert!(get("cache_bytes") > 0);

    assert!(client.evict(loaded.fingerprint).unwrap());
    assert!(!client.evict(loaded.fingerprint).unwrap());

    client.shutdown_server().unwrap();
    server.join();
}

/// Satellite: two sequential solves through a [`ClientPool`] ride one TCP
/// connection — the second checkout reuses the parked idle connection
/// instead of dialing, pinned by the server's `connections_total` counter.
#[test]
fn pooled_clients_reuse_one_connection() {
    use trisolv_server::{ClientOptions, ClientPool};
    let server = Server::spawn(server_opts(ExecMode::Seq, 1, 2)).unwrap();
    let addr = server.local_addr().to_string();

    let a = gen::grid2d_laplacian(6, 6);
    let fp = {
        let pool = ClientPool::new(&addr, ClientOptions::default(), 4);
        let mut c = pool.get().unwrap();
        let fp = c.load(&a).unwrap().fingerprint;
        let b = gen::random_rhs(36, 1, 1);
        c.solve(fp, b.col(0)).unwrap();
        drop(c); // parks the connection
        assert_eq!(pool.idle_count(), 1);
        let mut c2 = pool.get().unwrap();
        assert_eq!(pool.idle_count(), 0, "second checkout took the idle conn");
        c2.solve(fp, b.col(0)).unwrap();
        fp
    };

    // LOAD + two solves all happened over a single connection
    let mut probe = Client::connect(&addr).unwrap();
    let stats = probe.stats().unwrap();
    let total = stats
        .iter()
        .find(|(k, _)| k == "connections_total")
        .unwrap()
        .1;
    assert_eq!(
        total, 2,
        "one pooled connection + this probe; a fresh dial per solve would show more"
    );
    // a discarded connection is not returned to the pool
    let pool = ClientPool::new(&addr, ClientOptions::default(), 4);
    let mut c = pool.get().unwrap();
    c.solve(fp, gen::random_rhs(36, 1, 2).col(0)).unwrap();
    c.discard();
    assert_eq!(pool.idle_count(), 0);
    probe.shutdown_server().unwrap();
    server.join();
}

/// Satellite: N concurrent single-RHS clients against one cached factor all
/// get answers bit-identical to `seq::solve` (the `SparseCholeskySolver`
/// sequential path) on the same inputs — property-style over seeded random
/// SPD matrices. The server runs the `Seq` executor, whose blocked solves
/// are column-for-column bit-identical to the sequential single-RHS path.
#[test]
fn concurrent_solves_bit_identical_to_seq() {
    let server = Server::spawn(server_opts(ExecMode::Seq, 8, 16)).unwrap();
    let addr = server.local_addr().to_string();

    for trial in 0..3u64 {
        let n = 50 + 10 * trial as usize;
        let a = gen::random_spd(n, 5, 100 + trial);
        let reference = SparseCholeskySolver::factor(&a).unwrap();
        let fp = Client::connect(&addr)
            .unwrap()
            .load(&a)
            .unwrap()
            .fingerprint;

        let nclients = 8;
        let rounds = 4;
        std::thread::scope(|scope| {
            for c in 0..nclients {
                let addr = addr.clone();
                let reference = &reference;
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    let mut rng = Rng::seed_from_u64(trial * 1000 + c);
                    for _ in 0..rounds {
                        let mut b = DenseMatrix::zeros(n, 1);
                        for v in b.col_mut(0) {
                            *v = rng.range_f64(-1.0, 1.0);
                        }
                        let x = client.solve(fp, b.col(0)).unwrap();
                        let expect = reference.solve(&b);
                        assert_eq!(
                            x.as_slice(),
                            expect.col(0),
                            "answer not bit-identical to the sequential solve"
                        );
                    }
                });
            }
        });
    }
    server.join();
}

/// The threaded executor under the same concurrent load: answers must agree
/// with the sequential solver to tight accuracy (its different but
/// equivalent child-update accumulation order perturbs only the last bits).
#[test]
fn concurrent_threaded_solves_match_seq_closely() {
    let server = Server::spawn(server_opts(ExecMode::Threaded, 8, 16)).unwrap();
    let addr = server.local_addr().to_string();
    let n = 80;
    let a = gen::random_spd(n, 5, 77);
    let reference = SparseCholeskySolver::factor(&a).unwrap();
    let fp = Client::connect(&addr)
        .unwrap()
        .load(&a)
        .unwrap()
        .fingerprint;

    std::thread::scope(|scope| {
        for c in 0..8u64 {
            let addr = addr.clone();
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let mut rng = Rng::seed_from_u64(500 + c);
                for _ in 0..4 {
                    let mut b = DenseMatrix::zeros(n, 1);
                    for v in b.col_mut(0) {
                        *v = rng.range_f64(-1.0, 1.0);
                    }
                    let x = client.solve(fp, b.col(0)).unwrap();
                    let expect = reference.solve(&b);
                    let maxdiff = x
                        .iter()
                        .zip(expect.col(0))
                        .map(|(p, q)| (p - q).abs())
                        .fold(0.0f64, f64::max);
                    assert!(maxdiff < 1e-12, "threaded answer drifted: {maxdiff:e}");
                }
            });
        }
    });
    let stats = server.engine().stats();
    assert!(stats.batches > 0);
    assert_eq!(stats.batched_cols, stats.solves_ok);
    server.join();
}

/// Acceptance: the server survives a malformed frame, an oversized RHS and
/// an unknown fingerprint without crashing, answering protocol errors.
#[test]
fn server_survives_hostile_input() {
    let server = Server::spawn(server_opts(ExecMode::Threaded, 4, 4)).unwrap();
    let addr = server.local_addr().to_string();

    let a = gen::grid2d_laplacian(6, 6);
    let mut client = Client::connect(&addr).unwrap();
    let fp = client.load(&a).unwrap().fingerprint;

    // 1. oversized RHS: structured dimension-mismatch error, connection
    //    stays usable
    let err = client.solve(fp, &vec![1.0; 500]).unwrap_err();
    match err {
        ClientError::Server { code, message, .. } => {
            assert_eq!(code, Some(ErrorCode::DimensionMismatch));
            assert!(
                message.contains("500") && message.contains("36"),
                "{message}"
            );
        }
        other => panic!("expected server error, got {other:?}"),
    }

    // 2. unknown fingerprint: structured error, connection stays usable
    let err = client.solve(Fingerprint(1, 2), &vec![0.0; 36]).unwrap_err();
    assert!(matches!(
        err,
        ClientError::Server {
            code: Some(ErrorCode::UnknownFingerprint),
            ..
        }
    ));

    // 3. unknown opcode: structured error, connection stays usable
    client
        .send_raw(&{
            let mut f = Vec::new();
            protocol::write_frame(&mut f, 0x7E, &[1, 2, 3]).unwrap();
            f
        })
        .unwrap();
    let (opcode, _) = client.recv_raw().unwrap();
    assert_eq!(opcode, op::ERR);

    // 4. truncated SOLVE payload: structured error, connection stays usable
    client
        .send_raw(&{
            let mut f = Vec::new();
            protocol::write_frame(&mut f, op::SOLVE, &[0xAB; 7]).unwrap();
            f
        })
        .unwrap();
    let (opcode, _) = client.recv_raw().unwrap();
    assert_eq!(opcode, op::ERR);

    // ...the same connection still solves correctly
    let b = gen::random_rhs(36, 1, 1);
    assert_eq!(client.solve(fp, b.col(0)).unwrap().len(), 36);

    // 5. garbage length prefix: the server replies ERR and closes this
    //    connection (it cannot resync), but keeps serving others
    let mut evil = Client::connect(&addr).unwrap();
    evil.send_raw(&u32::MAX.to_le_bytes()).unwrap();
    // (the server may close before the reply is readable; an Err is fine)
    if let Ok((opcode, payload)) = evil.recv_raw() {
        assert_eq!(opcode, op::ERR);
        let mut c = protocol::Cursor::new(&payload);
        assert_eq!(c.u16().unwrap(), ErrorCode::TooLarge as u16);
    }
    // the poisoned connection is dead...
    assert!(evil.solve(fp, b.col(0)).is_err());
    // ...but a fresh one (and the old good one) still work
    let mut fresh = Client::connect(&addr).unwrap();
    assert_eq!(fresh.solve(fp, b.col(0)).unwrap().len(), 36);
    assert_eq!(client.solve(fp, b.col(0)).unwrap().len(), 36);

    // 6. non-SPD LOAD: structured error, not a worker panic
    let n = 4;
    let bad = trisolv_matrix::CscMatrix::from_parts(
        n,
        n,
        (0..=n).collect(),
        (0..n).collect(),
        vec![-1.0; n],
    )
    .unwrap();
    let err = fresh.load(&bad).unwrap_err();
    assert!(matches!(
        err,
        ClientError::Server {
            code: Some(ErrorCode::NotSpd),
            ..
        }
    ));

    client.shutdown_server().unwrap();
    server.join();
}

/// The in-process load generator against a live server: non-zero completed
/// requests, zero errors, and consistent engine counters.
#[test]
fn loadgen_smoke() {
    let server = Server::spawn(server_opts(ExecMode::Threaded, 4, 8)).unwrap();
    let addr = server.local_addr().to_string();
    let a = gen::grid2d_laplacian(12, 12);
    let loaded = Client::connect(&addr).unwrap().load(&a).unwrap();

    let report = trisolv_server::run_load(&trisolv_server::LoadGenOptions {
        addr: addr.clone(),
        fingerprint: loaded.fingerprint,
        n: loaded.n,
        clients: 4,
        duration: Duration::from_millis(300),
        seed: 7,
        deadline_ms: 0,
        client: trisolv_server::ClientOptions::default(),
        idle_conns: 0,
    })
    .unwrap();
    assert!(report.requests > 0, "{report:?}");
    assert_eq!(report.errors, 0, "{report:?}");
    assert!(report.p50_us > 0.0 && report.p99_us >= report.p50_us);
    assert_eq!(server.engine().stats().solves_ok, report.requests);
    server.join();
}

/// Certified solves over TCP (protocol v3): the reply carries the
/// refinement certificate, v2-style frames (no flags byte) still work on
/// the same connection, and unknown flag bits are rejected as malformed.
#[test]
fn tcp_certified_solve_round_trip() {
    let server = Server::spawn(server_opts(ExecMode::Threaded, 4, 4)).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let a = gen::grid2d_laplacian(9, 9);
    let fp = client.load(&a).unwrap().fingerprint;
    let b = gen::random_rhs(81, 1, 11);

    let reply = client.solve_certified(fp, b.col(0), 0).unwrap();
    assert!(reply.certified, "backward error {}", reply.backward_error);
    assert!(reply.backward_error <= 1e-10);
    assert_eq!(reply.x.len(), 81);
    let mut xm = DenseMatrix::zeros(81, 1);
    xm.col_mut(0).copy_from_slice(&reply.x);
    let ax = a.spmv_sym_lower(&xm).unwrap();
    assert!(ax.max_abs_diff(&b).unwrap() < 1e-10);

    // a v2-style SOLVE (no flags byte) still works on the same connection
    let x2 = client.solve(fp, b.col(0)).unwrap();
    assert_eq!(x2.len(), 81);

    // unknown flag bits are a malformed request, not a panic
    client
        .send_raw(&{
            let payload = protocol::Builder::new()
                .fingerprint(fp)
                .u64(0)
                .u64(81)
                .f64_slice(b.col(0))
                .u8(0x80)
                .build();
            let mut f = Vec::new();
            protocol::write_frame(&mut f, op::SOLVE, &payload).unwrap();
            f
        })
        .unwrap();
    let (opcode, payload) = client.recv_raw().unwrap();
    assert_eq!(opcode, op::ERR);
    let mut c = protocol::Cursor::new(&payload);
    assert_eq!(c.u16().unwrap(), ErrorCode::Malformed as u16);

    let stats = client.stats().unwrap();
    let get = |k: &str| stats.iter().find(|(key, _)| key == k).unwrap().1;
    assert_eq!(get("certified_solves"), 1);
    assert_eq!(get("solves_ok"), 2);

    client.shutdown_server().unwrap();
    server.join();
}

/// The full self-healing drill over TCP: an injected `cache.torn` fault
/// silently corrupts the resident factor, the per-solve verify cadence
/// detects it, the engine refactors from the retained matrix, and the
/// answer is bit-identical to a fresh sequential solver — the client never
/// sees anything but correct replies.
#[test]
fn tcp_cache_corruption_self_heals() {
    let mut opts = server_opts(ExecMode::Seq, 1, 4);
    opts.engine.verify_every = 1;
    opts.fault = trisolv_server::FaultPlan::parse("cache.torn=every:3").unwrap();
    let server = Server::spawn(opts).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let a = gen::random_spd(70, 5, 42);
    let fp = client.load(&a).unwrap().fingerprint;
    let reference = SparseCholeskySolver::factor(&a).unwrap();

    let mut rng = Rng::seed_from_u64(99);
    for round in 0..9 {
        let mut b = DenseMatrix::zeros(70, 1);
        for v in b.col_mut(0) {
            *v = rng.range_f64(-1.0, 1.0);
        }
        let x = client.solve(fp, b.col(0)).unwrap();
        assert_eq!(
            x.as_slice(),
            reference.solve(&b).col(0),
            "round {round}: answer not bit-identical after self-heal"
        );
    }
    let stats = client.stats().unwrap();
    let get = |k: &str| stats.iter().find(|(key, _)| key == k).unwrap().1;
    assert_eq!(get("self_heals"), 3, "corruption fired on rounds 3, 6, 9");
    assert!(get("integrity_checks") >= 9);
    assert!(get("faults_injected") >= 3);
    assert_eq!(get("solves_ok"), 9);

    client.shutdown_server().unwrap();
    server.join();
}

/// An engine constructed directly (no TCP) also honors the batching
/// counters contract used by `bench_server`.
#[test]
fn in_process_engine_batches_concurrent_requests() {
    let engine = Engine::new(EngineOptions {
        exec: ExecMode::Threaded,
        batch: BatchOptions {
            max_batch: 8,
            window: Duration::from_millis(20),
            wait_timeout: Duration::from_secs(20),
        },
        ..EngineOptions::default()
    });
    let a = gen::grid2d_laplacian(8, 8);
    let fp = engine.load(&a).unwrap().fingerprint;
    let nreq = 16u64;
    std::thread::scope(|scope| {
        for i in 0..nreq {
            let engine = &engine;
            scope.spawn(move || {
                let b = gen::random_rhs(64, 1, i);
                engine.solve(fp, b.col(0).to_vec()).unwrap();
            });
        }
    });
    let s = engine.stats();
    assert_eq!(s.solves_ok, nreq);
    assert_eq!(s.batched_cols, nreq);
    assert!(
        s.batches < nreq,
        "concurrent requests should share batches: {s:?}"
    );
    assert!(s.max_batch >= 2);
}
