//! Satellite bugfix regression: an idle server must actually sleep.
//!
//! The old front end polled everywhere — the acceptor woke every 20 ms,
//! every worker's `recv_timeout` expired every 20 ms, and each parked
//! connection's read timed out every 20 ms — so a process holding 100 idle
//! connections racked up thousands of voluntary context switches per
//! second doing nothing. The event-driven front end blocks in `poll(2)`
//! with no timeout when nothing has a deadline, workers block on their
//! queue, and the watchdog blocks on its exit channel, so the measured
//! wakeup rate over a 2 s idle window is near zero.
//!
//! Lives in its own integration-test binary so the counter read from
//! `/proc/self/task/*/status` sees only this server's threads.

#![cfg(target_os = "linux")]

use std::net::TcpStream;
use std::time::Duration;

use trisolv_server::{Client, Server, ServerOptions};

/// Sum `voluntary_ctxt_switches` over every thread in this process.
fn voluntary_switches() -> u64 {
    let mut total = 0u64;
    for entry in std::fs::read_dir("/proc/self/task").expect("linux procfs") {
        let path = entry.expect("task entry").path().join("status");
        let Ok(status) = std::fs::read_to_string(&path) else {
            continue; // thread exited between readdir and read
        };
        for line in status.lines() {
            if let Some(v) = line.strip_prefix("voluntary_ctxt_switches:") {
                total += v.trim().parse::<u64>().unwrap_or(0);
            }
        }
    }
    total
}

#[test]
fn idle_server_with_idle_connections_barely_wakes() {
    let server = Server::spawn(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        ..ServerOptions::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    // prove the server is actually up, then go quiet
    let mut client = Client::connect(&addr).unwrap();
    client.stats().unwrap();
    let idle: Vec<TcpStream> = (0..100)
        .map(|_| TcpStream::connect(&addr).expect("idle connect"))
        .collect();

    // let accepts, TCP handshakes and scheduler noise settle
    std::thread::sleep(Duration::from_millis(400));

    let before = voluntary_switches();
    std::thread::sleep(Duration::from_secs(2));
    let delta = voluntary_switches() - before;

    // The old code produced well over 1000 switches here (acceptor and 8
    // workers at 50 wakeups/s each, plus per-connection read timeouts).
    // The event loop should sit fully parked; the bound leaves generous
    // headroom for test-harness threads and stray kernel wakeups.
    assert!(
        delta < 120,
        "idle server woke {delta} times in 2 s; the front end is polling"
    );

    drop(idle);
    client.shutdown_server().unwrap();
    server.join();
}
