//! Event-driven front-end tests: pipelining, idle fan-in, slow-loris
//! cutoff, torn-frame recovery, and the retry/overflow bug fixes.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use trisolv_core::SparseCholeskySolver;
use trisolv_matrix::{gen, DenseMatrix};
use trisolv_server::{protocol, protocol::op, protocol::ErrorCode};
use trisolv_server::{
    BatchOptions, Client, ClientError, ClientOptions, EngineOptions, ExecMode, FaultPlan, Server,
    ServerOptions,
};

fn opts(exec: ExecMode, max_batch: usize, workers: usize) -> ServerOptions {
    ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers,
        engine: EngineOptions {
            exec,
            batch: BatchOptions {
                max_batch,
                window: Duration::from_millis(2),
                wait_timeout: Duration::from_secs(20),
            },
            ..EngineOptions::default()
        },
        ..ServerOptions::default()
    }
}

/// Tentpole: N SOLVE frames written back-to-back on one connection (no
/// reads in between) come back in request order, each bit-identical to the
/// sequential solver on the same input.
#[test]
fn pipelined_solves_in_order_bit_identical() {
    let server = Server::spawn(opts(ExecMode::Seq, 4, 8)).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let n = 64;
    let a = gen::random_spd(n, 5, 321);
    let reference = SparseCholeskySolver::factor(&a).unwrap();
    let fp = client.load(&a).unwrap().fingerprint;

    // burst: all requests hit the wire before any reply is read
    let nreq = 12;
    let rhs: Vec<DenseMatrix> = (0..nreq).map(|i| gen::random_rhs(n, 1, i as u64)).collect();
    let mut burst = Vec::new();
    for b in &rhs {
        let payload = protocol::Builder::new()
            .fingerprint(fp)
            .u64(0)
            .u64(n as u64)
            .f64_slice(b.col(0))
            .build();
        protocol::write_frame(&mut burst, op::SOLVE, &payload).unwrap();
    }
    client.send_raw(&burst).unwrap();

    for (i, b) in rhs.iter().enumerate() {
        let (opcode, reply) = client.recv_raw().unwrap();
        assert_eq!(opcode, op::OK_SOLVED, "request {i}");
        let mut c = protocol::Cursor::new(&reply);
        let len = c.usize().unwrap();
        let x = c.f64_vec(len).unwrap();
        assert_eq!(
            x.as_slice(),
            reference.solve(b).col(0),
            "reply {i} out of order or not bit-identical"
        );
    }

    let stats = client.stats().unwrap();
    let get = |k: &str| stats.iter().find(|(key, _)| key == k).unwrap().1;
    assert!(get("frames_pipelined") >= 1, "burst never overlapped");
    assert!(get("connections_total") >= 1);
    assert!(get("connections_open") >= 1);

    client.shutdown_server().unwrap();
    server.join();
}

/// Read one `len | opcode | payload` frame off a raw socket.
fn read_frame(s: &mut TcpStream) -> std::io::Result<(u8, Vec<u8>)> {
    let mut len = [0u8; 4];
    s.read_exact(&mut len)?;
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    s.read_exact(&mut body)?;
    Ok((body[0], body[1..].to_vec()))
}

/// Regression: a burst larger than `max_pipeline` is drained into the
/// connection's read buffer by one socket read, where level-triggered poll
/// can never see it again — admission must resume when completions free
/// pipeline slots, not on socket readiness. With the cap at 1 the old loop
/// answered exactly one request and stranded the rest forever; the tentpole
/// test's 12-frame burst never tripped this because it sat under the
/// default cap of 64.
#[test]
fn burst_past_pipeline_cap_is_fully_answered() {
    let mut o = opts(ExecMode::Seq, 4, 4);
    o.max_pipeline = 1;
    let server = Server::spawn(o).unwrap();
    let addr = server.local_addr().to_string();
    // bounded reads so a stranded frame fails the test instead of hanging
    // it; pinned to the legacy protocol because the burst below is raw
    // legacy-framed bytes
    let mut client = Client::connect_with(
        &addr,
        ClientOptions {
            request_timeout: Duration::from_secs(5),
            max_version: 3,
            ..ClientOptions::default()
        },
    )
    .unwrap();

    let n = 36;
    let a = gen::grid2d_laplacian(6, 6);
    let reference = SparseCholeskySolver::factor(&a).unwrap();
    let fp = client.load(&a).unwrap().fingerprint;

    let nreq = 8;
    let rhs: Vec<DenseMatrix> = (0..nreq)
        .map(|i| gen::random_rhs(n, 1, 100 + i as u64))
        .collect();
    let mut burst = Vec::new();
    for b in &rhs {
        let payload = protocol::Builder::new()
            .fingerprint(fp)
            .u64(0)
            .u64(n as u64)
            .f64_slice(b.col(0))
            .build();
        protocol::write_frame(&mut burst, op::SOLVE, &payload).unwrap();
    }
    client.send_raw(&burst).unwrap();
    for (i, b) in rhs.iter().enumerate() {
        let (opcode, reply) = client
            .recv_raw()
            .unwrap_or_else(|e| panic!("request {i} stranded past the pipeline cap: {e}"));
        assert_eq!(opcode, op::OK_SOLVED, "request {i}");
        let mut c = protocol::Cursor::new(&reply);
        let len = c.usize().unwrap();
        assert_eq!(
            c.f64_vec(len).unwrap().as_slice(),
            reference.solve(b).col(0),
            "reply {i} out of order"
        );
    }

    // EOF variant: the whole burst lands and the peer half-closes before
    // reading a single reply. Frames already in userspace owe nothing to
    // the socket — every one must still be answered, then the server
    // closes. The old loop silently dropped everything past the cap here.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    raw.write_all(&burst).unwrap();
    raw.shutdown(Shutdown::Write).unwrap();
    for i in 0..nreq {
        let (opcode, _) =
            read_frame(&mut raw).unwrap_or_else(|e| panic!("request {i} dropped at peer EOF: {e}"));
        assert_eq!(opcode, op::OK_SOLVED, "request {i} after half-close");
    }
    let mut probe = [0u8; 1];
    assert_eq!(
        raw.read(&mut probe).unwrap_or(0),
        0,
        "server must close once the flush drains"
    );

    client.shutdown_server().unwrap();
    server.join();
}

/// Regression: rejecting a connection over `max_conns` must never block
/// the event loop — the `ERR Busy` write is best-effort on a nonblocking
/// socket, so peers that connect and never read cannot stall service for
/// the admitted connection.
#[test]
fn conn_limit_rejection_never_blocks_the_loop() {
    let mut o = opts(ExecMode::Threaded, 4, 4);
    o.max_conns = 1;
    let server = Server::spawn(o).unwrap();
    let addr = server.local_addr().to_string();

    let mut client = Client::connect_with(
        &addr,
        ClientOptions {
            request_timeout: Duration::from_secs(5),
            ..ClientOptions::default()
        },
    )
    .unwrap();
    let a = gen::grid2d_laplacian(6, 6);
    let fp = client.load(&a).unwrap().fingerprint;

    // peers that connect but never read a byte
    let rejected: Vec<TcpStream> = (0..8)
        .map(|_| TcpStream::connect(&addr).expect("reject connect"))
        .collect();

    // the admitted connection keeps being served promptly
    for seed in 0..4 {
        let b = gen::random_rhs(36, 1, seed);
        assert_eq!(client.solve(fp, b.col(0)).unwrap().len(), 36);
    }

    // each rejected peer got the best-effort ERR Busy, then a close
    for (i, mut s) in rejected.into_iter().enumerate() {
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let (opcode, payload) = read_frame(&mut s)
            .unwrap_or_else(|e| panic!("rejected peer {i} never got ERR Busy: {e}"));
        assert_eq!(opcode, op::ERR, "peer {i}");
        let mut c = protocol::Cursor::new(&payload);
        assert_eq!(c.u16().unwrap(), ErrorCode::Busy as u16, "peer {i}");
        let mut probe = [0u8; 1];
        assert_eq!(
            s.read(&mut probe).unwrap_or(0),
            0,
            "peer {i} must be closed"
        );
    }

    client.shutdown_server().unwrap();
    server.join();
}

/// Satellite: hundreds of idle connections must not consume solver workers.
/// With only 2 workers, the old thread-per-connection front end parks both
/// on the first two idle sockets and the active client starves.
#[test]
fn many_idle_connections_dont_starve_service() {
    let server = Server::spawn(opts(ExecMode::Threaded, 4, 2)).unwrap();
    let addr = server.local_addr().to_string();

    let idle: Vec<TcpStream> = (0..300)
        .map(|_| TcpStream::connect(&addr).expect("idle connect"))
        .collect();

    // bounded reads so starvation fails fast instead of hanging the test
    let mut client = Client::connect_with(
        &addr,
        ClientOptions {
            request_timeout: Duration::from_secs(5),
            ..ClientOptions::default()
        },
    )
    .unwrap();
    let a = gen::grid2d_laplacian(8, 8);
    let fp = client.load(&a).unwrap().fingerprint;
    for seed in 0..4 {
        let b = gen::random_rhs(64, 1, seed);
        assert_eq!(client.solve(fp, b.col(0)).unwrap().len(), 64);
    }

    drop(idle);
    client.shutdown_server().unwrap();
    server.join();
}

/// Satellite: a peer that starts a frame and stalls is cut loose with
/// `ERR Timeout` once the io budget expires — re-pinned against the event
/// loop's read-deadline path.
#[test]
fn slow_loris_is_cut_loose() {
    let mut o = opts(ExecMode::Threaded, 4, 4);
    o.io_timeout = Duration::from_millis(200);
    let server = Server::spawn(o).unwrap();
    let addr = server.local_addr().to_string();

    let mut loris = Client::connect(&addr).unwrap();
    // length says 20 bytes; send the prefix plus two bytes and stall
    let mut partial = 20u32.to_le_bytes().to_vec();
    partial.extend_from_slice(&[op::SOLVE, 0x00]);
    loris.send_raw(&partial).unwrap();

    let (opcode, payload) = loris.recv_raw().expect("ERR Timeout before close");
    assert_eq!(opcode, op::ERR);
    let mut c = protocol::Cursor::new(&payload);
    assert_eq!(c.u16().unwrap(), ErrorCode::Timeout as u16);
    // ...and the connection is then closed
    assert!(loris.recv_raw().is_err());

    // a well-behaved client is untouched
    let mut client = Client::connect(&addr).unwrap();
    let a = gen::grid2d_laplacian(6, 6);
    let fp = client.load(&a).unwrap().fingerprint;
    let b = gen::random_rhs(36, 1, 3);
    assert_eq!(client.solve(fp, b.col(0)).unwrap().len(), 36);

    client.shutdown_server().unwrap();
    server.join();
}

/// Satellite: a torn reply desynchronizes the stream; the retrying client
/// must recover by reconnecting, never by reusing the poisoned connection —
/// re-pinned against the event loop's write-fault path.
#[test]
fn torn_frame_reply_recovers_via_reconnect() {
    let mut o = opts(ExecMode::Threaded, 4, 4);
    o.fault = FaultPlan::parse("write.torn=every:2").unwrap();
    let server = Server::spawn(o).unwrap();
    let addr = server.local_addr().to_string();

    let mut client = Client::connect_with(
        &addr,
        ClientOptions {
            retries: 8,
            backoff: Duration::from_millis(1),
            request_timeout: Duration::from_secs(2),
            ..ClientOptions::default()
        },
    )
    .unwrap();
    let a = gen::grid2d_laplacian(7, 7);
    let fp = client.load(&a).unwrap().fingerprint;
    for seed in 0..6 {
        let b = gen::random_rhs(49, 1, seed);
        let x = client.solve_with_retry(fp, b.col(0), 0).unwrap();
        assert_eq!(x.len(), 49);
    }
    assert!(
        client.retry_stats().reconnects >= 1,
        "torn replies must force reconnects: {:?}",
        client.retry_stats()
    );
    server.shutdown();
    server.join();
}

/// Satellite bugfix: a LOAD header with `ncols == u64::MAX` used to compute
/// `ncols + 1` unchecked (a debug-build panic answered `ERR Internal`); it
/// must be a structured `ERR Malformed` with the connection still usable.
#[test]
fn load_ncols_overflow_is_malformed() {
    let server = Server::spawn(opts(ExecMode::Threaded, 4, 4)).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let payload = protocol::Builder::new()
        .u64(1)
        .u64(u64::MAX) // ncols: ncols + 1 overflows
        .u64(0)
        .build();
    let mut frame = Vec::new();
    protocol::write_frame(&mut frame, op::LOAD, &payload).unwrap();
    client.send_raw(&frame).unwrap();
    let (opcode, reply) = client.recv_raw().unwrap();
    assert_eq!(opcode, op::ERR);
    let mut c = protocol::Cursor::new(&reply);
    assert_eq!(
        c.u16().unwrap(),
        ErrorCode::Malformed as u16,
        "overflow must be a malformed request, not an internal error"
    );

    // the connection survives and still serves
    let a = gen::grid2d_laplacian(5, 5);
    let fp = client.load(&a).unwrap().fingerprint;
    let b = gen::random_rhs(25, 1, 9);
    assert_eq!(client.solve(fp, b.col(0)).unwrap().len(), 25);

    client.shutdown_server().unwrap();
    server.join();
}

/// A minimal hostile "server" that answers every frame with a valid frame
/// carrying a garbage opcode, counting connections and frames served.
fn garbage_opcode_server() -> (String, Arc<AtomicUsize>, Arc<AtomicUsize>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let conns = Arc::new(AtomicUsize::new(0));
    let frames = Arc::new(AtomicUsize::new(0));
    let (c, f) = (Arc::clone(&conns), Arc::clone(&frames));
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            c.fetch_add(1, Ordering::SeqCst);
            loop {
                let mut len = [0u8; 4];
                if stream.read_exact(&mut len).is_err() {
                    break;
                }
                let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
                if stream.read_exact(&mut body).is_err() {
                    break;
                }
                f.fetch_add(1, Ordering::SeqCst);
                // valid framing, nonsense opcode: the client can parse the
                // frame but not interpret the reply
                let mut reply = Vec::new();
                protocol::write_frame(&mut reply, 0x60, &[0xAA; 4]).unwrap();
                if stream.write_all(&reply).is_err() {
                    break;
                }
            }
        }
    });
    (addr, conns, frames)
}

/// Satellite bugfix: a `Protocol` error means the stream may be
/// desynchronized, so `solve_with_retry` must reconnect before retrying and
/// go permanent once a *fresh* stream also replies garbage. The old code
/// retried on the same socket up to `retries` times.
#[test]
fn protocol_errors_retry_once_on_a_fresh_connection_only() {
    let (addr, conns, frames) = garbage_opcode_server();
    let fp = trisolv_server::Fingerprint(1, 2);

    // reconnect-capable client: attempt on conn 1, reconnect, attempt on
    // conn 2, then permanent — exactly 2 frames over exactly 2 connections
    let mut client = Client::connect_with(
        &addr,
        ClientOptions {
            retries: 5,
            backoff: Duration::from_millis(1),
            request_timeout: Duration::from_secs(2),
            // the fake server answers everything (a HELLO included) with
            // garbage; pin legacy so construction reaches the retry ladder
            max_version: 3,
            ..ClientOptions::default()
        },
    )
    .unwrap();
    let err = client.solve_with_retry(fp, &[1.0, 2.0], 0).unwrap_err();
    assert!(matches!(err, ClientError::Protocol(_)), "{err:?}");
    assert_eq!(
        frames.load(Ordering::SeqCst),
        2,
        "must not retry a desynchronized stream"
    );
    assert_eq!(conns.load(Ordering::SeqCst), 2);
    assert_eq!(client.retry_stats().reconnects, 1);

    // a client with no retained address cannot reconnect: one attempt, done
    let (addr2, conns2, frames2) = garbage_opcode_server();
    let mut bare = Client::connect(&addr2).unwrap();
    let err = bare.solve_with_retry(fp, &[1.0], 0).unwrap_err();
    assert!(matches!(err, ClientError::Protocol(_)), "{err:?}");
    assert_eq!(frames2.load(Ordering::SeqCst), 1);
    assert_eq!(conns2.load(Ordering::SeqCst), 1);
}
