//! Regression: an expired read deadline behind an in-flight solve must not
//! busy-spin the event loop.
//!
//! When a slow-loris deadline expires while an earlier request on the same
//! connection is still in flight, the `ERR Timeout` outcome waits in the
//! reorder map behind the in-flight sequence number. The old loop left the
//! expired deadline armed, so `nearest_deadline` kept returning ~zero and
//! the loop spun at a zero poll timeout — re-queueing a fresh error outcome
//! every lap and burning a full core until the solve resolved (up to
//! `deadline_cap`, 30 s by default, off one trivially hostile client).
//! `fail_and_close` now disarms the deadline and kills the input side on
//! the first firing, so the loop parks until the completion arrives.
//!
//! Lives in its own integration-test binary so the `/proc/self` CPU
//! accounting sees only this server's threads.

#![cfg(target_os = "linux")]

use std::time::Duration;

use trisolv_matrix::gen;
use trisolv_server::{
    protocol, protocol::op, protocol::ErrorCode, Client, ClientOptions, EngineOptions, ExecMode,
    FaultPlan, Server, ServerOptions,
};

/// This process's total CPU time (utime + stime) in milliseconds.
fn process_cpu_ms() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").expect("linux procfs");
    // fields after the parenthesized comm, so spaces in the name are safe;
    // utime/stime are fields 14/15 (1-indexed), i.e. 11/12 from field 3
    let rest = &stat[stat.rfind(')').expect("stat comm") + 2..];
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields[11].parse().expect("utime");
    let stime: u64 = fields[12].parse().expect("stime");
    // USER_HZ is 100 on every mainstream Linux configuration
    (utime + stime) * 1000 / 100
}

#[test]
fn expired_deadline_behind_inflight_solve_does_not_spin() {
    let server = Server::spawn(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        engine: EngineOptions {
            exec: ExecMode::Threaded,
            ..EngineOptions::default()
        },
        // every solve stalls long enough to hold the in-flight slot while
        // the read deadline expires and the measurement window runs
        fault: FaultPlan::parse("solve.stall=every:1,ms:2500").unwrap(),
        io_timeout: Duration::from_millis(200),
        ..ServerOptions::default()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    let mut client = Client::connect_with(
        &addr,
        ClientOptions {
            request_timeout: Duration::from_secs(10),
            // the hand-built frames below are legacy-framed
            max_version: 3,
            ..ClientOptions::default()
        },
    )
    .unwrap();
    let n = 25;
    let a = gen::grid2d_laplacian(5, 5);
    let fp = client.load(&a).unwrap().fingerprint;

    // one complete SOLVE (goes in flight and stalls in the executor), then
    // a partial frame that never finishes — and the client goes silent
    let b = gen::random_rhs(n, 1, 7);
    let payload = protocol::Builder::new()
        .fingerprint(fp)
        .u64(0)
        .u64(n as u64)
        .f64_slice(b.col(0))
        .build();
    let mut bytes = Vec::new();
    protocol::write_frame(&mut bytes, op::SOLVE, &payload).unwrap();
    bytes.extend_from_slice(&20u32.to_le_bytes());
    bytes.extend_from_slice(&[op::SOLVE, 0x00]);
    client.send_raw(&bytes).unwrap();

    // let the 200 ms read deadline fire and the dust settle, then measure
    // CPU across a window where the loop has nothing to do but wait for
    // the stalled solve
    std::thread::sleep(Duration::from_millis(600));
    let before = process_cpu_ms();
    std::thread::sleep(Duration::from_millis(1200));
    let spent = process_cpu_ms() - before;
    assert!(
        spent < 300,
        "event loop burned {spent} ms of CPU in a 1200 ms wait window; \
         the expired read deadline is spinning the loop"
    );

    // protocol behavior: the in-flight solve still answers, then exactly
    // one ERR Timeout for the stalled frame, then the close
    let (opcode, _) = client.recv_raw().expect("in-flight solve reply");
    assert_eq!(opcode, op::OK_SOLVED);
    let (opcode, payload) = client.recv_raw().expect("timeout error frame");
    assert_eq!(opcode, op::ERR);
    let mut c = protocol::Cursor::new(&payload);
    assert_eq!(c.u16().unwrap(), ErrorCode::Timeout as u16);
    assert!(
        client.recv_raw().is_err(),
        "connection must close after ERR"
    );

    server.shutdown();
    server.join();
}
