//! Protocol version-compat matrix against a v4 server (satellite c).
//!
//! Rolling-upgrade invariant: a v4 server must serve pre-v4 clients
//! byte-unchanged. A legacy client never sends `HELLO`; its frames carry
//! no envelope and its replies must carry none either. A v4 client
//! negotiates up front and gets request ids echoed plus a checksum
//! trailer on every reply. A `HELLO` that arrives *after* the first
//! request is an ordinary unknown opcode — refused, connection kept —
//! which is also exactly how a v3 server answers a v4 peer's opening
//! `HELLO` (the refusal is the downgrade signal).

use trisolv_matrix::gen;
use trisolv_server::{
    protocol, protocol::op, protocol::ErrorCode, Client, ClientOptions, EngineOptions, ExecMode,
    Server, ServerOptions,
};

fn spawn_server() -> trisolv_server::RunningServer {
    Server::spawn(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        engine: EngineOptions {
            exec: ExecMode::Seq,
            ..EngineOptions::default()
        },
        ..ServerOptions::default()
    })
    .unwrap()
}

fn stat(stats: &[(String, u64)], key: &str) -> u64 {
    stats
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("missing stat {key}"))
        .1
}

/// A legacy client (no `HELLO`, bare frames) round-trips every opcode
/// against a v4 server exactly as it did against a v3 one.
#[test]
fn legacy_client_works_unchanged_against_a_v4_server() {
    let server = spawn_server();
    // `Client::connect` never negotiates: this is the v2/v3 wire dialect.
    let mut client = Client::connect(server.local_addr().to_string()).unwrap();
    assert_eq!(client.negotiated_version(), 3);

    let a = gen::grid2d_laplacian(6, 6);
    let fp = client.load(&a).unwrap().fingerprint;
    let b = gen::random_rhs(36, 1, 11);
    let x = client.solve(fp, b.col(0)).unwrap();
    assert_eq!(x.len(), 36);
    let stats = client.stats().unwrap();
    assert_eq!(stat(&stats, "cache_entries"), 1);
    assert_eq!(stat(&stats, "crc_rejects"), 0);
    assert!(client.evict(fp).unwrap());

    server.shutdown();
    server.join();
}

/// A client pinned to `max_version: 3` behaves identically to a legacy
/// one — `connect_with` skips the handshake entirely.
#[test]
fn max_version_pin_skips_negotiation() {
    let server = spawn_server();
    let mut client = Client::connect_with(
        &server.local_addr().to_string(),
        ClientOptions {
            max_version: 3,
            ..ClientOptions::default()
        },
    )
    .unwrap();
    assert_eq!(client.negotiated_version(), 3);
    let a = gen::grid2d_laplacian(5, 5);
    let fp = client.load(&a).unwrap().fingerprint;
    let b = gen::random_rhs(25, 1, 3);
    assert_eq!(client.solve(fp, b.col(0)).unwrap().len(), 25);
    server.shutdown();
    server.join();
}

/// The default client negotiates v4 and the answers match a legacy
/// client's bit for bit — the envelope is framing, not semantics.
#[test]
fn v4_client_negotiates_and_answers_match_legacy() {
    let server = spawn_server();
    let addr = server.local_addr().to_string();
    let mut v4 = Client::connect_with(&addr, ClientOptions::default()).unwrap();
    assert_eq!(v4.negotiated_version(), 4);
    let mut legacy = Client::connect(addr).unwrap();

    let a = gen::grid2d_laplacian(7, 7);
    let fp = v4.load(&a).unwrap().fingerprint;
    let b = gen::random_rhs(49, 1, 5);
    let x4 = v4.solve(fp, b.col(0)).unwrap();
    let x3 = legacy.solve(fp, b.col(0)).unwrap();
    assert_eq!(x4, x3, "negotiated framing must not change the numbers");

    // pipelined v4 traffic: several requests in flight, ids keep replies
    // straight even though this client reads them in order
    for _ in 0..5 {
        assert_eq!(v4.solve(fp, b.col(0)).unwrap(), x3);
    }
    server.shutdown();
    server.join();
}

/// `HELLO` after the first request is an unknown opcode (the v3 answer),
/// and the refusal leaves the connection serving.
#[test]
fn late_hello_is_refused_without_condemning_the_connection() {
    let server = spawn_server();
    let mut client = Client::connect(server.local_addr().to_string()).unwrap();
    let a = gen::grid2d_laplacian(4, 4);
    let fp = client.load(&a).unwrap().fingerprint;

    let hello = protocol::Builder::new().u16(4).build();
    let mut bytes = Vec::new();
    protocol::write_frame(&mut bytes, op::HELLO, &hello).unwrap();
    client.send_raw(&bytes).unwrap();
    let (opcode, payload) = client.recv_raw().unwrap();
    assert_eq!(opcode, op::ERR);
    let (code, _, _) = protocol::parse_err(&payload).unwrap();
    assert_eq!(code, Some(ErrorCode::UnknownOpcode));

    // the connection still serves — and still in legacy framing
    let b = gen::random_rhs(16, 1, 9);
    assert_eq!(client.solve(fp, b.col(0)).unwrap().len(), 16);
    server.shutdown();
    server.join();
}

/// The `write.bitflip` fault site corrupts server replies *after* the
/// envelope is sealed, so a negotiated client's checksum check must catch
/// every flipped reply — silent wire corruption cannot become a wrong
/// answer.
#[test]
fn server_write_bitflips_are_caught_by_the_client_checksum() {
    let server = Server::spawn(ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        engine: EngineOptions {
            exec: ExecMode::Seq,
            ..EngineOptions::default()
        },
        fault: trisolv_server::FaultPlan::parse("write.bitflip=every:2").unwrap(),
        ..ServerOptions::default()
    })
    .unwrap();
    let mut client =
        Client::connect_with(&server.local_addr().to_string(), ClientOptions::default()).unwrap();
    assert_eq!(client.negotiated_version(), 4);

    let a = gen::grid2d_laplacian(5, 5);
    let fp = client.load(&a).unwrap().fingerprint;
    let b = gen::random_rhs(25, 1, 7);
    let mut caught = 0;
    for _ in 0..6 {
        match client.solve(fp, b.col(0)) {
            Ok(x) => assert_eq!(x.len(), 25),
            Err(e) => {
                assert!(
                    e.to_string().contains("checksum"),
                    "flipped reply must fail the checksum, got: {e}"
                );
                caught += 1;
                // the stream itself is intact; the same connection serves on
            }
        }
    }
    assert!(
        caught >= 2,
        "every other reply was flipped; caught {caught}"
    );
    server.shutdown();
    drop(client);
    server.join();
}

/// End-to-end integrity: a negotiated frame whose payload was flipped in
/// transit is refused as `ERR Corrupt`, counted, and the connection keeps
/// serving — one damaged frame is not a teardown.
#[test]
fn corrupt_v4_frame_is_rejected_and_the_connection_survives() {
    let server = spawn_server();
    let mut client = Client::connect(server.local_addr().to_string()).unwrap();

    // negotiate by hand so the rest of the exchange can use raw frames
    let mut bytes = Vec::new();
    protocol::write_frame(
        &mut bytes,
        op::HELLO,
        &protocol::Builder::new().u16(4).build(),
    )
    .unwrap();
    client.send_raw(&bytes).unwrap();
    let (opcode, payload) = client.recv_raw().unwrap();
    assert_eq!(opcode, op::OK_HELLO);
    assert_eq!(protocol::Cursor::new(&payload).u16().unwrap(), 4);

    // a STATS wrapped in the v4 envelope, then one bit flipped mid-payload
    let mut wrapped = protocol::wrap_v4(op::STATS, 7, &[]);
    let mid = wrapped.len() / 2;
    wrapped[mid] ^= 0x01;
    let mut bytes = Vec::new();
    protocol::write_frame(&mut bytes, op::STATS, &wrapped).unwrap();
    client.send_raw(&bytes).unwrap();
    let (opcode, payload) = client.recv_raw().unwrap();
    assert_eq!(opcode, op::ERR);
    let (_, inner) = protocol::unwrap_v4(op::ERR, &payload).expect("ERR reply is enveloped");
    let (code, _, _) = protocol::parse_err(inner).unwrap();
    assert_eq!(code, Some(ErrorCode::Corrupt));

    // the undamaged retry on the same connection succeeds, and the reject
    // shows up in the counters
    let wrapped = protocol::wrap_v4(op::STATS, 8, &[]);
    let mut bytes = Vec::new();
    protocol::write_frame(&mut bytes, op::STATS, &wrapped).unwrap();
    client.send_raw(&bytes).unwrap();
    let (opcode, payload) = client.recv_raw().unwrap();
    assert_eq!(opcode, op::OK_STATS);
    let (rid, inner) = protocol::unwrap_v4(op::OK_STATS, &payload).unwrap();
    assert_eq!(rid, 8, "reply echoes the request id");
    let mut c = protocol::Cursor::new(inner);
    let count = c.u64().unwrap();
    let mut crc_rejects = None;
    for _ in 0..count {
        let klen = c.u16().unwrap() as usize;
        let key = String::from_utf8(c.bytes(klen).unwrap().to_vec()).unwrap();
        let val = c.u64().unwrap();
        if key == "crc_rejects" {
            crc_rejects = Some(val);
        }
    }
    assert_eq!(crc_rejects, Some(1), "the flipped frame was counted");

    server.shutdown();
    drop(client);
    server.join();
}
