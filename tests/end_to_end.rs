//! Cross-crate integration tests: the full pipeline from problem
//! generation through ordering, symbolic analysis, numerical
//! factorization, and the sequential / threaded / simulated-parallel
//! triangular solvers.

use trisolv::core::mapping::SubcubeMapping;
use trisolv::core::tree::{solve_fb, SolveConfig};
use trisolv::core::{seq, threaded, SparseCholeskySolver};
use trisolv::factor::par::{factor_parallel, FactorConfig};
use trisolv::factor::seqchol;
use trisolv::graph::{nd, Graph};
use trisolv::machine::MachineParams;
use trisolv::matrix::{gen, io, CscMatrix, DenseMatrix};

fn residual(a: &CscMatrix, x: &DenseMatrix, b: &DenseMatrix) -> f64 {
    let ax = a.spmv_sym_lower(x).expect("shape");
    ax.max_abs_diff(b).expect("shape") / b.norm_max().max(1.0)
}

#[test]
fn full_pipeline_2d_problem() {
    let a = gen::grid2d_laplacian(20, 17);
    let solver = SparseCholeskySolver::factor(&a).unwrap();
    let x_true = gen::random_rhs(a.ncols(), 2, 1);
    let b = a.spmv_sym_lower(&x_true).unwrap();
    let x = solver.solve(&b);
    assert!(residual(&a, &x, &b) < 1e-10);
    assert!(x.max_abs_diff(&x_true).unwrap() < 1e-8);
}

#[test]
fn full_pipeline_3d_fem_problem() {
    let a = gen::fem3d(5, 4, 3, 3);
    let solver = SparseCholeskySolver::factor(&a).unwrap();
    let x_true = gen::random_rhs(a.ncols(), 4, 2);
    let b = a.spmv_sym_lower(&x_true).unwrap();
    let x = solver.solve(&b);
    assert!(residual(&a, &x, &b) < 1e-9);
}

#[test]
fn simulated_parallel_solver_agrees_with_sequential_end_to_end() {
    let (kx, ky, dof) = (9, 8, 2);
    let a = gen::fem2d(kx, ky, dof);
    let g = Graph::from_sym_lower(&a);
    let coords = nd::grid2d_coords(kx, ky, dof);
    let perm = nd::nested_dissection_coords(&g, &coords, nd::NdOptions::default());
    let an = seqchol::analyze_with_perm(&a, &perm);
    let factor = seqchol::factor_supernodal(&an.pa, &an.part).unwrap();
    let b = gen::random_rhs(a.ncols(), 3, 5);
    let expect = seq::forward_backward(&factor, &b);
    for p in [2usize, 4, 6, 8] {
        let mapping = SubcubeMapping::new(&an.part, p);
        let config = SolveConfig {
            nprocs: p,
            block: 3,
            params: MachineParams::t3d(),
        };
        let (x, report) = solve_fb(&factor, &mapping, &b, &config);
        assert!(x.max_abs_diff(&expect).unwrap() < 1e-9, "p = {p}");
        assert!(report.total_time > 0.0);
        assert_eq!(report.flops, an.part.solve_flops(3));
    }
}

#[test]
fn threaded_solver_agrees_with_sequential_end_to_end() {
    let a = gen::grid3d_laplacian(5, 4, 4);
    let solver = SparseCholeskySolver::factor(&a).unwrap();
    let f = solver.factor_matrix();
    let b = gen::random_rhs(a.ncols(), 2, 9);
    let seq_y = seq::forward(f, &b);
    let thr_y = threaded::forward(f, &b);
    assert!(thr_y.max_abs_diff(&seq_y).unwrap() < 1e-12);
    let seq_x = seq::backward(f, &seq_y);
    let thr_x = threaded::backward(f, &seq_y);
    assert!(thr_x.max_abs_diff(&seq_x).unwrap() < 1e-12);
}

#[test]
fn parallel_factorization_feeds_parallel_solver() {
    // the full simulated workflow: parallel factor -> parallel solve.
    // Needs a problem large enough that factorization's O(N^1.5) work
    // clearly dominates the solver's O(N log N) (the paper's headline
    // relation only holds beyond toy sizes).
    let a = gen::grid2d_laplacian(31, 31);
    let g = Graph::from_sym_lower(&a);
    let perm = nd::nested_dissection(&g, nd::NdOptions::default());
    let an = seqchol::analyze_with_perm(&a, &perm);
    let p = 4;
    let mapping = SubcubeMapping::new(&an.part, p);
    let fconfig = FactorConfig {
        nprocs: p,
        block: 2,
        params: MachineParams::t3d(),
    };
    let (factor, frep) = factor_parallel(&an.pa, &an.part, &mapping, &fconfig).unwrap();
    let x_true = gen::random_rhs(a.ncols(), 1, 3);
    let pb = an.pa.spmv_sym_lower(&x_true).unwrap();
    let sconfig = SolveConfig {
        nprocs: p,
        block: 2,
        params: MachineParams::t3d(),
    };
    let (x, srep) = solve_fb(&factor, &mapping, &pb, &sconfig);
    assert!(x.max_abs_diff(&x_true).unwrap() < 1e-8);
    // the headline relation: solve is much cheaper than factorization
    assert!(srep.total_time < frep.time);
}

#[test]
fn matrix_market_round_trip_preserves_solvability() {
    let a = gen::random_spd(60, 3, 4);
    let mut buf = Vec::new();
    io::write_matrix_market(&mut buf, &a, io::Symmetry::Symmetric).unwrap();
    let (a2, _) = io::read_matrix_market(std::io::BufReader::new(&buf[..])).unwrap();
    let solver = SparseCholeskySolver::factor(&a2).unwrap();
    let x_true = gen::random_rhs(60, 1, 5);
    let b = a2.spmv_sym_lower(&x_true).unwrap();
    let x = solver.solve(&b);
    assert!(x.max_abs_diff(&x_true).unwrap() < 1e-8);
}

#[test]
fn ordering_choice_changes_fill_not_solution() {
    let a = gen::grid2d_laplacian(12, 12);
    let g = Graph::from_sym_lower(&a);
    let x_true = gen::random_rhs(a.ncols(), 1, 6);
    let b = a.spmv_sym_lower(&x_true).unwrap();
    let mut fills = Vec::new();
    for perm in [
        trisolv::graph::Permutation::identity(a.ncols()),
        nd::nested_dissection(&g, nd::NdOptions::default()),
        trisolv::graph::mindeg::minimum_degree(&g),
        trisolv::graph::rcm::reverse_cuthill_mckee(&g),
    ] {
        let solver = SparseCholeskySolver::factor_with_perm(&a, &perm).unwrap();
        let x = solver.solve(&b);
        assert!(x.max_abs_diff(&x_true).unwrap() < 1e-8);
        fills.push(solver.factor_matrix().nnz());
    }
    // nested dissection must beat the natural ordering on a grid
    assert!(
        fills[1] < fills[0],
        "nd fill {} vs natural {}",
        fills[1],
        fills[0]
    );
}

#[test]
fn multiple_rhs_consistency_across_solvers() {
    let a = gen::fem2d(6, 5, 2);
    let solver = SparseCholeskySolver::factor(&a).unwrap();
    let b = gen::random_rhs(a.ncols(), 5, 7);
    let x_block = solver.solve(&b);
    for r in 0..5 {
        let br = DenseMatrix::column_vector(b.col(r));
        let xr = solver.solve(&br);
        for i in 0..a.ncols() {
            assert_eq!(xr[(i, 0)], x_block[(i, r)], "rhs {r} row {i}");
        }
    }
}
