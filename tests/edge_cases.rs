//! Adversarial structures and edge cases across the stack: degenerate
//! matrices, pathological elimination trees (paths, stars), more
//! processors than work, and failure reporting.

use trisolv::core::mapping::SubcubeMapping;
use trisolv::core::tree::{solve_fb, SolveConfig};
use trisolv::core::{seq, SparseCholeskySolver};
use trisolv::factor::par::{factor_parallel, FactorConfig};
use trisolv::factor::seqchol;
use trisolv::graph::Permutation;
use trisolv::machine::MachineParams;
use trisolv::matrix::{gen, CscMatrix, DenseMatrix, MatrixError, TripletMatrix};

fn solve_check(a: &CscMatrix, nprocs: usize, nrhs: usize) {
    let n = a.ncols();
    let solver = SparseCholeskySolver::factor(a).unwrap();
    let x_true = gen::random_rhs(n, nrhs, 3);
    let b = a.spmv_sym_lower(&x_true).unwrap();
    let x = solver.solve(&b);
    assert!(x.max_abs_diff(&x_true).unwrap() < 1e-7);
    // and through the simulated-parallel path
    let part = solver.factor_matrix().partition();
    let mapping = SubcubeMapping::new(part, nprocs);
    let config = SolveConfig {
        nprocs,
        block: 2,
        params: MachineParams::t3d(),
    };
    let mut pb = DenseMatrix::zeros(n, nrhs);
    for c in 0..nrhs {
        for i in 0..n {
            pb[(solver.perm().apply(i), c)] = b[(i, c)];
        }
    }
    let (px, _) = solve_fb(solver.factor_matrix(), &mapping, &pb, &config);
    let expect = seq::forward_backward(solver.factor_matrix(), &pb);
    assert!(px.max_abs_diff(&expect).unwrap() < 1e-9);
}

#[test]
fn one_by_one_matrix() {
    let mut t = TripletMatrix::new(1, 1);
    t.push(0, 0, 9.0).unwrap();
    let a = t.to_csc();
    let solver = SparseCholeskySolver::factor(&a).unwrap();
    let b = DenseMatrix::column_vector(&[18.0]);
    let x = solver.solve(&b);
    assert!((x[(0, 0)] - 2.0).abs() < 1e-14);
    solve_check(&a, 4, 2);
}

#[test]
fn path_tree_no_tree_parallelism() {
    // tridiagonal matrix: the elimination tree is a single path — the
    // worst case for subtree-to-subcube (no branchings to split at)
    let a = gen::grid2d_laplacian(40, 1);
    solve_check(&a, 4, 1);
    solve_check(&a, 8, 3);
}

#[test]
fn star_tree_single_fat_root() {
    // arrow matrix: column 0 coupled to everything → after ordering, one
    // huge supernode dominates
    let n = 40;
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n {
        t.push(i, i, n as f64).unwrap();
    }
    for i in 1..n {
        t.push(i, 0, -1.0).unwrap();
    }
    let a = t.to_csc();
    solve_check(&a, 4, 2);
}

#[test]
fn block_diagonal_forest() {
    // disconnected blocks → elimination forest with many roots
    let mut t = TripletMatrix::new(30, 30);
    for b in 0..10 {
        let base = 3 * b;
        for i in 0..3 {
            t.push(base + i, base + i, 4.0).unwrap();
        }
        t.push(base + 1, base, -1.0).unwrap();
        t.push(base + 2, base + 1, -1.0).unwrap();
    }
    let a = t.to_csc();
    solve_check(&a, 4, 1);
    solve_check(&a, 16, 2);
}

#[test]
fn more_processors_than_columns() {
    let a = gen::grid2d_laplacian(3, 3); // N = 9
    solve_check(&a, 16, 1);
}

#[test]
fn dense_matrix_single_supernode() {
    // a fully dense SPD matrix: one supernode spanning all columns
    let n = 24;
    let d = gen::random_spd(n, n, 5); // avg nnz ≈ n → nearly dense
    let solver = SparseCholeskySolver::factor(&d).unwrap();
    assert!(solver.factor_matrix().nsup() < n, "expect fat supernodes");
    solve_check(&d, 4, 2);
}

#[test]
fn singular_matrix_reports_column_not_garbage() {
    // a PSD-but-singular matrix: last column linearly dependent
    let mut t = TripletMatrix::new(3, 3);
    t.push(0, 0, 1.0).unwrap();
    t.push(1, 1, 1.0).unwrap();
    t.push(1, 0, 1.0).unwrap(); // makes the 2x2 leading block singular
    t.push(2, 2, 1.0).unwrap();
    let a = t.to_csc();
    let err = SparseCholeskySolver::factor_with_perm(&a, &Permutation::identity(3));
    match err {
        Err(MatrixError::NotPositiveDefinite { pivot, .. }) => {
            assert!(pivot <= 0.0 || !pivot.is_finite());
        }
        other => panic!("expected NotPositiveDefinite, got {other:?}"),
    }
}

#[test]
fn parallel_factorization_failure_propagates_cleanly() {
    // indefinite matrix on a multi-processor machine: every virtual
    // processor must shut down and the error must surface as Err
    let mut a = gen::grid2d_laplacian(8, 8);
    let j = 30;
    let pos = a.col_rows(j).iter().position(|&i| i == j).unwrap();
    let base = a.colptr()[j];
    a.values_mut()[base + pos] = -2.0;
    let an = seqchol::analyze_with_perm(&a, &Permutation::identity(64));
    let mapping = SubcubeMapping::new(&an.part, 8);
    let config = FactorConfig {
        nprocs: 8,
        block: 2,
        params: MachineParams::t3d(),
    };
    let res = factor_parallel(&an.pa, &an.part, &mapping, &config);
    assert!(matches!(res, Err(MatrixError::NotPositiveDefinite { .. })));
}

#[test]
fn wide_rhs_block() {
    // NRHS larger than N exercises the matrix-rate path and buffer reuse
    let a = gen::grid2d_laplacian(4, 3);
    solve_check(&a, 2, 20);
}

/// The Harwell-Boeing reader survives a mutation sweep over a valid
/// file — truncation at every line boundary, deletion of every line,
/// and byte corruption in every line — returning a structured error
/// (or, for benign mutations, a matrix) but never panicking.
#[test]
fn hb_reader_survives_malformed_inputs() {
    use trisolv::matrix::hb;
    fn try_read(bytes: &[u8]) -> Option<Result<(), String>> {
        let owned = bytes.to_vec();
        std::panic::catch_unwind(move || {
            hb::read_harwell_boeing(std::io::BufReader::new(&owned[..]))
                .map(|_| ())
                .map_err(|e| e.to_string())
        })
        .ok()
    }

    let a = gen::random_spd(12, 3, 17);
    let mut buf = Vec::new();
    hb::write_harwell_boeing(&mut buf, &a, "edge", "EDGE", true).unwrap();
    assert!(matches!(try_read(&buf), Some(Ok(()))), "baseline must read");

    let text = String::from_utf8(buf.clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 5, "expect a multi-line HB file");

    // truncate after each line: everything shorter than the full file
    // must fail with a structured error, not a panic
    for keep in 0..lines.len() {
        let partial = lines[..keep].join("\n");
        match try_read(partial.as_bytes()) {
            Some(Err(_)) => {}
            Some(Ok(())) => panic!("truncated at line {keep} read successfully"),
            None => panic!("truncated at line {keep} panicked"),
        }
    }

    // delete each line in turn; corrupt each line in turn
    for victim in 0..lines.len() {
        let deleted: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim)
            .map(|(_, l)| *l)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(
            try_read(deleted.as_bytes()).is_some(),
            "deleting line {victim} panicked"
        );
        let corrupted: String = lines
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i == victim {
                    l.replace(['0', '1', '2', '.'], "?")
                } else {
                    (*l).to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        assert!(
            try_read(corrupted.as_bytes()).is_some(),
            "corrupting line {victim} panicked"
        );
    }

    // hand-crafted hostile headers
    let hostile: &[&str] = &[
        "",
        "title only",
        "t\nkey 1 1 1 1",
        "t\nkey x y z w\nRSA 3 3 5 0",
        "t\nkey 1 1 1 1\nRSA -3 3 5 0\n(1I8) (1I8) (1E12.4)",
        "t\nkey 1 1 1 1\nRSA 3 3 99999999999999999999 0\n(1I8) (1I8) (1E12.4)",
        "t\nkey 1 1 1 1\nXYZ 3 3 5 0\n(1I8) (1I8) (1E12.4)",
        "t\nkey 1 1 1 1\nRSA 3 3 5 0\n(bogus) (bogus) (bogus)",
    ];
    for (i, h) in hostile.iter().enumerate() {
        match try_read(h.as_bytes()) {
            Some(Err(_)) => {}
            Some(Ok(())) => panic!("hostile header {i} read successfully"),
            None => panic!("hostile header {i} panicked"),
        }
    }

    // non-finite values must be rejected at ingest, structurally: blast
    // the first value field of the last (value) card with "NaN", which
    // parses as an f64 and must then be refused by the finiteness gate
    let mut nan_lines: Vec<String> = lines.iter().map(|l| (*l).to_string()).collect();
    let last = nan_lines.last_mut().unwrap();
    assert!(last.len() >= 25, "value card shorter than one field");
    last.replace_range(0..25, &format!("{:>25}", "NaN"));
    let nan_file = nan_lines.join("\n");
    match try_read(nan_file.as_bytes()) {
        Some(Err(msg)) => assert!(
            msg.contains("non-finite") || msg.contains("bad value"),
            "unexpected error for NaN payload: {msg}"
        ),
        Some(Ok(())) => panic!("NaN payload accepted"),
        None => panic!("NaN payload panicked"),
    }
}

/// The generator-spec grammar rejects malformed specs with a structured
/// message naming the family, and accepts the documented forms —
/// including the near-singular `graded:`/`rankdef:` families.
#[test]
fn gen_spec_grammar_rejects_malformed() {
    let bad: &[(&str, &str)] = &[
        ("", "unknown generator"),
        ("nosuch:4", "unknown generator"),
        ("grid2d", "missing size"),
        ("grid2d:", "bad size"),
        ("grid2d:0", "positive"),
        ("grid2d:4x4x4", "expected 1..=2"),
        ("grid2d:4x-2", "bad size"),
        ("grid3d:2x2x2x2", "expected 1..=3"),
        ("fem2d:4x4:0", "dof must be positive"),
        ("random:0", "N must be positive"),
        ("random:8:2:1:9", "expected random:N"),
        ("graded", "missing size"),
        ("graded:0", "positive"),
        ("graded:10:301", "decades must be <= 300"),
        ("graded:10:many", "bad decades"),
        ("graded:10:5:9", "expected graded:N"),
        ("rankdef", "missing size"),
        ("rankdef:0x4", "positive"),
        ("rankdef:4x4:-1e-8", "eps must be finite and non-negative"),
        ("rankdef:4x4:inf", "eps must be finite and non-negative"),
        ("rankdef:4x4:huge", "bad eps"),
        ("grid2d:99999999", "cap"),
    ];
    for (spec, needle) in bad {
        match gen::from_spec(spec) {
            Ok(_) => panic!("spec {spec:?} unexpectedly accepted"),
            Err(msg) => assert!(
                msg.to_lowercase().contains(&needle.to_lowercase()),
                "spec {spec:?}: error {msg:?} missing {needle:?}"
            ),
        }
    }
    let good: &[(&str, usize)] = &[
        ("graded:16", 16),
        ("graded:16:4", 16),
        ("rankdef:4x5", 20),
        ("rankdef:6", 36),
        ("rankdef:4x4:1e-12", 16),
        ("GRADED:8", 8), // families are case-insensitive
    ];
    for (spec, n) in good {
        let m = gen::from_spec(spec).unwrap_or_else(|e| panic!("spec {spec:?}: {e}"));
        assert_eq!(m.ncols(), *n, "spec {spec:?}");
    }
}

#[test]
fn repeated_solves_are_deterministic() {
    let a = gen::fem2d(4, 4, 2);
    let solver = SparseCholeskySolver::factor(&a).unwrap();
    let b = gen::random_rhs(a.ncols(), 2, 11);
    let x1 = solver.solve(&b);
    let x2 = solver.solve(&b);
    assert_eq!(x1, x2, "solves must be bitwise deterministic");
    // simulated runs too (virtual times included)
    let part = solver.factor_matrix().partition();
    let mapping = SubcubeMapping::new(part, 4);
    let config = SolveConfig {
        nprocs: 4,
        block: 2,
        params: MachineParams::t3d(),
    };
    let (p1, r1) = solve_fb(solver.factor_matrix(), &mapping, &b, &config);
    let (p2, r2) = solve_fb(solver.factor_matrix(), &mapping, &b, &config);
    assert_eq!(p1, p2);
    assert_eq!(r1.total_time, r2.total_time);
    assert_eq!(r1.words, r2.words);
}
