//! Adversarial structures and edge cases across the stack: degenerate
//! matrices, pathological elimination trees (paths, stars), more
//! processors than work, and failure reporting.

use trisolv::core::mapping::SubcubeMapping;
use trisolv::core::tree::{solve_fb, SolveConfig};
use trisolv::core::{seq, SparseCholeskySolver};
use trisolv::factor::par::{factor_parallel, FactorConfig};
use trisolv::factor::seqchol;
use trisolv::graph::Permutation;
use trisolv::machine::MachineParams;
use trisolv::matrix::{gen, CscMatrix, DenseMatrix, MatrixError, TripletMatrix};

fn solve_check(a: &CscMatrix, nprocs: usize, nrhs: usize) {
    let n = a.ncols();
    let solver = SparseCholeskySolver::factor(a).unwrap();
    let x_true = gen::random_rhs(n, nrhs, 3);
    let b = a.spmv_sym_lower(&x_true).unwrap();
    let x = solver.solve(&b);
    assert!(x.max_abs_diff(&x_true).unwrap() < 1e-7);
    // and through the simulated-parallel path
    let part = solver.factor_matrix().partition();
    let mapping = SubcubeMapping::new(part, nprocs);
    let config = SolveConfig {
        nprocs,
        block: 2,
        params: MachineParams::t3d(),
    };
    let mut pb = DenseMatrix::zeros(n, nrhs);
    for c in 0..nrhs {
        for i in 0..n {
            pb[(solver.perm().apply(i), c)] = b[(i, c)];
        }
    }
    let (px, _) = solve_fb(solver.factor_matrix(), &mapping, &pb, &config);
    let expect = seq::forward_backward(solver.factor_matrix(), &pb);
    assert!(px.max_abs_diff(&expect).unwrap() < 1e-9);
}

#[test]
fn one_by_one_matrix() {
    let mut t = TripletMatrix::new(1, 1);
    t.push(0, 0, 9.0).unwrap();
    let a = t.to_csc();
    let solver = SparseCholeskySolver::factor(&a).unwrap();
    let b = DenseMatrix::column_vector(&[18.0]);
    let x = solver.solve(&b);
    assert!((x[(0, 0)] - 2.0).abs() < 1e-14);
    solve_check(&a, 4, 2);
}

#[test]
fn path_tree_no_tree_parallelism() {
    // tridiagonal matrix: the elimination tree is a single path — the
    // worst case for subtree-to-subcube (no branchings to split at)
    let a = gen::grid2d_laplacian(40, 1);
    solve_check(&a, 4, 1);
    solve_check(&a, 8, 3);
}

#[test]
fn star_tree_single_fat_root() {
    // arrow matrix: column 0 coupled to everything → after ordering, one
    // huge supernode dominates
    let n = 40;
    let mut t = TripletMatrix::new(n, n);
    for i in 0..n {
        t.push(i, i, n as f64).unwrap();
    }
    for i in 1..n {
        t.push(i, 0, -1.0).unwrap();
    }
    let a = t.to_csc();
    solve_check(&a, 4, 2);
}

#[test]
fn block_diagonal_forest() {
    // disconnected blocks → elimination forest with many roots
    let mut t = TripletMatrix::new(30, 30);
    for b in 0..10 {
        let base = 3 * b;
        for i in 0..3 {
            t.push(base + i, base + i, 4.0).unwrap();
        }
        t.push(base + 1, base, -1.0).unwrap();
        t.push(base + 2, base + 1, -1.0).unwrap();
    }
    let a = t.to_csc();
    solve_check(&a, 4, 1);
    solve_check(&a, 16, 2);
}

#[test]
fn more_processors_than_columns() {
    let a = gen::grid2d_laplacian(3, 3); // N = 9
    solve_check(&a, 16, 1);
}

#[test]
fn dense_matrix_single_supernode() {
    // a fully dense SPD matrix: one supernode spanning all columns
    let n = 24;
    let d = gen::random_spd(n, n, 5); // avg nnz ≈ n → nearly dense
    let solver = SparseCholeskySolver::factor(&d).unwrap();
    assert!(solver.factor_matrix().nsup() < n, "expect fat supernodes");
    solve_check(&d, 4, 2);
}

#[test]
fn singular_matrix_reports_column_not_garbage() {
    // a PSD-but-singular matrix: last column linearly dependent
    let mut t = TripletMatrix::new(3, 3);
    t.push(0, 0, 1.0).unwrap();
    t.push(1, 1, 1.0).unwrap();
    t.push(1, 0, 1.0).unwrap(); // makes the 2x2 leading block singular
    t.push(2, 2, 1.0).unwrap();
    let a = t.to_csc();
    let err = SparseCholeskySolver::factor_with_perm(&a, &Permutation::identity(3));
    match err {
        Err(MatrixError::NotPositiveDefinite { pivot, .. }) => {
            assert!(pivot <= 0.0 || !pivot.is_finite());
        }
        other => panic!("expected NotPositiveDefinite, got {other:?}"),
    }
}

#[test]
fn parallel_factorization_failure_propagates_cleanly() {
    // indefinite matrix on a multi-processor machine: every virtual
    // processor must shut down and the error must surface as Err
    let mut a = gen::grid2d_laplacian(8, 8);
    let j = 30;
    let pos = a.col_rows(j).iter().position(|&i| i == j).unwrap();
    let base = a.colptr()[j];
    a.values_mut()[base + pos] = -2.0;
    let an = seqchol::analyze_with_perm(&a, &Permutation::identity(64));
    let mapping = SubcubeMapping::new(&an.part, 8);
    let config = FactorConfig {
        nprocs: 8,
        block: 2,
        params: MachineParams::t3d(),
    };
    let res = factor_parallel(&an.pa, &an.part, &mapping, &config);
    assert!(matches!(res, Err(MatrixError::NotPositiveDefinite { .. })));
}

#[test]
fn wide_rhs_block() {
    // NRHS larger than N exercises the matrix-rate path and buffer reuse
    let a = gen::grid2d_laplacian(4, 3);
    solve_check(&a, 2, 20);
}

#[test]
fn repeated_solves_are_deterministic() {
    let a = gen::fem2d(4, 4, 2);
    let solver = SparseCholeskySolver::factor(&a).unwrap();
    let b = gen::random_rhs(a.ncols(), 2, 11);
    let x1 = solver.solve(&b);
    let x2 = solver.solve(&b);
    assert_eq!(x1, x2, "solves must be bitwise deterministic");
    // simulated runs too (virtual times included)
    let part = solver.factor_matrix().partition();
    let mapping = SubcubeMapping::new(part, 4);
    let config = SolveConfig {
        nprocs: 4,
        block: 2,
        params: MachineParams::t3d(),
    };
    let (p1, r1) = solve_fb(solver.factor_matrix(), &mapping, &b, &config);
    let (p2, r2) = solve_fb(solver.factor_matrix(), &mapping, &b, &config);
    assert_eq!(p1, p2);
    assert_eq!(r1.total_time, r2.total_time);
    assert_eq!(r1.words, r2.words);
}
