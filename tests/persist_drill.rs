//! Crash drills for the durable factor store, against the real `trisolv`
//! binary over real sockets and real signals (unix only).
//!
//! * `kill_dash_nine_mid_snapshot_recovers_sealed_factors` — SIGKILL the
//!   server while its write-behind thread is mid-snapshot (a `store.stall`
//!   fault holds the window open and a `store.torn` fault leaves a
//!   truncated file), restart on the same directory, and demand that every
//!   sealed snapshot is recovered, the torn one is dropped and counted,
//!   and post-restart answers are bit-identical to the in-process solver.
//! * `kill_dash_nine_preserves_the_f32_lane` — same drill under
//!   `--precision f32`: demoted factors snapshot at their resident width,
//!   survive the SIGKILL, recover in the narrow lane, and answer
//!   bit-identically; a planted version-1 (pre-precision-tag) f64 file in
//!   the same directory recovers alongside them.
//! * `sigterm_drains_and_exits_zero` — a real SIGTERM routes through the
//!   self-pipe into the event loop, flushes the store, and exits 0.
#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use trisolv_core::SparseCholeskySolver;
use trisolv_matrix::{gen, CscMatrix};
use trisolv_server::batch::{BatchLane, BatchOptions};
use trisolv_server::store::{encode_snapshot, SNAPSHOT_MAGIC};
use trisolv_server::{Client, FactorEntry, Fingerprint};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("trisolv-drill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn `trisolv serve` with the given extra flags and return the child
/// plus the address it announced on stdout.
fn spawn_serve(persist_dir: &Path, extra: &[&str]) -> (Child, BufReader<ChildStdout>, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_trisolv"));
    cmd.args([
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "4",
        "--exec",
        "seq",
    ])
    .args(["--persist-dir", &persist_dir.to_string_lossy()])
    .args(extra)
    .stdout(Stdio::piped())
    .stderr(Stdio::null());
    let mut child = cmd.spawn().unwrap();
    let mut out = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    out.read_line(&mut line).unwrap();
    assert!(
        line.contains("trisolv-server listening on"),
        "unexpected announce line: {line:?}"
    );
    let addr = line
        .split_whitespace()
        .nth(3)
        .expect("announce line carries the address")
        .to_string();
    (child, out, addr)
}

fn snapshot_count(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .filter(|d| d.file_name().to_string_lossy().ends_with(".factor"))
        .count()
}

fn stat(stats: &[(String, u64)], key: &str) -> u64 {
    stats
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("missing stat {key}"))
        .1
}

#[test]
fn kill_dash_nine_mid_snapshot_recovers_sealed_factors() {
    let dir = temp_dir("kill9");
    // Arrivals at the store site, in save order: 1–3 write clean
    // snapshots, the 4th is torn (truncated file under its final name —
    // a crash between write and fsync), and the 5th stalls for 60 s.
    // The SIGKILL lands inside that stall, so the 5th never reaches disk.
    let (mut child, _out, addr) = spawn_serve(
        &dir,
        &[
            "--fault-spec",
            "store.stall=every:5,ms:60000;store.torn=every:4",
        ],
    );

    let mats: Vec<_> = (6..=10)
        .map(|k| gen::from_spec(&format!("grid2d:{k}")).unwrap())
        .collect();
    let mut client = Client::connect_retry(addr.as_str(), Duration::from_secs(5)).unwrap();
    let fps: Vec<_> = mats
        .iter()
        .map(|a| client.load(a).unwrap().fingerprint)
        .collect();

    // wait until snapshots 1–4 are on disk (the 4th is the torn one) and
    // the writer is parked inside the 5th save's stall
    let deadline = Instant::now() + Duration::from_secs(30);
    while snapshot_count(&dir) < 4 {
        assert!(Instant::now() < deadline, "snapshots never landed");
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().unwrap(); // SIGKILL: no destructors, no flush
    child.wait().unwrap();

    // restart on the same directory, no faults this time
    let (mut child2, mut out2, addr2) = spawn_serve(&dir, &[]);
    let mut client = Client::connect_retry(addr2.as_str(), Duration::from_secs(5)).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stat(&stats, "persist_recovered"), 3, "sealed snapshots");
    assert!(
        stat(&stats, "persist_dropped") >= 1,
        "torn snapshot counted"
    );
    assert_eq!(stat(&stats, "entries"), 3, "recovered factors are resident");

    // SOLVE the three recovered factors without re-LOADing; the `seq`
    // executor answers bit-identically to the in-process solver
    for (a, fp) in mats.iter().zip(&fps).take(3) {
        let b = gen::random_rhs(a.ncols(), 1, 77);
        let x = client.solve(*fp, b.col(0)).unwrap();
        let expect = SparseCholeskySolver::factor(a).unwrap().solve(&b);
        assert_eq!(x, expect.col(0), "recovered factor answer drifted");
    }
    // a re-LOAD of a recovered matrix is the fast path: no refactorization
    let reloaded = client.load(&mats[0]).unwrap();
    assert!(reloaded.already_cached);
    let stats = client.stats().unwrap();
    assert_eq!(stat(&stats, "load_hits"), 1);
    assert_eq!(stat(&stats, "misses"), 0, "nothing was refactored");

    // the torn and never-written factors are gone
    for fp in &fps[3..] {
        assert!(client.solve(*fp, &vec![1.0; 100]).is_err());
    }

    client.shutdown_server().unwrap();
    let status = child2.wait().unwrap();
    assert!(status.success());
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut out2, &mut rest).unwrap();
    assert!(rest.contains("server shut down cleanly"), "{rest:?}");
}

/// Synthesize a version-1 snapshot of `a` — the current f64 layout with the
/// precision tag removed and the header version set to 1 — as an old server
/// would have written it.
fn v1_snapshot(a: &CscMatrix) -> Vec<u8> {
    let fp = Fingerprint::of_matrix(a);
    let solver = SparseCholeskySolver::factor(a).unwrap();
    let entry = Arc::new(FactorEntry::new(
        fp,
        a.clone(),
        solver,
        1,
        BatchLane::new(BatchOptions::default()),
    ));
    let v2 = encode_snapshot(&entry);
    // payload starts at 6; the tag byte sits after fingerprint (16) +
    // regularize flag (1) + beta (8)
    let mut payload = v2[6..v2.len() - 16].to_vec();
    payload.remove(16 + 1 + 8);
    let trailer = Fingerprint::of_bytes(&payload).to_bytes();
    let mut out = Vec::with_capacity(6 + payload.len() + 16);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&1u16.to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&trailer);
    out
}

#[test]
fn kill_dash_nine_preserves_the_f32_lane() {
    let dir = temp_dir("kill9-f32");
    let (mut child, _out, addr) = spawn_serve(&dir, &["--precision", "f32"]);
    let mats: Vec<_> = (8..=9)
        .map(|k| gen::from_spec(&format!("grid2d:{k}")).unwrap())
        .collect();
    let mut client = Client::connect_retry(addr.as_str(), Duration::from_secs(5)).unwrap();
    let fps: Vec<_> = mats
        .iter()
        .map(|a| client.load(a).unwrap().fingerprint)
        .collect();
    let stats = client.stats().unwrap();
    assert_eq!(
        stat(&stats, "demoted_factors"),
        2,
        "f32 mode demotes on load"
    );

    // both snapshots on disk, then SIGKILL: no destructors, no flush
    let deadline = Instant::now() + Duration::from_secs(30);
    while snapshot_count(&dir) < 2 {
        assert!(Instant::now() < deadline, "snapshots never landed");
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().unwrap();
    child.wait().unwrap();

    // plant a stale-version f64 snapshot (as a pre-upgrade server would
    // have left behind) in the same directory
    let old = gen::from_spec("grid2d:7").unwrap();
    let old_fp = Fingerprint::of_matrix(&old);
    std::fs::write(dir.join(format!("{old_fp}.factor")), v1_snapshot(&old)).unwrap();

    // restart on the same directory, still in f32 mode
    let (mut child2, _out2, addr2) = spawn_serve(&dir, &["--precision", "f32"]);
    let mut client = Client::connect_retry(addr2.as_str(), Duration::from_secs(5)).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stat(&stats, "persist_recovered"), 3, "two f32 + one v1 f64");
    assert_eq!(stat(&stats, "persist_dropped"), 0);
    assert_eq!(stat(&stats, "entries"), 3);
    assert_eq!(
        stat(&stats, "demoted_factors"),
        0,
        "recovery restores lanes verbatim, it never re-demotes"
    );

    // recovered f32 factors answer bit-identically to an in-process
    // factor-then-demote solver
    for (a, fp) in mats.iter().zip(&fps) {
        let b = gen::random_rhs(a.ncols(), 1, 33);
        let x = client.solve(*fp, b.col(0)).unwrap();
        let expect = SparseCholeskySolver::factor(a).unwrap().demote().solve(&b);
        assert_eq!(x, expect.col(0), "f32-lane answer drifted across kill -9");
    }
    // the planted version-1 factor still answers in full f64 precision
    let b = gen::random_rhs(old.ncols(), 1, 34);
    let x = client.solve(old_fp, b.col(0)).unwrap();
    let expect = SparseCholeskySolver::factor(&old).unwrap().solve(&b);
    assert_eq!(x, expect.col(0), "v1 snapshot must recover as f64");

    client.shutdown_server().unwrap();
    assert!(child2.wait().unwrap().success());
}

#[test]
fn sigterm_drains_and_exits_zero() {
    let dir = temp_dir("sigterm");
    let (mut child, mut out, addr) = spawn_serve(&dir, &[]);
    let a = gen::from_spec("grid2d:8").unwrap();
    let mut client = Client::connect_retry(addr.as_str(), Duration::from_secs(5)).unwrap();
    client.load(&a).unwrap();

    // a real SIGTERM: the handler's wake byte must pull the event loop out
    // of poll(2), drain, flush the store, and exit 0
    let rc = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(rc.success());
    let deadline = Instant::now() + Duration::from_secs(20);
    let status = loop {
        if let Some(s) = child.try_wait().unwrap() {
            break s;
        }
        assert!(Instant::now() < deadline, "server ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "graceful shutdown exits 0: {status:?}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut out, &mut rest).unwrap();
    assert!(rest.contains("server shut down cleanly"), "{rest:?}");
    assert_eq!(snapshot_count(&dir), 1, "the pending snapshot was flushed");
}
