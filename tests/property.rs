//! Randomized property tests over the core invariants, spanning crates.
//!
//! Each test draws its own case parameters from the in-tree
//! deterministic PRNG ([`trisolv::matrix::rng::Rng`]) so the suite runs
//! fully offline and every failure reproduces from the printed case
//! index.

use trisolv::core::mapping::SubcubeMapping;
use trisolv::core::seq;
use trisolv::core::tree::{solve_fb, SolveConfig};
use trisolv::core::ThreadedSolver;
use trisolv::factor::seqchol;
use trisolv::graph::{nd, EliminationTree, Graph, Permutation};
use trisolv::machine::{BlockCyclic1d, MachineParams};
use trisolv::matrix::gen;
use trisolv::matrix::rng::Rng;
use trisolv::matrix::MatrixError;

/// The factor reconstructs the matrix: `L·Lᵀ·x = A·x` for random SPD
/// matrices and random probes.
#[test]
fn factorization_reconstructs_matrix() {
    let mut rng = Rng::seed_from_u64(0xA1);
    for case in 0..24 {
        let n = rng.range_usize(5, 60);
        let avg = rng.range_usize(1, 5);
        let seed = rng.next_u64() % 500;
        let a = gen::random_spd(n, avg, seed);
        let g = Graph::from_sym_lower(&a);
        let perm = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = seqchol::analyze_with_perm(&a, &perm);
        let f = seqchol::factor_supernodal(&an.pa, &an.part).unwrap();
        let x = gen::random_rhs(n, 1, seed.wrapping_add(1));
        let ax = an.pa.spmv_sym_lower(&x).unwrap();
        let llx = f.llt_times(&x);
        let scale = ax.norm_max().max(1.0);
        assert!(
            ax.max_abs_diff(&llx).unwrap() / scale < 1e-9,
            "case {case}: n={n} avg={avg} seed={seed}"
        );
    }
}

/// The simulated parallel solver produces the sequential answer for
/// arbitrary processor counts, block sizes, and RHS widths.
#[test]
fn parallel_solve_matches_sequential() {
    let mut rng = Rng::seed_from_u64(0xA2);
    for case in 0..24 {
        let n = rng.range_usize(20, 80);
        let seed = rng.next_u64() % 200;
        let p = rng.range_usize(1, 9);
        let block = rng.range_usize(1, 5);
        let nrhs = rng.range_usize(1, 4);
        let a = gen::random_spd(n, 3, seed);
        let g = Graph::from_sym_lower(&a);
        let perm = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = seqchol::analyze_with_perm(&a, &perm);
        let f = seqchol::factor_supernodal(&an.pa, &an.part).unwrap();
        let b = gen::random_rhs(n, nrhs, seed.wrapping_add(7));
        let expect = seq::forward_backward(&f, &b);
        let mapping = SubcubeMapping::new(&an.part, p);
        let config = SolveConfig {
            nprocs: p,
            block,
            params: MachineParams::t3d(),
        };
        let (x, _) = solve_fb(&f, &mapping, &b, &config);
        assert!(
            x.max_abs_diff(&expect).unwrap() < 1e-8,
            "case {case}: n={n} seed={seed} p={p} block={block} nrhs={nrhs}"
        );
    }
}

/// The shared-memory level-scheduled solver matches the sequential solver
/// on random SPD matrices at every RHS width 0..=8 (zero-width blocks are
/// a regression case: the executor must no-op, not divide by empty
/// strides).
#[test]
fn threaded_solve_matches_sequential_random_spd() {
    let mut rng = Rng::seed_from_u64(0xA3);
    for case in 0..20 {
        let n = rng.range_usize(10, 90);
        let seed = rng.next_u64() % 400;
        let nrhs = rng.range_usize(0, 9);
        let a = gen::random_spd(n, 3, seed);
        let g = Graph::from_sym_lower(&a);
        let perm = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = seqchol::analyze_with_perm(&a, &perm);
        let f = seqchol::factor_supernodal(&an.pa, &an.part).unwrap();
        let solver = ThreadedSolver::new(&f).unwrap();
        let mut ws = solver.workspace(nrhs);
        let b = gen::random_rhs(n, nrhs, seed.wrapping_add(11));
        let y = solver.forward_with(&b, &mut ws);
        assert!(
            y.max_abs_diff(&seq::forward(&f, &b)).unwrap() < 1e-12,
            "forward case {case}: n={n} seed={seed} nrhs={nrhs}"
        );
        let x = solver.backward_with(&y, &mut ws);
        assert!(
            x.max_abs_diff(&seq::backward(&f, &y)).unwrap() < 1e-12,
            "backward case {case}: n={n} seed={seed} nrhs={nrhs}"
        );
    }
}

/// The threaded solver agrees with the sequential one on grid Laplacians
/// and forests of disconnected components, for both fundamental and
/// amalgamated supernode partitions.
#[test]
fn threaded_solve_matches_sequential_grids_and_forests() {
    let mut rng = Rng::seed_from_u64(0xA4);
    for case in 0..12 {
        let seed = rng.next_u64() % 100;
        let nrhs = rng.range_usize(1, 9);
        let a = match case % 3 {
            0 => gen::grid2d_laplacian(rng.range_usize(5, 14), rng.range_usize(5, 14)),
            1 => gen::grid3d_laplacian(
                rng.range_usize(3, 6),
                rng.range_usize(3, 6),
                rng.range_usize(3, 6),
            ),
            _ => {
                // forest: block-diagonal union of small chains
                let blocks = rng.range_usize(2, 6);
                let len = rng.range_usize(2, 7);
                let n = blocks * len;
                let mut t = trisolv::matrix::TripletMatrix::new(n, n);
                for i in 0..n {
                    t.push(i, i, 4.0).unwrap();
                }
                for b in 0..blocks {
                    for i in 0..len - 1 {
                        let r = b * len + i;
                        t.push(r + 1, r, -1.0).unwrap();
                    }
                }
                t.to_csc()
            }
        };
        let g = Graph::from_sym_lower(&a);
        let perm = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = seqchol::analyze_with_perm(&a, &perm);
        // fundamental and amalgamated partitions over the same problem
        let relax = rng.range_usize(0, 16);
        let parts = [an.part.clone(), an.part.amalgamate(relax, 0.2)];
        for (which, part) in parts.iter().enumerate() {
            let f = seqchol::factor_supernodal(&an.pa, part).unwrap();
            let b = gen::random_rhs(a.ncols(), nrhs, seed.wrapping_add(13));
            let expect = seq::forward_backward(&f, &b);
            let solver = ThreadedSolver::new(&f).unwrap();
            let mut ws = solver.workspace(nrhs);
            let got = solver.forward_backward_with(&b, &mut ws);
            assert!(
                got.max_abs_diff(&expect).unwrap() < 1e-12,
                "case {case} part {which}: seed={seed} nrhs={nrhs} relax={relax}"
            );
        }
    }
}

/// The subtree-mapped executor reproduces the sequential relay order
/// bit-for-bit, not just to tolerance: forward, backward, and combined
/// solves are `assert_eq!`-identical to `seq::forward`/`seq::backward`
/// at every executor width 1..=8 and nrhs ∈ {1, 4, 30}, across
/// amalgamation settings, a forest-of-roots factor, and a fully dense
/// matrix that analyzes into a single supernode.
#[test]
fn subtree_mapped_bit_identical_to_sequential() {
    let mut rng = Rng::seed_from_u64(0xC1);

    // Bushy ND elimination tree, at several amalgamation settings.
    let grid = gen::grid2d_laplacian(12, 12);
    let g = Graph::from_sym_lower(&grid);
    let perm = nd::nested_dissection(&g, nd::NdOptions::default());
    let an = seqchol::analyze_with_perm(&grid, &perm);
    let mut factors = Vec::new();
    for part in [
        an.part.clone(),
        an.part.amalgamate(4, 0.0),
        an.part.amalgamate(16, 0.25),
    ] {
        factors.push((
            "grid2d_12",
            seqchol::factor_supernodal(&an.pa, &part).unwrap(),
        ));
    }

    // Forest of disconnected chains: the elimination forest has many
    // roots, so the subtree cut degenerates to whole-tree tasks.
    {
        let (blocks, len) = (6usize, 5usize);
        let n = blocks * len;
        let mut t = trisolv::matrix::TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0).unwrap();
        }
        for b in 0..blocks {
            for i in 0..len - 1 {
                let r = b * len + i;
                t.push(r + 1, r, -1.0).unwrap();
            }
        }
        let a = t.to_csc();
        let g = Graph::from_sym_lower(&a);
        let perm = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = seqchol::analyze_with_perm(&a, &perm);
        factors.push((
            "forest_6x5",
            seqchol::factor_supernodal(&an.pa, &an.part).unwrap(),
        ));
    }

    // Fully dense SPD matrix: every column has identical structure below
    // the diagonal, so the whole factor is one supernode and the
    // executor has no parallel structure to exploit at all.
    {
        let n = 18usize;
        let vals = gen::random_rhs(n * n, 1, rng.next_u64() % 100);
        let mut t = trisolv::matrix::TripletMatrix::new(n, n);
        for j in 0..n {
            for i in j..n {
                let v = if i == j {
                    n as f64 + 2.0
                } else {
                    0.4 * vals.as_slice()[i + j * n]
                };
                t.push(i, j, v).unwrap();
            }
        }
        let a = t.to_csc();
        let g = Graph::from_sym_lower(&a);
        let perm = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = seqchol::analyze_with_perm(&a, &perm);
        let f = seqchol::factor_supernodal(&an.pa, &an.part).unwrap();
        assert_eq!(f.nsup(), 1, "dense matrix must be a single supernode");
        factors.push(("dense_18", f));
    }

    for (name, f) in &factors {
        for nrhs in [1usize, 4, 30] {
            let b = gen::random_rhs(f.n(), nrhs, rng.next_u64() % 1000);
            let expect_y = seq::forward(f, &b);
            let expect_x = seq::backward(f, &expect_y);
            for t in 1..=8usize {
                let solver = ThreadedSolver::new(f).unwrap().with_threads(t);
                let mut ws = solver.workspace(nrhs);
                let y = solver.forward_with(&b, &mut ws);
                assert_eq!(
                    y.as_slice(),
                    expect_y.as_slice(),
                    "{name}: forward diverges at t={t} nrhs={nrhs}"
                );
                let x = solver.backward_with(&y, &mut ws);
                assert_eq!(
                    x.as_slice(),
                    expect_x.as_slice(),
                    "{name}: backward diverges at t={t} nrhs={nrhs}"
                );
                let fb = solver.forward_backward_with(&b, &mut ws);
                assert_eq!(
                    fb.as_slice(),
                    expect_x.as_slice(),
                    "{name}: forward_backward diverges at t={t} nrhs={nrhs}"
                );
            }
        }
    }
}

/// Elimination-tree invariant: parents always have larger labels after
/// postordering, and subtree sizes telescope.
#[test]
fn etree_postorder_invariants() {
    let mut rng = Rng::seed_from_u64(0xA5);
    for case in 0..24 {
        let n = rng.range_usize(3, 50);
        let avg = rng.range_usize(1, 5);
        let seed = rng.next_u64() % 300;
        let a = gen::random_spd(n, avg, seed);
        let t = EliminationTree::from_sym_lower(&a);
        let post = t.postorder();
        let pt = t.permute(&post);
        assert!(pt.is_postordered(), "case {case}: n={n} seed={seed}");
        let sizes = pt.subtree_sizes();
        let root_total: usize = pt.roots().iter().map(|&r| sizes[r]).sum();
        assert_eq!(root_total, n, "case {case}: n={n} seed={seed}");
    }
}

/// Block-cyclic maps are bijections between global indices and
/// (owner, local index) pairs.
#[test]
fn block_cyclic_local_index_bijective() {
    let mut rng = Rng::seed_from_u64(0xA6);
    for case in 0..24 {
        let n = rng.range_usize(1, 200);
        let b = rng.range_usize(1, 10);
        let p = rng.range_usize(1, 9);
        let l = BlockCyclic1d::new(n, b, p);
        let mut seen = vec![std::collections::HashSet::new(); p];
        for i in 0..n {
            let q = l.owner(i);
            assert!(q < p, "case {case}");
            assert!(
                seen[q].insert(l.local_index(i)),
                "case {case}: duplicate local index for global {i}"
            );
        }
        for (q, s) in seen.iter().enumerate() {
            assert_eq!(s.len(), l.local_count(q), "case {case}: rank {q}");
        }
    }
}

/// Permutations compose associatively and invert correctly.
#[test]
fn permutation_algebra() {
    let mut rng = Rng::seed_from_u64(0xA7);
    for case in 0..24 {
        let seed = rng.next_u64() % 1000;
        let n = rng.range_usize(1, 40);
        // derive two permutations from orderings of a random graph
        let a = gen::random_spd(n, 2, seed);
        let g = Graph::from_sym_lower(&a);
        let p1 = nd::nested_dissection(&g, nd::NdOptions::default());
        let p2 = trisolv::graph::rcm::reverse_cuthill_mckee(&g);
        let c = p1.then(&p2);
        for i in 0..n {
            assert_eq!(c.apply(i), p2.apply(p1.apply(i)), "case {case}");
        }
        let inv = c.inverse();
        for i in 0..n {
            assert_eq!(inv.apply(c.apply(i)), i, "case {case}");
        }
        assert_eq!(c.then(&inv), Permutation::identity(n), "case {case}");
    }
}

/// The supernode partition tiles the columns and its per-column
/// structure nests into parents.
#[test]
fn supernode_partition_tiles_columns() {
    let mut rng = Rng::seed_from_u64(0xA8);
    for case in 0..24 {
        let n = rng.range_usize(5, 60);
        let seed = rng.next_u64() % 200;
        let a = gen::random_spd(n, 3, seed);
        let g = Graph::from_sym_lower(&a);
        let perm = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = seqchol::analyze_with_perm(&a, &perm);
        let part = &an.part;
        let mut count = 0;
        for s in 0..part.nsup() {
            count += part.width(s);
            // below rows must be contained in the parent's row set
            if let Some(p) = part.parent(s) {
                for &r in part.below_rows(s) {
                    assert!(
                        part.rows(p).contains(&r),
                        "case {case}: below row {r} of snode {s} missing from parent {p}"
                    );
                }
            }
        }
        assert_eq!(count, n, "case {case}: n={n} seed={seed}");
    }
}

/// Subtree-to-subcube: groups nest upward and sequential supernodes
/// partition the non-parallel set, for arbitrary trees and p.
#[test]
fn mapping_invariants() {
    let mut rng = Rng::seed_from_u64(0xA9);
    for case in 0..24 {
        let n = rng.range_usize(10, 60);
        let seed = rng.next_u64() % 100;
        let p = rng.range_usize(1, 17);
        let a = gen::random_spd(n, 3, seed);
        let g = Graph::from_sym_lower(&a);
        let perm = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = seqchol::analyze_with_perm(&a, &perm);
        let m = SubcubeMapping::new(&an.part, p);
        let mut seq_owned = vec![0usize; an.part.nsup()];
        for q in 0..p {
            for &s in m.seq_snodes(q) {
                seq_owned[s] += 1;
            }
        }
        for s in 0..an.part.nsup() {
            if m.is_parallel(s) {
                assert_eq!(seq_owned[s], 0, "case {case}: snode {s}");
            } else {
                assert_eq!(seq_owned[s], 1, "case {case}: snode {s}");
            }
            if let Some(par) = an.part.parent(s) {
                for &r in m.group(s).ranks() {
                    assert!(m.group(par).contains(r), "case {case}: snode {s}");
                }
            }
        }
    }
}

/// The Bruck all-to-all delivers exactly what the direct schedule
/// delivers, for arbitrary group sizes and ragged chunk lengths.
#[test]
fn bruck_a2a_equals_direct() {
    use trisolv::machine::{coll, Group, Machine};
    let mut rng = Rng::seed_from_u64(0xB1);
    for case in 0..16 {
        let q = rng.range_usize(1, 10);
        let seed = rng.next_u64() % 100;
        let machine = Machine::new(q, MachineParams::t3d());
        let r = machine.run(|p| {
            let g = Group::world(q);
            let me = g.group_rank(p.rank()).unwrap();
            let chunk = |d: usize| -> Vec<f64> {
                let len = ((me * 7 + d * 3 + seed as usize) % 5) + 1;
                vec![(me * 100 + d) as f64; len]
            };
            let out: Vec<Vec<f64>> = (0..q).map(chunk).collect();
            let a = coll::all_to_all_direct(p, &g, 1, out.clone());
            let b = coll::all_to_all_bruck(p, &g, 2, out);
            (a, b)
        });
        for (a, b) in r.results {
            assert_eq!(a, b, "case {case}: q={q} seed={seed}");
        }
    }
}

/// scatter ∘ allgather round-trips arbitrary chunk sets.
#[test]
fn scatter_allgather_roundtrip() {
    use trisolv::machine::{coll, Group, Machine};
    let mut rng = Rng::seed_from_u64(0xB2);
    for case in 0..16 {
        let q = rng.range_usize(1, 10);
        let root = rng.range_usize(0, 10) % q;
        let seed = rng.next_u64() % 50;
        let machine = Machine::new(q, MachineParams::t3d());
        let r = machine.run(|p| {
            let g = Group::world(q);
            let me = g.group_rank(p.rank()).unwrap();
            let chunks: Vec<Vec<f64>> = (0..q)
                .map(|d| vec![(d as u64 * 31 + seed) as f64; (d % 3) + 1])
                .collect();
            let mine = coll::scatter(p, &g, 1, root, if me == root { chunks } else { Vec::new() });
            coll::allgather(p, &g, 2, mine, 2)
        });
        let expect: Vec<Vec<f64>> = (0..q)
            .map(|d| vec![(d as u64 * 31 + seed) as f64; (d % 3) + 1])
            .collect();
        for got in r.results {
            assert_eq!(&got, &expect, "case {case}: q={q} root={root} seed={seed}");
        }
    }
}

/// Harwell-Boeing round trip preserves arbitrary generated matrices.
#[test]
fn hb_round_trip() {
    use trisolv::matrix::hb;
    let mut rng = Rng::seed_from_u64(0xB3);
    for case in 0..16 {
        let n = rng.range_usize(2, 40);
        let avg = rng.range_usize(1, 4);
        let seed = rng.next_u64() % 200;
        let a = gen::random_spd(n, avg, seed);
        let mut buf = Vec::new();
        hb::write_harwell_boeing(&mut buf, &a, "prop", "PROP", true).unwrap();
        let (b, _) = hb::read_harwell_boeing(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(a.shape(), b.shape(), "case {case}");
        assert!(
            a.to_dense().max_abs_diff(&b.to_dense()).unwrap() < 1e-12,
            "case {case}: n={n} seed={seed}"
        );
    }
}

/// Irregular meshes solve end-to-end through the full parallel driver.
#[test]
fn irregular_mesh_solves() {
    use trisolv::core::{ParallelSolver, ParallelSolverOptions};
    let mut rng = Rng::seed_from_u64(0xB4);
    for case in 0..8 {
        let k = rng.range_usize(5, 12);
        let seed = rng.next_u64() % 50;
        let p = rng.range_usize(1, 9);
        let (a, coords) = gen::mesh2d_irregular(k, seed);
        let solver =
            ParallelSolver::build(&a, Some(&coords), &ParallelSolverOptions::t3d(p)).unwrap();
        let x_true = gen::random_rhs(a.ncols(), 1, seed);
        let b = a.spmv_sym_lower(&x_true).unwrap();
        let (x, _) = solver.solve(&b);
        assert!(
            x.max_abs_diff(&x_true).unwrap() < 1e-7,
            "case {case}: k={k} seed={seed} p={p}"
        );
    }
}

/// Factor save/load round-trips bitwise for random problems.
#[test]
fn factor_io_round_trip() {
    use trisolv::factor::fio;
    let mut rng = Rng::seed_from_u64(0xB5);
    for case in 0..16 {
        let n = rng.range_usize(5, 50);
        let seed = rng.next_u64() % 100;
        let a = gen::random_spd(n, 3, seed);
        let g = Graph::from_sym_lower(&a);
        let perm = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = seqchol::analyze_with_perm(&a, &perm);
        let f = seqchol::factor_supernodal(&an.pa, &an.part).unwrap();
        let mut buf = Vec::new();
        fio::save_factor(&mut buf, &f).unwrap();
        let g2 = fio::load_factor(&mut &buf[..]).unwrap();
        for s in 0..f.nsup() {
            assert_eq!(g2.block(s), f.block(s), "case {case}: snode {s}");
        }
    }
}

/// The pipelined forward kernel equals the dense reference on random
/// trapezoid shapes, group sizes, and block sizes.
#[test]
fn pipelined_forward_matches_dense_reference() {
    use trisolv::core::pipeline::{forward_column_priority, LocalTrapezoid};
    use trisolv::factor::blas;
    use trisolv::machine::{Group, Machine};
    use trisolv::matrix::DenseMatrix;

    let mut rng = Rng::seed_from_u64(0xB6);
    for case in 0..20 {
        let t = rng.range_usize(1, 24);
        let extra = rng.range_usize(0, 16);
        let q = rng.range_usize(1, 7);
        let block = rng.range_usize(1, 6);
        let nrhs = rng.range_usize(1, 3);
        let seed = rng.next_u64() % 100;

        let n = t + extra;
        // random diagonally-dominant trapezoid
        let vals = gen::random_rhs(n * t, 1, seed);
        let mut trap = DenseMatrix::zeros(n, t);
        for j in 0..t {
            for i in j..n {
                trap[(i, j)] = if i == j {
                    3.0
                } else {
                    0.3 * vals.as_slice()[i + j * n]
                };
            }
        }
        let rhs_global = gen::random_rhs(n, nrhs, seed.wrapping_add(1));
        // dense reference: x_top then the rectangle update
        let mut reference = rhs_global.clone();
        blas::trsm_lower_left(trap.as_slice(), n, reference.as_mut_slice(), n, t, nrhs);
        for c in 0..nrhs {
            for j in 0..t {
                let xv = reference[(j, c)];
                for i in t..n {
                    let upd = trap[(i, j)] * xv;
                    reference[(i, c)] -= upd;
                }
            }
            // kernel's below rows start at zero
            for i in t..n {
                reference[(i, c)] -= rhs_global[(i, c)];
            }
        }
        let layout = BlockCyclic1d::new(n, block, q);
        let machine = Machine::new(q, MachineParams::t3d());
        let run = machine.run(|p| {
            let g = Group::world(q);
            let local = LocalTrapezoid::from_global(&trap, &layout, p.rank());
            let mut r = DenseMatrix::zeros(local.positions.len(), nrhs);
            for c in 0..nrhs {
                for (li, &gi) in local.positions.iter().enumerate() {
                    r[(li, c)] = if gi < t { rhs_global[(gi, c)] } else { 0.0 };
                }
            }
            forward_column_priority(p, &g, 1, &layout, t, nrhs, &local, &mut r);
            (local.positions, r)
        });
        for (positions, r) in run.results {
            for c in 0..nrhs {
                for (li, &gi) in positions.iter().enumerate() {
                    assert!(
                        (r[(li, c)] - reference[(gi, c)]).abs() < 1e-9,
                        "case {case} pos {gi} rhs {c}: {} vs {}",
                        r[(li, c)],
                        reference[(gi, c)]
                    );
                }
            }
        }
    }
}

/// Refinement monotonically improves the componentwise backward error:
/// the reported ω history is non-increasing, ends at the reported final
/// ω, and a certified report really meets the target.
#[test]
fn refinement_monotonically_improves_backward_error() {
    use trisolv::core::{certified_solve, CertifyOptions};
    let mut rng = Rng::seed_from_u64(0xD1);
    for case in 0..20 {
        let seed = rng.next_u64() % 300;
        let scale = rng.range_usize(0, 2) == 1;
        let a = match case % 3 {
            0 => gen::random_spd(rng.range_usize(10, 70), 3, seed),
            1 => gen::graded_diagonal(rng.range_usize(8, 40), rng.range_usize(2, 11) as u32),
            _ => gen::grid2d_laplacian(rng.range_usize(4, 12), rng.range_usize(4, 12)),
        };
        let b = gen::random_rhs(a.ncols(), rng.range_usize(1, 4), seed.wrapping_add(5));
        let opts = CertifyOptions {
            scale,
            regularize: true,
            condition: true,
            ..CertifyOptions::default()
        };
        let cert = certified_solve(&a, &b, &opts).unwrap();
        let r = &cert.report;
        assert!(!r.omega_history.is_empty(), "case {case}");
        for w in r.omega_history.windows(2) {
            assert!(
                w[1] <= w[0],
                "case {case}: omega history not monotone: {:?}",
                r.omega_history
            );
        }
        assert_eq!(
            *r.omega_history.last().unwrap(),
            r.backward_error,
            "case {case}"
        );
        assert_eq!(r.iterations + 1, r.omega_history.len(), "case {case}");
        assert_eq!(r.certified, r.backward_error <= 1e-10, "case {case}");
        // these matrices are comfortably SPD: the certificate must land
        assert!(
            r.certified,
            "case {case}: omega {:.3e} after {} sweeps",
            r.backward_error, r.iterations
        );
        assert_eq!(r.scaling_ratio.is_some(), scale, "case {case}");
        let cond = r.condition_estimate.unwrap();
        assert!(cond >= 1.0 && cond.is_finite(), "case {case}: cond {cond}");
    }
}

/// Near-singular inputs — graded diagonals down to 1e-14 and
/// rank-deficient-ε Neumann grids — either certify to ω ≤ 1e-10 or
/// return a structured NotCertified report. Never a panic, never a
/// non-finite "solution" labeled certified.
#[test]
fn near_singular_certifies_or_reports_structured() {
    use trisolv::core::{certified_solve, CertifyOptions};
    let mut rng = Rng::seed_from_u64(0xD2);
    for case in 0..24 {
        let a = if case % 2 == 0 {
            gen::graded_diagonal(rng.range_usize(5, 50), rng.range_usize(6, 15) as u32)
        } else {
            let eps = [0.0, 1e-18, 1e-14, 1e-10, 1e-8][rng.range_usize(0, 5)];
            gen::rank_deficient_grid(rng.range_usize(3, 9), rng.range_usize(3, 9), eps)
        };
        let b = gen::random_rhs(a.ncols(), 1, rng.next_u64() % 100);
        let opts = CertifyOptions {
            scale: rng.range_usize(0, 2) == 1,
            regularize: true,
            condition: case % 4 == 0,
            ..CertifyOptions::default()
        };
        let outcome = std::panic::catch_unwind(|| certified_solve(&a, &b, &opts))
            .unwrap_or_else(|_| panic!("case {case}: certified_solve panicked"));
        // regularized pipeline must not error on these inputs: breakdown
        // pivots are boosted and the report carries the consequences
        let cert = outcome.unwrap_or_else(|e| panic!("case {case}: structured error {e}"));
        let r = &cert.report;
        if r.certified {
            assert!(
                r.backward_error <= 1e-10,
                "case {case}: certified but omega {:.3e}",
                r.backward_error
            );
            assert!(
                cert.x.as_slice().iter().all(|v| v.is_finite()),
                "case {case}: certified solution has non-finite entries"
            );
        } else {
            // structured NotCertified: best iterate, honest omega
            assert!(r.backward_error > 1e-10, "case {case}");
        }
        assert_eq!(*r.omega_history.last().unwrap(), r.backward_error);
    }
}

/// Without regularization the same near-singular family either factors
/// cleanly or fails with the structured `NotPositiveDefinite` — the
/// breakdown column is always in range.
#[test]
fn breakdown_without_regularization_is_structured() {
    use trisolv::core::{certified_solve, CertifyOptions};
    let mut rng = Rng::seed_from_u64(0xD3);
    for case in 0..16 {
        let kx = rng.range_usize(3, 8);
        let ky = rng.range_usize(3, 8);
        let a = gen::rank_deficient_grid(kx, ky, 0.0); // exactly singular
        let b = gen::random_rhs(a.ncols(), 1, rng.next_u64() % 50);
        let opts = CertifyOptions::default(); // regularize: false
        match certified_solve(&a, &b, &opts) {
            Ok(cert) => assert!(
                !cert.report.certified || cert.report.backward_error <= 1e-10,
                "case {case}"
            ),
            Err(MatrixError::NotPositiveDefinite { column, .. }) => {
                assert!(column < a.ncols(), "case {case}: column {column}")
            }
            Err(other) => panic!("case {case}: unexpected error {other}"),
        }
    }
}

/// Symmetric equilibration changes the factorization but not the
/// certified answer: scaled and unscaled pipelines agree on well-posed
/// problems, and the reported scaling ratio is a sane `dmax/dmin ≥ 1`.
#[test]
fn equilibrated_solve_matches_unscaled() {
    use trisolv::core::{certified_solve, CertifyOptions};
    let mut rng = Rng::seed_from_u64(0xD4);
    for case in 0..16 {
        let a = gen::graded_diagonal(rng.range_usize(8, 40), rng.range_usize(1, 7) as u32);
        let b = gen::random_rhs(a.ncols(), rng.range_usize(1, 3), rng.next_u64() % 100);
        let plain = certified_solve(&a, &b, &CertifyOptions::default()).unwrap();
        let scaled = certified_solve(
            &a,
            &b,
            &CertifyOptions {
                scale: true,
                ..CertifyOptions::default()
            },
        )
        .unwrap();
        assert!(
            plain.report.certified && scaled.report.certified,
            "case {case}"
        );
        let ratio = scaled.report.scaling_ratio.unwrap();
        assert!(ratio >= 1.0 && ratio.is_finite(), "case {case}: {ratio}");
        let denom = plain.x.norm_max().max(1.0);
        assert!(
            plain.x.max_abs_diff(&scaled.x).unwrap() / denom < 1e-8,
            "case {case}: scaled and unscaled certified answers diverge"
        );
    }
}

/// The mixed-precision certified pipeline, across every generator family
/// `from_spec` knows (grids, FEM, irregular meshes, random SPD, graded
/// diagonals, rank-deficient-ε Neumann grids): each case either certifies
/// ω ≤ 1e-10 in the `f32` lane or transparently falls back to `f64` —
/// an uncertified answer is only ever allowed when full `f64` precision
/// cannot certify either, and nothing panics or reports a lying
/// certificate.
#[test]
fn mixed_precision_certifies_or_falls_back_never_surrenders_early() {
    use trisolv::core::{certified_solve, certified_solve_mixed, CertifyOptions};
    let specs = [
        "grid2d:9x7",
        "grid2d9:8",
        "grid3d:4x5x3",
        "grid3d27:4",
        "fem2d:5x4:2",
        "fem3d:3:2",
        "mesh2d:7:9",
        "mesh3d:4:5",
        "random:48:3:17",
        "graded:24:9",
        "graded:30:13",
        "rankdef:6x5:1e-8",
        "rankdef:12x12:1e-12",
        "rankdef:7x6:0",
    ];
    let mut rng = Rng::seed_from_u64(0xE1);
    let mut fallbacks = 0u32;
    for (case, spec) in specs.iter().enumerate() {
        let a = gen::from_spec(spec).unwrap();
        let b = gen::random_rhs(a.ncols(), rng.range_usize(1, 4), rng.next_u64() % 100);
        let opts = CertifyOptions {
            regularize: true,
            ..CertifyOptions::default()
        };
        let mixed = std::panic::catch_unwind(|| certified_solve_mixed(&a, &b, &opts))
            .unwrap_or_else(|_| panic!("case {case} ({spec}): panicked"))
            .unwrap_or_else(|e| panic!("case {case} ({spec}): structured error {e}"));
        let r = &mixed.report;
        if r.certified {
            assert!(
                r.backward_error <= 1e-10,
                "case {case} ({spec}): certified but omega {:.3e}",
                r.backward_error
            );
            assert!(
                mixed.x.as_slice().iter().all(|v| v.is_finite()),
                "case {case} ({spec}): certified solution has non-finite entries"
            );
        } else {
            // the narrow lane must never surrender before trying f64
            assert!(
                mixed.fell_back,
                "case {case} ({spec}): uncertified without a fallback attempt"
            );
            let wide = certified_solve(&a, &b, &opts).unwrap();
            assert!(
                !wide.report.certified,
                "case {case} ({spec}): f64 certifies but the mixed pipeline gave up"
            );
        }
        if mixed.fell_back {
            fallbacks += 1;
        }
    }
    assert!(
        fallbacks >= 1,
        "the near-singular cases must engage the f64 fallback"
    );
}

/// Symmetric equilibration composes with demotion: `scale: true` through
/// the mixed pipeline still certifies on graded diagonals, stays in the
/// `f32` lane, reports a sane scaling ratio, and agrees with the unscaled
/// mixed answer wherever both certify.
#[test]
fn equilibration_composes_with_demotion() {
    use trisolv::core::{certified_solve_mixed, CertifyOptions};
    let mut rng = Rng::seed_from_u64(0xE2);
    for case in 0..12 {
        let a = gen::graded_diagonal(rng.range_usize(8, 40), rng.range_usize(4, 11) as u32);
        let b = gen::random_rhs(a.ncols(), rng.range_usize(1, 3), rng.next_u64() % 100);
        let scaled = certified_solve_mixed(
            &a,
            &b,
            &CertifyOptions {
                scale: true,
                ..CertifyOptions::default()
            },
        )
        .unwrap();
        assert!(scaled.report.certified, "case {case}");
        assert!(
            !scaled.fell_back,
            "case {case}: equilibration + componentwise refinement keep the f32 lane"
        );
        let ratio = scaled.report.scaling_ratio.unwrap();
        assert!(ratio >= 1.0 && ratio.is_finite(), "case {case}: {ratio}");
        let plain = certified_solve_mixed(&a, &b, &CertifyOptions::default()).unwrap();
        if plain.report.certified {
            let denom = plain.x.norm_max().max(1.0);
            assert!(
                plain.x.max_abs_diff(&scaled.x).unwrap() / denom < 1e-8,
                "case {case}: scaled and unscaled mixed answers diverge"
            );
        }
    }
}

/// Amalgamation at random relaxation levels preserves factorization
/// correctness.
#[test]
fn amalgamated_factor_still_correct() {
    let mut rng = Rng::seed_from_u64(0xB7);
    for case in 0..20 {
        let n = rng.range_usize(20, 70);
        let seed = rng.next_u64() % 100;
        let relax_abs = rng.range_usize(0, 40);
        let relax_pct = rng.range_usize(0, 40);
        let a = gen::random_spd(n, 3, seed);
        let g = Graph::from_sym_lower(&a);
        let perm = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = seqchol::analyze_with_perm(&a, &perm);
        let part = an.part.amalgamate(relax_abs, relax_pct as f64 / 100.0);
        let f = seqchol::factor_supernodal(&an.pa, &part).unwrap();
        let x = gen::random_rhs(n, 1, seed.wrapping_add(3));
        let ax = an.pa.spmv_sym_lower(&x).unwrap();
        let llx = f.llt_times(&x);
        let scale = ax.norm_max().max(1.0);
        assert!(
            ax.max_abs_diff(&llx).unwrap() / scale < 1e-9,
            "case {case}: n={n} seed={seed} relax=({relax_abs},{relax_pct}%)"
        );
    }
}
