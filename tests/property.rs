//! Property-based tests over the core invariants, spanning crates.

use proptest::prelude::*;
use trisolv::core::mapping::SubcubeMapping;
use trisolv::core::tree::{solve_fb, SolveConfig};
use trisolv::core::seq;
use trisolv::factor::seqchol;
use trisolv::graph::{nd, EliminationTree, Graph, Permutation};
use trisolv::machine::{BlockCyclic1d, MachineParams};
use trisolv::matrix::gen;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The factor reconstructs the matrix: `L·Lᵀ·x = A·x` for random SPD
    /// matrices and random probes.
    #[test]
    fn factorization_reconstructs_matrix(n in 5usize..60, avg in 1usize..5, seed in 0u64..500) {
        let a = gen::random_spd(n, avg, seed);
        let g = Graph::from_sym_lower(&a);
        let perm = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = seqchol::analyze_with_perm(&a, &perm);
        let f = seqchol::factor_supernodal(&an.pa, &an.part).unwrap();
        let x = gen::random_rhs(n, 1, seed.wrapping_add(1));
        let ax = an.pa.spmv_sym_lower(&x).unwrap();
        let llx = f.llt_times(&x);
        let scale = ax.norm_max().max(1.0);
        prop_assert!(ax.max_abs_diff(&llx).unwrap() / scale < 1e-9);
    }

    /// The simulated parallel solver produces the sequential answer for
    /// arbitrary processor counts, block sizes, and RHS widths.
    #[test]
    fn parallel_solve_matches_sequential(
        n in 20usize..80,
        seed in 0u64..200,
        p in 1usize..9,
        block in 1usize..5,
        nrhs in 1usize..4,
    ) {
        let a = gen::random_spd(n, 3, seed);
        let g = Graph::from_sym_lower(&a);
        let perm = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = seqchol::analyze_with_perm(&a, &perm);
        let f = seqchol::factor_supernodal(&an.pa, &an.part).unwrap();
        let b = gen::random_rhs(n, nrhs, seed.wrapping_add(7));
        let expect = seq::forward_backward(&f, &b);
        let mapping = SubcubeMapping::new(&an.part, p);
        let config = SolveConfig { nprocs: p, block, params: MachineParams::t3d() };
        let (x, _) = solve_fb(&f, &mapping, &b, &config);
        prop_assert!(x.max_abs_diff(&expect).unwrap() < 1e-8);
    }

    /// Elimination-tree invariant: parents always have larger labels after
    /// postordering, and subtree sizes telescope.
    #[test]
    fn etree_postorder_invariants(n in 3usize..50, avg in 1usize..5, seed in 0u64..300) {
        let a = gen::random_spd(n, avg, seed);
        let t = EliminationTree::from_sym_lower(&a);
        let post = t.postorder();
        let pt = t.permute(&post);
        prop_assert!(pt.is_postordered());
        let sizes = pt.subtree_sizes();
        let root_total: usize = pt.roots().iter().map(|&r| sizes[r]).sum();
        prop_assert_eq!(root_total, n);
    }

    /// Block-cyclic maps are bijections between global indices and
    /// (owner, local index) pairs.
    #[test]
    fn block_cyclic_local_index_bijective(
        n in 1usize..200,
        b in 1usize..10,
        p in 1usize..9,
    ) {
        let l = BlockCyclic1d::new(n, b, p);
        let mut seen = vec![std::collections::HashSet::new(); p];
        for i in 0..n {
            let q = l.owner(i);
            prop_assert!(q < p);
            prop_assert!(seen[q].insert(l.local_index(i)));
        }
        for (q, s) in seen.iter().enumerate() {
            prop_assert_eq!(s.len(), l.local_count(q));
        }
    }

    /// Permutations compose associatively and invert correctly.
    #[test]
    fn permutation_algebra(seed in 0u64..1000, n in 1usize..40) {
        // derive two permutations from orderings of a random graph
        let a = gen::random_spd(n, 2, seed);
        let g = Graph::from_sym_lower(&a);
        let p1 = nd::nested_dissection(&g, nd::NdOptions::default());
        let p2 = trisolv::graph::rcm::reverse_cuthill_mckee(&g);
        let c = p1.then(&p2);
        for i in 0..n {
            prop_assert_eq!(c.apply(i), p2.apply(p1.apply(i)));
        }
        let inv = c.inverse();
        for i in 0..n {
            prop_assert_eq!(inv.apply(c.apply(i)), i);
        }
        prop_assert_eq!(c.then(&inv), Permutation::identity(n));
    }

    /// The supernode partition tiles the columns and its per-column
    /// structure nests into parents.
    #[test]
    fn supernode_partition_tiles_columns(n in 5usize..60, seed in 0u64..200) {
        let a = gen::random_spd(n, 3, seed);
        let g = Graph::from_sym_lower(&a);
        let perm = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = seqchol::analyze_with_perm(&a, &perm);
        let part = &an.part;
        let mut count = 0;
        for s in 0..part.nsup() {
            count += part.width(s);
            // below rows must be contained in the parent's row set
            if let Some(p) = part.parent(s) {
                for &r in part.below_rows(s) {
                    prop_assert!(part.rows(p).contains(&r),
                        "below row {r} of snode {s} missing from parent {p}");
                }
            }
        }
        prop_assert_eq!(count, n);
    }

    /// Subtree-to-subcube: groups nest upward and sequential supernodes
    /// partition the non-parallel set, for arbitrary trees and p.
    #[test]
    fn mapping_invariants(n in 10usize..60, seed in 0u64..100, p in 1usize..17) {
        let a = gen::random_spd(n, 3, seed);
        let g = Graph::from_sym_lower(&a);
        let perm = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = seqchol::analyze_with_perm(&a, &perm);
        let m = SubcubeMapping::new(&an.part, p);
        let mut seq_owned = vec![0usize; an.part.nsup()];
        for q in 0..p {
            for &s in m.seq_snodes(q) {
                seq_owned[s] += 1;
            }
        }
        for s in 0..an.part.nsup() {
            if m.is_parallel(s) {
                prop_assert_eq!(seq_owned[s], 0);
            } else {
                prop_assert_eq!(seq_owned[s], 1);
            }
            if let Some(par) = an.part.parent(s) {
                for &r in m.group(s).ranks() {
                    prop_assert!(m.group(par).contains(r));
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The Bruck all-to-all delivers exactly what the direct schedule
    /// delivers, for arbitrary group sizes and ragged chunk lengths.
    #[test]
    fn bruck_a2a_equals_direct(q in 1usize..10, seed in 0u64..100) {
        use trisolv::machine::{coll, Group, Machine, MachineParams};
        let machine = Machine::new(q, MachineParams::t3d());
        let r = machine.run(|p| {
            let g = Group::world(q);
            let me = g.group_rank(p.rank()).unwrap();
            let chunk = |d: usize| -> Vec<f64> {
                let len = ((me * 7 + d * 3 + seed as usize) % 5) + 1;
                vec![(me * 100 + d) as f64; len]
            };
            let out: Vec<Vec<f64>> = (0..q).map(chunk).collect();
            let a = coll::all_to_all_direct(p, &g, 1, out.clone());
            let b = coll::all_to_all_bruck(p, &g, 2, out);
            (a, b)
        });
        for (a, b) in r.results {
            prop_assert_eq!(a, b);
        }
    }

    /// scatter ∘ allgather round-trips arbitrary chunk sets.
    #[test]
    fn scatter_allgather_roundtrip(q in 1usize..10, root in 0usize..10, seed in 0u64..50) {
        use trisolv::machine::{coll, Group, Machine, MachineParams};
        let root = root % q;
        let machine = Machine::new(q, MachineParams::t3d());
        let r = machine.run(|p| {
            let g = Group::world(q);
            let me = g.group_rank(p.rank()).unwrap();
            let chunks: Vec<Vec<f64>> = (0..q)
                .map(|d| vec![(d as u64 * 31 + seed) as f64; (d % 3) + 1])
                .collect();
            let mine = coll::scatter(p, &g, 1, root, if me == root { chunks } else { Vec::new() });
            coll::allgather(p, &g, 2, mine, 2)
        });
        let expect: Vec<Vec<f64>> = (0..q)
            .map(|d| vec![(d as u64 * 31 + seed) as f64; (d % 3) + 1])
            .collect();
        for got in r.results {
            prop_assert_eq!(&got, &expect);
        }
    }

    /// Harwell-Boeing round trip preserves arbitrary generated matrices.
    #[test]
    fn hb_round_trip(n in 2usize..40, avg in 1usize..4, seed in 0u64..200) {
        use trisolv::matrix::hb;
        let a = gen::random_spd(n, avg, seed);
        let mut buf = Vec::new();
        hb::write_harwell_boeing(&mut buf, &a, "prop", "PROP", true).unwrap();
        let (b, _) = hb::read_harwell_boeing(std::io::BufReader::new(&buf[..])).unwrap();
        prop_assert_eq!(a.shape(), b.shape());
        prop_assert!(a.to_dense().max_abs_diff(&b.to_dense()).unwrap() < 1e-12);
    }

    /// Irregular meshes solve end-to-end through the full parallel driver.
    #[test]
    fn irregular_mesh_solves(k in 5usize..12, seed in 0u64..50, p in 1usize..9) {
        use trisolv::core::{ParallelSolver, ParallelSolverOptions};
        let (a, coords) = gen::mesh2d_irregular(k, seed);
        let solver = ParallelSolver::build(
            &a,
            Some(&coords),
            &ParallelSolverOptions::t3d(p),
        ).unwrap();
        let x_true = gen::random_rhs(a.ncols(), 1, seed);
        let b = a.spmv_sym_lower(&x_true).unwrap();
        let (x, _) = solver.solve(&b);
        prop_assert!(x.max_abs_diff(&x_true).unwrap() < 1e-7);
    }

    /// Factor save/load round-trips bitwise for random problems.
    #[test]
    fn factor_io_round_trip(n in 5usize..50, seed in 0u64..100) {
        use trisolv::factor::fio;
        let a = gen::random_spd(n, 3, seed);
        let g = Graph::from_sym_lower(&a);
        let perm = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = seqchol::analyze_with_perm(&a, &perm);
        let f = seqchol::factor_supernodal(&an.pa, &an.part).unwrap();
        let mut buf = Vec::new();
        fio::save_factor(&mut buf, &f).unwrap();
        let g2 = fio::load_factor(&mut &buf[..]).unwrap();
        for s in 0..f.nsup() {
            prop_assert_eq!(g2.block(s), f.block(s));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The pipelined forward kernel equals the dense reference on random
    /// trapezoid shapes, group sizes, and block sizes.
    #[test]
    fn pipelined_forward_matches_dense_reference(
        t in 1usize..24,
        extra in 0usize..16,
        q in 1usize..7,
        block in 1usize..6,
        nrhs in 1usize..3,
        seed in 0u64..100,
    ) {
        use trisolv::core::pipeline::{forward_column_priority, LocalTrapezoid};
        use trisolv::factor::blas;
        use trisolv::machine::{BlockCyclic1d, Group, Machine};
        use trisolv::matrix::DenseMatrix;

        let n = t + extra;
        // random diagonally-dominant trapezoid
        let vals = gen::random_rhs(n * t, 1, seed);
        let mut trap = DenseMatrix::zeros(n, t);
        for j in 0..t {
            for i in j..n {
                trap[(i, j)] = if i == j { 3.0 } else { 0.3 * vals.as_slice()[i + j * n] };
            }
        }
        let rhs_global = gen::random_rhs(n, nrhs, seed.wrapping_add(1));
        // dense reference: x_top then the rectangle update
        let mut reference = rhs_global.clone();
        blas::trsm_lower_left(trap.as_slice(), n, reference.as_mut_slice(), n, t, nrhs);
        for c in 0..nrhs {
            for j in 0..t {
                let xv = reference[(j, c)];
                for i in t..n {
                    let upd = trap[(i, j)] * xv;
                    reference[(i, c)] -= upd;
                }
            }
            // kernel's below rows start at zero
            for i in t..n {
                reference[(i, c)] -= rhs_global[(i, c)];
            }
        }
        let layout = BlockCyclic1d::new(n, block, q);
        let machine = Machine::new(q, MachineParams::t3d());
        let run = machine.run(|p| {
            let g = Group::world(q);
            let local = LocalTrapezoid::from_global(&trap, &layout, p.rank());
            let mut r = DenseMatrix::zeros(local.positions.len(), nrhs);
            for c in 0..nrhs {
                for (li, &gi) in local.positions.iter().enumerate() {
                    r[(li, c)] = if gi < t { rhs_global[(gi, c)] } else { 0.0 };
                }
            }
            forward_column_priority(p, &g, 1, &layout, t, nrhs, &local, &mut r);
            (local.positions, r)
        });
        for (positions, r) in run.results {
            for c in 0..nrhs {
                for (li, &gi) in positions.iter().enumerate() {
                    prop_assert!(
                        (r[(li, c)] - reference[(gi, c)]).abs() < 1e-9,
                        "pos {gi} rhs {c}: {} vs {}", r[(li, c)], reference[(gi, c)]
                    );
                }
            }
        }
    }

    /// Amalgamation at random relaxation levels preserves factorization
    /// correctness.
    #[test]
    fn amalgamated_factor_still_correct(
        n in 20usize..70,
        seed in 0u64..100,
        relax_abs in 0usize..40,
        relax_pct in 0usize..40,
    ) {
        let a = gen::random_spd(n, 3, seed);
        let g = Graph::from_sym_lower(&a);
        let perm = nd::nested_dissection(&g, nd::NdOptions::default());
        let an = seqchol::analyze_with_perm(&a, &perm);
        let part = an.part.amalgamate(relax_abs, relax_pct as f64 / 100.0);
        let f = seqchol::factor_supernodal(&an.pa, &part).unwrap();
        let x = gen::random_rhs(n, 1, seed.wrapping_add(3));
        let ax = an.pa.spmv_sym_lower(&x).unwrap();
        let llx = f.llt_times(&x);
        let scale = ax.norm_max().max(1.0);
        prop_assert!(ax.max_abs_diff(&llx).unwrap() / scale < 1e-9);
    }
}
